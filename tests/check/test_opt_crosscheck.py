"""Cross-check: optimizer rewrites against static-checker findings.

The optimizer and the checker reason about the same structural facts —
STR002 (dead blocks) is DCE's evidence, STR004 (constant-foldable
subgraphs) is folding's.  These tests pin the two together on the
checker's own fixture graphs:

* every block STR002 flags is eliminated at O1, and DCE removes nothing
  the checker's cascade (repeated lint + fix-it) can't justify;
* every non-protected block STR004 flags is folded at O1, and folding
  touches nothing outside STR004's member sets.
"""

from __future__ import annotations

import pytest

from tests.check.builders import dead_chain_model, foldable_model

from repro.check import CheckConfig, run_checks
from repro.check.diagnostics import apply_fixits
from repro.core.network import FlatNetwork
from repro.core.opt import OptConfig, PlanOptimizer

FOLD_ALL = CheckConfig(min_fold_size=1)


def optimize_model(model, level=1):
    """Mirror ``check.context.build_context``'s flattening, then run the
    optimizer with the same probe protection the scheduler applies."""
    network = FlatNetwork(model.streamers, model.flows, strict=False)
    protect = [probe.source for probe in model.probes.values()]
    plan = network.plan()
    return PlanOptimizer(OptConfig.from_level(level)).run(
        plan, protect=protect,
    ).opt_report


def codes(result, code):
    return [d for d in result.diagnostics if d.code == code]


class TestDeadCodeAgainstSTR002:
    def test_every_flagged_block_is_eliminated(self):
        model = dead_chain_model()
        flagged = {
            d.subject for d in codes(run_checks(model), "STR002")
        }
        assert flagged  # the fixture does trip the rule
        report = optimize_model(dead_chain_model())
        assert flagged <= set(report.dce_removed)

    def test_dce_matches_checker_cascade_exactly(self):
        """DCE's one-shot transitive removal equals the fixpoint of
        repeatedly linting and applying STR002 fix-its — the optimizer
        emits no removal the checker can't justify, and vice versa."""
        report = optimize_model(dead_chain_model())

        model = dead_chain_model()
        justified = set()
        for _ in range(16):
            found = codes(run_checks(model), "STR002")
            if not found:
                break
            justified.update(d.subject for d in found)
            assert apply_fixits(found) > 0
        else:  # pragma: no cover - cascade must terminate
            pytest.fail("checker cascade did not converge")
        assert set(report.dce_removed) == justified

    def test_clean_graph_has_no_dce(self):
        model = foldable_model(constant_fed=False)
        assert not codes(run_checks(model), "STR002")
        report = optimize_model(model)
        assert report.dce_removed == []


class TestFoldingAgainstSTR004:
    def test_every_unprotected_flagged_block_is_folded(self):
        model = foldable_model()
        finding = codes(run_checks(model, config=FOLD_ALL), "STR004")
        assert len(finding) == 1
        members = set(finding[0].details["members"])
        protected = {
            probe.source.owner.path()
            for probe in model.probes.values()
        }
        report = optimize_model(foldable_model())
        assert members - protected == set(report.folded)

    def test_no_fold_without_a_finding_to_justify_it(self):
        """Everything folding touches sits inside some STR004 member
        set: the optimizer never claims constness the checker can't
        derive from the same graph."""
        for build in (
            foldable_model,
            lambda: foldable_model(constant_fed=False),
            dead_chain_model,
        ):
            model = build()
            flagged = set()
            for finding in codes(
                run_checks(model, config=FOLD_ALL), "STR004",
            ):
                flagged.update(finding.details["members"])
            report = optimize_model(build())
            assert set(report.folded) <= flagged

    def test_step_fed_graph_not_folded(self):
        model = foldable_model(constant_fed=False)
        assert not codes(run_checks(model, config=FOLD_ALL), "STR004")
        report = optimize_model(model)
        assert report.folded == []


DEAD_CHAIN_FILE = """
from repro.core.model import HybridModel
from repro.dataflow import Constant, Gain, Step


def build_dead():
    model = HybridModel("dead")
    prev = model.add_streamer(Constant("c0", value=1.0))
    for index in range(3):
        gain = model.add_streamer(Gain(f"g{index}", k=2.0))
        model.add_flow(prev.dport("out"), gain.dport("in"))
        prev = gain
    live = model.add_streamer(Step("live"))
    model.add_probe("y", live.dport("out"))
    return model
"""


class TestExplainCLI:
    def write(self, tmp_path):
        path = tmp_path / "dead_chain.py"
        path.write_text(DEAD_CHAIN_FILE)
        return str(path)

    def run_main(self, argv, capsys):
        from repro.check.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_explain_annotates_and_reports(self, tmp_path, capsys):
        path = self.write(tmp_path)
        code, out = self.run_main(["--explain", path], capsys)
        assert code == 0  # STR002 is warning-level, below --fail-on
        assert "optimizer: eliminated at O1 (dce pass)" in out
        assert "dce: removed" in out

    def test_no_opt_suppresses_annotations(self, tmp_path, capsys):
        path = self.write(tmp_path)
        code, out = self.run_main(
            ["--explain", "--no-opt", path], capsys,
        )
        assert code == 0
        assert "optimizer:" not in out

    def test_default_output_unchanged(self, tmp_path, capsys):
        path = self.write(tmp_path)
        code, out = self.run_main([path], capsys)
        assert code == 0
        assert "optimizer:" not in out and "opt O1" not in out

    def test_json_report_carries_opt_section(self, tmp_path, capsys):
        import json

        path = self.write(tmp_path)
        code, out = self.run_main(
            ["--explain", "--format", "json", path], capsys,
        )
        assert code == 0
        report = json.loads(out)
        (target,) = report["targets"]
        assert target["opt"]["counts"]["dce.blocks_removed"] == 4
