"""The ExecutionBackend abstraction: one registry, one program surface.

The repo grew four ways of executing a model — the plan interpreter, the
hybrid scheduler's threads, the vectorised batch program and the codegen
artifacts.  This package unifies them behind a single contract:

* an :class:`ExecutionBackend` consumes a :class:`CompileRequest`
  (diagram or prebuilt network/plan, records, solver, optimizer config)
  and produces a :class:`BackendProgram`;
* every program exposes the same ``step`` / ``run`` / ``snapshot_state``
  surface and tracks its own ``(t, x, held, step)`` cursor, so resuming,
  checkpointing and differential testing look identical across backends.

Registered backends:

``interpreter``
    The reference: :meth:`ExecutionPlan.evaluate`/``rhs`` plus live-block
    ``on_sync`` — the same semantics the hybrid scheduler and
    ``simulate_sequential`` use.
``compiled-python``
    The :mod:`repro.codegen` Python emitters promoted to an in-process
    exec'd kernel.  Works everywhere (no toolchain), bitwise identical
    to the interpreter on fixed-step runs.
``native-c``
    The C emitters compiled to a shared object and loaded via ctypes,
    with on-disk artifact caching keyed by the opt-aware plan
    fingerprint.  Requires a C compiler; without one it degrades to
    ``compiled-python`` through the fallback ladder.
``batch``
    The vectorised NumPy program (:mod:`repro.core.batch`) wrapped in
    the uniform surface (n instances, one state matrix).
``native-batch``
    The N-instance C kernel (:mod:`repro.core.backend.nativebatch`):
    one row per instance, the instance loop inside the compiled step,
    the instance axis sharded across a thread pool.  Demotes to the
    NumPy ``batch`` program without a toolchain.

Fallback ladder: :func:`compile_program` walks :data:`FALLBACKS` until a
backend compiles.  Every demotion emits a ``backend.fallback`` metric
and a :data:`~repro.service.telemetry.BACKEND` telemetry event (when the
caller passes hooks) and never raises for a missing toolchain — the
acceptance contract is that no job hard-fails because the host lacks a
compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import FlatNetwork
    from repro.core.plan import ExecutionPlan


class BackendError(Exception):
    """Raised on unrunnable programs or bad backend requests."""


class BackendUnavailable(BackendError):
    """Raised when a backend cannot serve on this host/request (missing
    compiler, unsupported solver, unsupported block).  The resolver
    treats it as a demotion signal, not a failure."""


#: bumped whenever the kernel renderers change shape, so stale on-disk
#: native artifacts die by cache-key mismatch
KERNEL_VERSION = 1

#: scalar kernels inline the fixed-step solver loop; anything else
#: (adaptive, implicit) demotes to the interpreter
KERNEL_SOLVERS = ("euler", "heun", "rk4")


@dataclass
class CompileRequest:
    """Everything a backend needs to produce a program.

    Either ``diagram`` (the common case: flattened internally) or a
    prebuilt ``network``/``plan`` pair (the hybrid scheduler's kernel
    bridge) must be provided.  ``records`` lists ``"block.port"`` paths
    (default: every Scope input).  ``n``/``sweeps``/``x0`` only apply to
    the batch backend.
    """

    diagram: Any = None
    network: Optional["FlatNetwork"] = None
    plan: Optional["ExecutionPlan"] = None
    records: Optional[List[str]] = None
    solver: Any = "rk4"
    h: float = 1e-3
    opt_level: int = 0
    opt_config: Any = None
    n: int = 1
    sweeps: Optional[Mapping[str, Sequence[float]]] = None
    x0: Optional[np.ndarray] = None
    #: native-c artifact directory (None: the process default cache)
    cache_dir: Any = None
    #: instance-axis shard count for the native-batch backend (None:
    #: one shard per core, capped; ignored by every other backend)
    shards: Optional[int] = None

    def resolved_network(self) -> "FlatNetwork":
        """The flat network (built from the diagram when not supplied)."""
        if self.network is not None:
            return self.network
        if self.diagram is None:
            raise BackendError(
                "CompileRequest needs a diagram or a prebuilt network"
            )
        from repro.core.network import FlatNetwork

        self.diagram.finalise()
        self.network = FlatNetwork([self.diagram])
        return self.network

    def port_at(self) -> Optional[Callable[[str], Any]]:
        """Record-path resolver, when a diagram is available."""
        if self.diagram is not None:
            return self.diagram.port_at
        return None

    def solver_name(self) -> str:
        from repro.core.solverbinding import SolverBinding

        if isinstance(self.solver, str):
            return self.solver
        return SolverBinding(self.solver).strategy_name


@dataclass
class ProgramResult:
    """Recorded trajectories of one :meth:`BackendProgram.run` call."""

    #: recorded times, shape ``(T,)``
    t: np.ndarray
    #: label -> recorded series; ``(T,)`` scalar backends, ``(T, n)``
    #: for the batch backend
    series: Dict[str, np.ndarray]
    #: state vector (or ``(n, n_state)`` matrix) at the end of the run
    final_state: np.ndarray
    stats: Dict[str, Any] = field(default_factory=dict)


class BackendProgram:
    """The uniform runnable produced by every backend.

    A program owns its execution cursor — current time, state vector,
    held registers and step counter — so consecutive :meth:`run` calls
    continue the same trajectory and :meth:`snapshot_state` /
    :meth:`restore_state` give the resilience layer a backend-agnostic
    checkpoint payload (plain data only).
    """

    #: registry name of the producing backend
    backend: str = "abstract"
    #: the effective backend when the ladder demoted the request (equal
    #: to :attr:`backend` when no fallback happened)
    requested: str = "abstract"

    @property
    def plan(self) -> "ExecutionPlan":
        raise NotImplementedError

    def reset(self) -> None:
        """Return to the cold initial state (t=0, initial x, held)."""
        raise NotImplementedError

    def step(self, h: Optional[float] = None) -> float:
        """One minor step + sync; returns the new time."""
        raise NotImplementedError

    def run(
        self,
        t_end: float,
        h: Optional[float] = None,
        record_every: int = 1,
    ) -> ProgramResult:
        """Advance to ``t_end`` recording every ``record_every`` steps."""
        raise NotImplementedError

    def rhs(self, t: float, x: np.ndarray) -> np.ndarray:
        """The derivative kernel at ``(t, x)`` under current held state."""
        raise NotImplementedError

    def snapshot_state(self) -> Dict[str, Any]:
        """The cursor as plain data (codec-safe)."""
        raise NotImplementedError

    def restore_state(self, state: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Content identity of the compiled artifact."""
        raise NotImplementedError


class ExecutionBackend:
    """One registry entry: knows how to compile a request."""

    name: str = "abstract"

    def compile(self, request: CompileRequest) -> BackendProgram:
        raise NotImplementedError


_BACKENDS: Dict[str, ExecutionBackend] = {}

#: demotion order per requested backend; the last rung may raise
FALLBACKS: Dict[str, Tuple[str, ...]] = {
    "interpreter": ("interpreter",),
    "compiled-python": ("compiled-python", "interpreter"),
    "native-c": ("native-c", "compiled-python", "interpreter"),
    "batch": ("batch",),
    "native-batch": ("native-batch", "batch"),
}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> ExecutionBackend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown execution backend {name!r}; registered: "
            f"{sorted(_BACKENDS)}"
        ) from None


def available_backends() -> List[str]:
    """Registered backend names (registration order is import order)."""
    return sorted(_BACKENDS)


def fallback_chain(name: str) -> Tuple[str, ...]:
    chain = FALLBACKS.get(name)
    if chain is None:
        get_backend(name)  # raises with the helpful message if unknown
        chain = (name,)
    return chain


def compile_program(
    request: CompileRequest,
    backend: str = "interpreter",
    metrics: Any = None,
    emit: Optional[Callable[..., Any]] = None,
) -> BackendProgram:
    """Compile ``request`` on ``backend``, walking the fallback ladder.

    Each demotion increments the ``backend.fallback`` counter on
    ``metrics`` (a :class:`~repro.service.telemetry.MetricsRegistry`)
    and calls ``emit(requested=..., attempted=..., fell_back_to=...,
    reason=...)`` — the service layer binds this to a
    :data:`~repro.service.telemetry.BACKEND` telemetry event.  Only the
    last rung of the ladder may raise.
    """
    chain = fallback_chain(backend)
    last_error: Optional[Exception] = None
    for index, name in enumerate(chain):
        try:
            program = get_backend(name).compile(request)
        except BackendUnavailable as exc:
            last_error = exc
            if index + 1 < len(chain):
                _note_fallback(
                    metrics, emit, backend, name, chain[index + 1], exc
                )
                continue
            raise
        except Exception as exc:
            # an UnsupportedBlockError (or any compile failure) on a
            # kernel backend demotes exactly like a missing toolchain
            from repro.codegen.common import CodegenError

            if isinstance(exc, CodegenError) and index + 1 < len(chain):
                last_error = exc
                _note_fallback(
                    metrics, emit, backend, name, chain[index + 1], exc
                )
                continue
            raise
        program.requested = backend
        return program
    raise BackendError(
        f"no backend in {chain} could compile the request"
    ) from last_error


def _note_fallback(
    metrics: Any,
    emit: Optional[Callable[..., Any]],
    requested: str,
    attempted: str,
    fell_back_to: str,
    exc: Exception,
) -> None:
    if metrics is not None:
        metrics.counter("backend.fallback").inc()
        metrics.counter(f"backend.fallback.{attempted}").inc()
    if emit is not None:
        emit(
            requested=requested,
            attempted=attempted,
            fell_back_to=fell_back_to,
            reason=str(exc),
        )


# ----------------------------------------------------------------------
# shared helpers for the scalar backends
# ----------------------------------------------------------------------
def lower_request(request: CompileRequest, lang: Any):
    """Lower a request to a :class:`~repro.codegen.common.LoweredModel`.

    A prebuilt plan (hybrid bridge) is lowered as-is; otherwise the
    network is planned under the request's optimizer config with the
    recorded pads protected.
    """
    from repro.codegen.common import lower_network, lower_plan

    network = request.resolved_network()
    if request.plan is not None:
        return lower_plan(
            request.plan, lang,
            initial_state=[float(v) for v in network.initial_state()],
            records=request.records,
            name=getattr(request.diagram, "name", "plan"),
            port_at=request.port_at(),
        )
    return lower_network(
        network, lang,
        records=request.records,
        opt_level=request.opt_level,
        opt_config=request.opt_config,
        name=getattr(request.diagram, "name", "network"),
        port_at=request.port_at(),
    )


def kernel_solver_name(request: CompileRequest) -> str:
    """The solver name, or :class:`BackendUnavailable` for non-fixed-step
    solvers the inline kernels cannot replicate."""
    name = request.solver_name()
    if name not in KERNEL_SOLVERS:
        raise BackendUnavailable(
            f"solver {name!r} is not an inlineable fixed-step method "
            f"(kernel backends support {KERNEL_SOLVERS}); "
            "use the interpreter backend"
        )
    return name
