"""Cache correctness across optimizer levels, and batch-program sharing.

Two invariants: (1) jobs submitted at different opt levels key the plan
cache separately and never cross-serve each other's artefacts; (2) two
:class:`BatchSimulator` instances over structurally identical diagrams
share one compiled program through the plan cache — compile once, serve
many — while different opt configurations still compile separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import (
    BatchSimulator, batch_program_cache_key, shared_program_cache,
)
from repro.core.opt import OptConfig
from repro.dataflow.diagram import Diagram
from repro.dataflow.dynamics import PID, FirstOrderLag
from repro.dataflow.math_blocks import Sum
from repro.dataflow.sources import Step
from repro.service import BatchJob, CodegenJob, SimulationService
from repro.service.cache import PlanCache

N = 4
T_END = 0.05
H = 1e-3
RECORDS = ["plant.out"]


def loop_diagram() -> Diagram:
    d = Diagram("loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", "+-"))
    d.add(PID("pid", kp=3.0, ki=1.5, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.4))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    return d


def batch_job(opt_level=None) -> BatchJob:
    return BatchJob(
        diagram_factory=loop_diagram, n=N, t_end=T_END, solver="rk4",
        h=H, records=RECORDS, opt_level=opt_level,
    )


class TestServiceOptLevels:
    def test_o0_and_o2_key_separately_and_never_cross_serve(self):
        with SimulationService(workers=1) as svc:
            r0 = svc.submit(batch_job(opt_level=0)).result()
            r2 = svc.submit(batch_job(opt_level=2)).result()
            r0b = svc.submit(batch_job(opt_level=0)).result()
            r2b = svc.submit(batch_job(opt_level=2)).result()
            stats = svc.cache.stats()
        # one compile per level, one hit per resubmission
        assert stats["compiles"] == 2
        assert stats["hits"] == 2
        # resubmissions replay their own level's artefact exactly
        assert np.array_equal(r0.series["plant.out"], r0b.series["plant.out"])
        assert np.array_equal(r2.series["plant.out"], r2b.series["plant.out"])
        # O2 re-associates: close to O0, not the same object lineage
        np.testing.assert_allclose(r0.series["plant.out"], r2.series["plant.out"], rtol=1e-9)

    def test_codegen_jobs_key_separately_per_level(self):
        from repro.dataflow.math_blocks import Gain

        def chained_diagram() -> Diagram:
            # fusable pre-gain chain: O1 collapses it, changing the source
            d = Diagram("loop")
            d.add(Step("ref", amplitude=1.0))
            d.add(Sum("err", "+-"))
            d.add(Gain("pre1", k=2.0))
            d.add(Gain("pre2", k=0.5))
            d.add(PID("pid", kp=3.0, ki=1.5, tf=0.5))
            d.add(FirstOrderLag("plant", tau=0.4))
            d.connect("ref.out", "err.in1")
            d.connect("plant.out", "err.in2")
            d.connect("err.out", "pre1.in")
            d.connect("pre1.out", "pre2.in")
            d.connect("pre2.out", "pid.in")
            d.connect("pid.out", "plant.in")
            return d

        with SimulationService(workers=1) as svc:
            src0 = svc.submit(CodegenJob(
                diagram_factory=chained_diagram, records=RECORDS,
                opt_level=0,
            )).result()
            src1 = svc.submit(CodegenJob(
                diagram_factory=chained_diagram, records=RECORDS,
                opt_level=1,
            )).result()
            stats = svc.cache.stats()
        assert stats["compiles"] == 2
        assert src0 != src1  # optimized source is actually different

    def test_service_default_opt_level_applies(self):
        with SimulationService(workers=1, default_opt_level=1) as svc:
            svc.submit(batch_job()).result()
            snapshot = svc.metrics_snapshot()
        counters = snapshot["counters"]
        assert "opt.blocks_removed" in counters
        assert "opt.ops_fused" in counters

    def test_single_run_o1_matches_o0_bitwise(self):
        from repro.core.model import HybridModel
        from repro.service import SingleRunJob

        def loop_model() -> HybridModel:
            diagram = loop_diagram()
            diagram.finalise()
            model = HybridModel("loop")
            model.default_thread.h = H
            model.add_streamer(diagram)
            model.add_probe("y", diagram.port_at("plant.out"))
            return model

        with SimulationService(workers=1) as svc:
            r0 = svc.submit(SingleRunJob(
                model_factory=loop_model, t_end=T_END,
                sync_interval=0.01, opt_level=0,
            )).result()
            r1 = svc.submit(SingleRunJob(
                model_factory=loop_model, t_end=T_END,
                sync_interval=0.01, opt_level=1,
            )).result()
        assert np.array_equal(r0.probes["y"].states, r1.probes["y"].states)


class TestSharedBatchProgramCache:
    def test_two_simulators_share_one_compile(self):
        cache = PlanCache(capacity=8)
        a = BatchSimulator(
            loop_diagram(), N, solver="rk4", h=H, records=RECORDS,
            cache=cache,
        )
        b = BatchSimulator(
            loop_diagram(), N, solver="rk4", h=H, records=RECORDS,
            cache=cache,
        )
        assert a.program is b.program
        stats = cache.stats()
        assert stats["compiles"] == 1 and stats["hits"] == 1
        assert np.array_equal(a.run(T_END).series["plant.out"], b.run(T_END).series["plant.out"])

    def test_opt_levels_compile_separately(self):
        cache = PlanCache(capacity=8)
        plain = BatchSimulator(
            loop_diagram(), N, solver="rk4", h=H, records=RECORDS,
            cache=cache,
        )
        optimized = BatchSimulator(
            loop_diagram(), N, solver="rk4", h=H, records=RECORDS,
            cache=cache, opt_level=2,
        )
        assert plain.program is not optimized.program
        assert cache.stats()["compiles"] == 2
        np.testing.assert_allclose(
            plain.run(T_END).series["plant.out"],
            optimized.run(T_END).series["plant.out"],
            rtol=1e-9,
        )

    def test_cache_false_compiles_privately(self):
        cache = PlanCache(capacity=8)
        BatchSimulator(
            loop_diagram(), N, solver="rk4", h=H, records=RECORDS,
            cache=cache,
        )
        private = BatchSimulator(
            loop_diagram(), N, solver="rk4", h=H, records=RECORDS,
            cache=False,
        )
        assert cache.stats()["compiles"] == 1
        assert private.program is not None

    def test_default_shared_cache_is_module_global(self):
        shared = shared_program_cache()
        before = shared.stats()["compiles"]
        a = BatchSimulator(
            loop_diagram(), N, solver="rk4", h=H, records=RECORDS,
        )
        b = BatchSimulator(
            loop_diagram(), N, solver="rk4", h=H, records=RECORDS,
        )
        assert a.program is b.program
        assert shared.stats()["compiles"] >= before

    def test_key_separates_records_and_opt(self):
        base = batch_program_cache_key(loop_diagram(), records=RECORDS)
        other_records = batch_program_cache_key(
            loop_diagram(), records=["err.out"],
        )
        optimized = batch_program_cache_key(
            loop_diagram(), records=RECORDS,
            opt_config=OptConfig.from_level(2),
        )
        inactive = batch_program_cache_key(
            loop_diagram(), records=RECORDS,
            opt_config=OptConfig.from_level(0),
        )
        assert len({base, other_records, optimized}) == 3
        assert inactive == base  # O0 config is a no-op, same artefact
