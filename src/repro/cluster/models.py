"""Built-in cluster model catalogue.

A cluster request names its model; these are the factories shipped with
the repo so demos, tests, the smoke harness and the S11 benchmark can
submit work to a fresh cluster without registering anything.  All of
them are deterministic fixed-step workloads — the property the
kill-and-migrate acceptance test needs, since only fixed-step plans
carry the bitwise resume guarantee.

Custom models: either :func:`~repro.cluster.requests.register_model` a
factory at import time on every worker host, or pass an importable
``"package.module:callable"`` path in the request.
"""

from __future__ import annotations

from repro.core.model import HybridModel
from repro.cluster.requests import register_model
from repro.dataflow import (
    Constant,
    Diagram,
    FirstOrderLag,
    Gain,
    PID,
    SecondOrderSystem,
    Step,
    Sum,
    ZeroOrderHold,
)


@register_model("cruise")
def cruise(setpoint: float = 25.0, h: float = 0.01) -> HybridModel:
    """PID speed loop: err = setpoint - v, force = PID(err), v = lag.

    One continuous thread at step ``h``; ~linear cost in ``t_end / h``,
    which makes it the workhorse for migration tests (long enough to
    kill mid-run, bitwise on resume).
    """
    d = Diagram("cruise")
    d.add(Constant("setpoint", value=setpoint))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=650.0, ki=90.0, kd=0.0, tf=0.4,
              u_min=-1500.0, u_max=3500.0))
    d.add(FirstOrderLag("car", tau=1200.0 / 60.0, k=1.0 / 60.0))
    d.connect("setpoint.out", "err.in1")
    d.connect("car.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "car.in")
    d.finalise()
    model = HybridModel(f"cruise{setpoint:g}")
    model.default_thread.h = h
    model.add_streamer(d)
    model.add_probe("v", d.port_at("car.out"))
    return model


@register_model("pendulum")
def pendulum(kp: float = 35.0, zeta: float = 0.06) -> Diagram:
    """PID against a lightly damped linearised pendulum (PT2).

    The batch-kind counterpart of ``cruise``: one diagram, N instances,
    sweepable over ``pid.kp`` — the shape of the S11 throughput
    workload.
    """
    d = Diagram("pendulum")
    d.add(Step("ref", amplitude=0.25))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=kp, ki=18.0, kd=7.0, tf=0.04))
    d.add(SecondOrderSystem("pend", omega=3.3, zeta=zeta, k=1.0))
    d.connect("ref.out", "err.in1")
    d.connect("pend.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "pend.in")
    return d


@register_model("servo_farm")
def servo_farm(kp: float = 8.0, ts: float = 0.02) -> Diagram:
    """A sampled PID servo loop shaped for the native-batch backend.

    Digital controller (PID behind a zero-order hold at period ``ts``)
    driving a PT2 plant: the sampled sync path plus continuous states,
    i.e. everything the N-instance C kernel has to replicate bitwise.
    Submit as ``kind="batch"`` with ``backend="native-batch"`` and a
    sweep over ``pid.kp`` (or ``loop.k``) to farm one compiled artifact
    across any N.
    """
    d = Diagram("servo_farm")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(ZeroOrderHold("adc", ts=ts))
    d.add(PID("pid", kp=kp, ki=4.0, kd=0.5, tf=0.05))
    d.add(Gain("loop", k=1.0))
    d.add(SecondOrderSystem("servo", omega=6.0, zeta=0.5, k=1.0))
    d.connect("ref.out", "err.in1")
    d.connect("servo.out", "err.in2")
    d.connect("err.out", "adc.in")
    d.connect("adc.out", "pid.in")
    d.connect("pid.out", "loop.in")
    d.connect("loop.out", "servo.in")
    return d


@register_model("lag")
def lag(tau: float = 0.5, h: float = 0.01) -> HybridModel:
    """A single first-order lag under a step — the minimal, fastest
    single-run workload (pool smoke tests, admission probes)."""
    d = Diagram("lag")
    d.add(Step("u", amplitude=1.0))
    d.add(FirstOrderLag("plant", tau=tau, k=1.0))
    d.connect("u.out", "plant.in")
    d.finalise()
    model = HybridModel("lag")
    model.default_thread.h = h
    model.add_streamer(d)
    model.add_probe("y", d.port_at("plant.out"))
    return model
