"""The paper's whole pitch in one script: requirement analysis -> model
design -> validation -> simulation -> analysis -> UML export -> code
generation, all on one platform.

System under design: a tank level controller.

* continuous: tank level ODE (in/out flow balance) as a dataflow diagram;
* discrete: a supervisor capsule that opens/closes the drain valve and
  trips a safety state on overflow (zero-crossing event);
* requirements: functional (level reaches setpoint), timing (within a
  bound), safety (never overflows) — all with executable acceptance
  checks traced against the model;
* outputs: validated model, trace report, UML package + XMI, generated
  Python for the continuous part, generated C + Python skeletons for the
  supervisor's state machine, and state-machine coverage of the run.

Run:  python examples/unified_workflow.py
"""

import numpy as np

from repro import Capsule, HybridModel, Protocol, StateMachine, Streamer
from repro.analysis import render_coverage, step_metrics
from repro.codegen import (
    generate_python,
    generate_statemachine_c,
    generate_statemachine_python,
)
from repro.core.flowtype import SCALAR
from repro.dataflow import Diagram, FirstOrderLag, PID, Step, Sum
from repro.metamodel import model_to_package, to_xmi
from repro.metamodel.export import model_stereotype_census
from repro.requirements import RequirementSet, trace_report
from repro.requirements.core import Kind, render_trace

SAFETY = Protocol.define(
    "TankSafety", outgoing=("acknowledge",), incoming=("overflow",)
)


# ----------------------------------------------------------------------
# 1. requirement analysis
# ----------------------------------------------------------------------
def capture_requirements() -> RequirementSet:
    reqs = RequirementSet("tank")
    reqs.add(
        "REQ-F1", "The level shall settle at the 1.0 m setpoint.",
        kind=Kind.FUNCTIONAL,
        check=lambda m: abs(m.probe("level").y_final[0] - 1.0) < 0.02,
    )
    reqs.add(
        "REQ-T1", "The level shall settle within 60 s (2% band).",
        kind=Kind.TIMING,
        check=lambda m: (
            m.probe("level").settling_time(0, 1.0, 0.02) or 1e9
        ) < 60.0,
    )
    reqs.add(
        "REQ-S1", "The level shall never exceed 1.5 m (overflow).",
        kind=Kind.SAFETY,
        check=lambda m: float(
            m.probe("level").component(0).max()
        ) < 1.5,
    )
    return reqs


# ----------------------------------------------------------------------
# 2. model design
# ----------------------------------------------------------------------
class TankMonitor(Streamer):
    """Watches the level flow and raises the overflow event."""

    zero_crossing_names = ("overflow",)
    direct_feedthrough = False

    def __init__(self, name: str = "monitor", limit: float = 1.5) -> None:
        super().__init__(name)
        self.add_in("level", SCALAR)
        self.add_sport("safety", SAFETY.conjugate())
        self.params["limit"] = limit

    def zero_crossings(self, t, state):
        return (self.in_scalar("level") - self.params["limit"],)

    def on_zero_crossing(self, name, t, direction):
        if direction > 0:
            self.sport("safety").send("overflow", t)


class TankSupervisor(Capsule):
    """normal -> tripped on overflow; acknowledges the alarm."""

    def build_structure(self):
        self.create_port("alarm", SAFETY.base())

    def build_behaviour(self):
        sm = StateMachine("supervisor")
        sm.trace_enabled = True
        sm.add_state("normal")
        sm.add_state(
            "tripped",
            entry=lambda c, m: c.send("alarm", "acknowledge"),
        )
        sm.initial("normal")
        sm.add_transition("normal", "tripped",
                          trigger=("alarm", "overflow"))
        return sm


def design_model() -> HybridModel:
    diagram = Diagram("tank")
    diagram.add(Step("setpoint", amplitude=1.0))
    diagram.add(Sum("err", signs="+-"))
    diagram.add(PID("pid", kp=3.0, ki=0.4, tf=0.5, u_min=0.0, u_max=2.0))
    # tank: A dh/dt = q_in - k*h  ->  first-order lag
    diagram.add(FirstOrderLag("tank", tau=10.0, k=1.0))
    diagram.connect("setpoint.out", "err.in1")
    diagram.connect("tank.out", "err.in2")
    diagram.connect("err.out", "pid.in")
    diagram.connect("pid.out", "tank.in")
    diagram.expose("level", "tank.out")
    diagram.finalise()

    model = HybridModel("tank_system")
    model.default_thread.h = 0.01
    model.add_streamer(diagram)
    monitor = model.add_streamer(TankMonitor("monitor"))
    model.add_flow(diagram.dport("level"), monitor.dport("level"))
    supervisor = model.add_capsule(TankSupervisor("supervisor"))
    model.connect_sport(supervisor.port("alarm"), monitor.sport("safety"))
    model.add_probe("level", diagram.port_at("tank.out"))
    return model


def main() -> None:
    reqs = capture_requirements()
    model = design_model()
    reqs.link("REQ-F1", "level")
    reqs.link("REQ-T1", "level")
    reqs.link("REQ-S1", "monitor")
    reqs.link("REQ-S1", "supervisor")

    # 3. validation (W-rules)
    violations = model.validate(strict=True)
    print(f"validation: {len(violations)} warnings, 0 errors")

    # 4. simulation
    model.run(until=80.0, sync_interval=0.1)
    metrics = step_metrics(model.probe("level"), target=1.0)
    print(f"level final={metrics.final_value:.3f} m, "
          f"settling={metrics.settling_time:.1f} s, "
          f"overshoot={metrics.overshoot:.1%}")

    # 5. requirements trace
    entries = trace_report(reqs, model)
    print("\ntraceability:")
    print(render_trace(entries))
    assert all(entry.satisfied for entry in entries)

    # 6. UML export
    package = model_to_package(model)
    xmi = to_xmi(package)
    census = model_stereotype_census(package)
    print(f"\nUML export: {len(package.classifiers)} classes, "
          f"{len(package.associations)} associations, "
          f"{len(xmi)} bytes of XMI")
    print(f"stereotype census: {census}")

    # 7. code generation: continuous part + supervisor skeletons
    continuous = generate_python(
        design_model().streamers[0], records=["tank.out"]
    )
    supervisor_sm = model.rts.tops[0].behaviour
    py_skeleton = generate_statemachine_python(supervisor_sm)
    c_skeleton = generate_statemachine_c(supervisor_sm)
    print(f"\ngenerated: {len(continuous.splitlines())} lines plant "
          f"Python, {len(py_skeleton.splitlines())} lines SM Python, "
          f"{len(c_skeleton.splitlines())} lines SM C")

    # generated plant module reproduces the closed loop
    namespace: dict = {}
    exec(compile(continuous, "<tank>", "exec"), namespace)
    generated_level = namespace["simulate"](80.0, h=0.01,
                                            record_every=100)
    gen_final = generated_level["tank.out"][-1]
    assert abs(gen_final - metrics.final_value) < 1e-6
    print(f"generated plant final level: {gen_final:.3f} m (matches)")

    # 8. model-coverage of the supervisor after this run
    print()
    print(render_coverage(supervisor_sm))
    # the overflow path never fired in the nominal run — coverage says so
    from repro.analysis import coverage_of

    assert coverage_of(supervisor_sm).state_coverage < 1.0
    print("\nOK")


if __name__ == "__main__":
    main()
