"""The hybrid scheduler: interleaving capsule and streamer threads.

This is the runtime realisation of the paper's architecture: event-driven
capsules and time-continuous streamers live on different threads and meet
only at *synchronisation points*, every ``sync_interval`` time units (the
major step).  One major step proceeds as:

1. **Continuous phase** — every streamer thread integrates its partition
   of the flat network from ``t`` to ``t + sync`` with its own solver and
   minor step; cross-thread dataflow pads stay frozen.
2. **Zero-crossing scan** — guards are compared before/after the slice;
   crossings are localised on linearly interpolated states.  With
   ``event_restart=True`` (default) the major step is truncated at the
   first crossing so the discrete world reacts at the right time; with
   ``False`` events are reported but integration keeps the full slice
   (cheaper, coarser — ablated in bench S2).
3. **Discrete phase** — the UML-RT runtime catches up to the sync time:
   due timers fire, queued messages dispatch under RTC.  Streamer signals
   queued via SPorts are injected (streamer → capsule), then capsule
   messages that arrived on SPort bridges are drained into
   ``handle_signal`` (capsule → streamer).
4. **Sync hooks** — discrete-time blocks run ``on_sync``; parameter
   changes take effect; probes record.

Determinism: with the default cooperative backend, everything above is
sequential and ordered; with ``real_threads=True`` only phase 1 runs on OS
threads, and its writes are data-disjoint by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from repro.core.dport import DPort
from repro.core.network import FlatNetwork
from repro.core.thread import RealThreadPool, StreamerThread
from repro.solvers.events import EventSpec, ZeroCrossingDetector

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import HybridModel
    from repro.core.plan import ExecutionPlan, PlanGuard


class HybridError(Exception):
    """Raised on scheduler misconfiguration."""


class HybridScheduler:
    """Coordinates the discrete and continuous worlds of a HybridModel."""

    def __init__(
        self,
        model: "HybridModel",
        sync_interval: float = 0.01,
        event_restart: bool = True,
        real_threads: bool = False,
        dense_events: bool = True,
        opt_level: int = 0,
        opt_config=None,
        backend: Optional[str] = None,
    ) -> None:
        if sync_interval <= 0:
            raise HybridError(
                f"non-positive sync interval: {sync_interval}"
            )
        self.model = model
        self.sync_interval = sync_interval
        self.event_restart = event_restart
        self.real_threads = real_threads
        #: optimizer pipeline applied when compiling the plan (probed
        #: pads are automatically protected from rewrites)
        self.opt_level = opt_level
        self.opt_config = opt_config
        #: requested execution backend for the continuous phase
        #: (``None``/"interpreter": the plan interpreter; "compiled-python"
        #: or "native-c": a derivative kernel compiled through
        #: :mod:`repro.core.backend`).  Binding is best-effort — when the
        #: model is ineligible (multiple active threads, zero-crossing
        #: guards, capsules, unsupported blocks) the scheduler falls back
        #: to the interpreter and reports why in ``stats()["backend"]``.
        self.backend = backend
        self._backend_program = None
        self._backend_fingerprint: Optional[str] = None
        self._backend_info: Dict[str, Optional[str]] = {
            "requested": backend or "interpreter",
            "effective": "interpreter",
            "reason": "interpreter is the default execution backend",
        }
        #: localise crossings on a cubic Hermite interpolant (two extra
        #: RHS evaluations per event-bearing slice) instead of a secant
        self.dense_events = dense_events
        self.network: Optional[FlatNetwork] = None
        #: the compiled, thread-partitioned execution plan (set by build)
        self.plan: Optional["ExecutionPlan"] = None
        self.state: Optional[np.ndarray] = None
        self._detector: Optional[ZeroCrossingDetector] = None
        self._guards: List["PlanGuard"] = []
        self._pool: Optional[RealThreadPool] = None
        self.major_steps = 0
        self.events_fired = 0
        self.signals_to_streamers = 0
        self.signals_to_capsules = 0
        self._built = False
        #: optional observer called with the reached time after every
        #: major step.  Purely passive — it cannot change stepping — so
        #: an observed run is numerically identical to an unobserved
        #: one; the service layer uses it to stream progress and to
        #: honour cancellation/deadlines mid-run (an exception raised
        #: here aborts :meth:`run` cleanly between major steps).
        self.on_major_step: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Flatten the streamer world and prime both runtimes."""
        if self._built:
            return
        self._built = True
        model = self.model
        if model.streamers:
            self.network = FlatNetwork(model.streamers, model.flows)
            for thread in model.threads:
                thread.leaves = []
            thread_index = {
                id(thread): i for i, thread in enumerate(model.threads)
            }
            leaf_threads: Dict[int, int] = {}
            for leaf in self.network.leaves:
                thread = self._thread_of(leaf)
                thread.leaves.append(leaf)
                leaf_threads[id(leaf)] = thread_index[id(thread)]
            # compile the thread-partitioned execution plan and hand each
            # thread its view (own nodes, in-thread edges only); probed
            # pads are protected so the optimizer never rewires them
            protect = [
                probe.source for probe in model.probes.values()
                if isinstance(getattr(probe, "source", None), DPort)
            ]
            self.plan = self.network.bind_threads(
                leaf_threads,
                opt_level=self.opt_level,
                opt_config=self.opt_config,
                protect=protect,
            )
            for i, thread in enumerate(model.threads):
                thread.plan = self.plan.thread_plan(i)
            self.state = self.network.initial_state()
            self._guards = list(self.plan.guards)
            if self._guards:
                specs = [
                    EventSpec(guard.qualified_name, self._guard_fn(guard))
                    for guard in self._guards
                ]
                self._detector = ZeroCrossingDetector(specs)
            if self.real_threads:
                self._pool = RealThreadPool(model.threads)
            self._bind_backend()
        if not model.rts.started:
            model.rts.start()

    def _thread_of(self, leaf) -> StreamerThread:
        node = leaf
        while node.parent is not None:
            node = node.parent
        if node.thread is None:
            self.model.default_thread.assign(node)
        return node.thread

    def _guard_fn(self, guard: "PlanGuard") -> Callable:
        plan = self.plan

        def fn(t: float, y: np.ndarray) -> float:
            # guards may read DPorts fed by time-varying sources, so the
            # network must be evaluated at the probe point — otherwise
            # bisection sees port values frozen at the slice end and
            # mislocalises input-driven crossings to the slice start
            plan.evaluate(t, y)
            return plan.guard_values(t, y, [guard])[0]

        return fn

    # ------------------------------------------------------------------
    # execution backends (continuous-phase derivative kernel)
    # ------------------------------------------------------------------
    def _backend_ineligible(self) -> Optional[str]:
        """Why this model cannot run a compiled derivative kernel, or
        ``None`` when every gate passes.

        The kernel bakes block parameters in as literals, replaces only
        the derivative evaluation (``plan.rhs``) and reads sample/hold
        registers back from the live blocks before every call — so it is
        sound exactly when nothing outside the gated surface can change
        the maths mid-slice.
        """
        if self.plan is None or not self.plan.nodes:
            return "model has no continuous plan nodes"
        active = [
            thread for thread in self.model.threads
            if thread.plan is not None and thread.plan.nodes
        ]
        if len(active) != 1:
            return (
                f"{len(active)} active streamer threads; the kernel "
                "replaces one whole-plan derivative"
            )
        if self._guards:
            return "zero-crossing guards require the plan interpreter"
        if self.model.rts.capsule_count():
            return (
                "capsules may reconfigure streamer parameters mid-run; "
                "kernels bake parameters in as literals"
            )
        return None

    def _bind_backend(self) -> None:
        """Try to compile the requested backend's derivative kernel and
        install it as the active thread's rhs override."""
        requested = self.backend or "interpreter"
        self._backend_info = {
            "requested": requested,
            "effective": "interpreter",
            "reason": "interpreter is the default execution backend",
        }
        self._backend_program = None
        for thread in self.model.threads:
            thread.rhs_override = None
        if requested == "interpreter":
            return
        from repro.core.backend import (
            BackendError, CompileRequest, fallback_chain, get_backend,
        )
        from repro.codegen.common import CodegenError

        try:
            chain = fallback_chain(requested)
        except BackendError as exc:
            self._backend_info["reason"] = str(exc)
            return
        reason = self._backend_ineligible()
        if reason is not None:
            self._backend_info["reason"] = reason
            return
        active = next(
            thread for thread in self.model.threads
            if thread.plan is not None and thread.plan.nodes
        )
        # the kernel's solver loop is unused (the thread's own
        # SolverBinding keeps stepping); only the deriv entry point is
        # bridged, so any solver — adaptive included — gets the fast rhs
        request = CompileRequest(
            network=self.network, plan=self.plan, solver="rk4",
            h=active.h,
        )
        program = None
        for name in chain:
            if name == "interpreter":
                break  # native interpreter path beats a wrapped one
            try:
                program = get_backend(name).compile(request)
                break
            except (BackendError, CodegenError) as exc:
                self._backend_info["reason"] = str(exc)
        if program is None:
            return
        counters = self.plan.counters

        def kernel_rhs(t: float, y: np.ndarray) -> np.ndarray:
            # live sampled blocks own the sample/hold registers (the
            # scheduler's sync hooks advance them); mirror them into the
            # kernel so mid-slice derivatives see the interpreter's view
            program.refresh_held_from_blocks()
            counters.evaluations += 1
            return program.rhs(t, y)

        active.rhs_override = kernel_rhs
        self._backend_program = program
        self._backend_fingerprint = self.plan.fingerprint()
        self._backend_info["effective"] = program.backend
        if program.backend == requested:
            self._backend_info["reason"] = None
        # on a demotion the reason keeps the failed rung's message

    def _recheck_backend(self) -> None:
        """Rebind the kernel if block parameters changed since compile.

        Parameters enter the plan fingerprint, so any mutation between
        ``run`` calls (a caller re-tuning a gain, a t=0 configuration
        hook) is caught here and triggers a fresh compile; mutating
        parameters *mid-run* is excluded by the eligibility gates.
        """
        if self._backend_program is None:
            return
        if self.plan.fingerprint() != self._backend_fingerprint:
            self._bind_backend()

    @property
    def backend_info(self) -> Dict[str, Optional[str]]:
        """``{"requested", "effective", "reason"}`` for the bound
        execution backend (``reason`` is ``None`` when no fallback)."""
        return dict(self._backend_info)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def initialise(self) -> None:
        """Run the t=0 discrete phase so capsules can configure streamers."""
        self.build()
        if self.network is not None:
            self.network.evaluate(self.model.time.raw, self.state)
            if self._detector is not None:
                self._detector.reset(self.model.time.raw, self.state)
        self._discrete_phase(self.model.time.raw)
        self._sync_hooks(self.model.time.raw)
        self.model.record(self.model.time.now)

    def run(self, t_end: float) -> None:
        """Advance the whole model to continuous time ``t_end``."""
        if not self._built:
            self.initialise()
        self._recheck_backend()
        time = self.model.time
        guard_eps = 1e-12
        while time.raw < t_end - guard_eps:
            t0 = time.raw
            t1 = min(t0 + self.sync_interval, t_end)
            t_reached = self._continuous_phase(t0, t1)
            time.advance_to(t_reached)
            self._discrete_phase(t_reached)
            self._sync_hooks(t_reached)
            self.model.record(time.now)
            self.major_steps += 1
            if self.on_major_step is not None:
                self.on_major_step(time.raw)

    # -- phase 1: continuous -------------------------------------------
    def _continuous_phase(self, t0: float, t1: float) -> float:
        if self.network is None:
            return t1
        y0 = self.state.copy()
        if self._pool is not None:
            self._pool.run_slices(self.state, t0, t1)
        else:
            for thread in self.model.threads:
                thread.integrate_slice(self.state, t0, t1)
        self.network.evaluate(t1, self.state)
        if self._detector is None:
            return t1

        interp_box = {}

        def make_interpolator():
            if not self.dense_events:
                return None
            if "interp" not in interp_box:
                from repro.solvers.interpolate import CubicHermite

                plan = self.plan
                f0 = plan.rhs(t0, y0)
                y1 = self.state.copy()
                f1 = plan.rhs(t1, y1)
                try:
                    interp_box["interp"] = CubicHermite(
                        t0, y0, f0, t1, y1, f1
                    )
                except ValueError:
                    interp_box["interp"] = None
            return interp_box["interp"]

        occurrences = self._detector.check_step(
            t0, y0, t1, self.state, make_interpolator=make_interpolator
        )
        if not occurrences:
            # guard probing may have evaluated the network at interior
            # points; restore the slice-end view
            self.network.evaluate(t1, self.state)
            return t1
        if self.event_restart:
            first = occurrences[0]
            if first.t - t0 <= 1e-12 * max(1.0, abs(t0)):
                # crossing pinned at the slice start: deliver without
                # truncating, otherwise the major step could never advance
                self._deliver_events(occurrences)
                return t1
            # roll the state back to the interpolated event point
            interp = interp_box.get("interp")
            if interp is not None:
                self.state[:] = interp(first.t)
            else:
                span = t1 - t0
                alpha = 0.0 if span <= 0 else (first.t - t0) / span
                self.state[:] = (1.0 - alpha) * y0 + alpha * self.state
            self.network.evaluate(first.t, self.state)
            self._detector.reset(first.t, self.state)
            fired = [occ for occ in occurrences if occ.t <= first.t]
            self._deliver_events(fired)
            return first.t
        self._deliver_events(occurrences)
        self.network.evaluate(t1, self.state)  # undo bisection probing
        return t1

    def _deliver_events(self, occurrences) -> None:
        for occ in occurrences:
            self.events_fired += 1
            guard = next(
                g for g in self._guards
                if g.qualified_name == occ.spec.name
            )
            guard.leaf.on_zero_crossing(guard.name, occ.t, occ.direction)

    # -- phase 3: discrete ----------------------------------------------
    def _discrete_phase(self, t: float) -> None:
        rts = self.model.rts
        rts.advance_to(t)
        # streamer -> capsule: flush SPort outbound queues through bridges
        for bridge in self.model.bridges:
            self.signals_to_capsules += bridge.flush_outbound()
        rts.drain()
        # capsule -> streamer: drain bridge channels into handle_signal
        for streamer, sport in self.model.all_sports():
            for message in sport.drain_inbound():
                self.signals_to_streamers += 1
                streamer.handle_signal(sport.name, message)

    # -- phase 4: sync hooks ---------------------------------------------
    def _sync_hooks(self, t: float) -> None:
        if self.network is None:
            return
        for leaf in self.network.order:
            reset = leaf.consume_state_reset()
            if reset is not None:
                lo, hi = self.network.state_slice(leaf)
                self.state[lo:hi] = reset
            leaf.on_sync(t)
        # parameter/discrete-state changes take effect immediately
        self.network.evaluate(t, self.state)
        if self._detector is not None:
            self._detector.reset(t, self.state)

    # ------------------------------------------------------------------
    # checkpointing hooks (resilience layer)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Scheduler-owned state for the snapshot codec: the clock, the
        flat state vector and the step/event counters.  Only meaningful
        at a major-step boundary (the codec enforces quiescence)."""
        return {
            "t": self.model.time.raw,
            "state": None if self.state is None else self.state.copy(),
            "major_steps": self.major_steps,
            "events_fired": self.events_fired,
            "signals_to_streamers": self.signals_to_streamers,
            "signals_to_capsules": self.signals_to_capsules,
        }

    def restore_state(self, snapshot: Dict[str, object]) -> None:
        """Overlay state captured by :meth:`snapshot_state`.

        :meth:`build` must have run first (the codec drives this).  The
        network is re-evaluated and the zero-crossing detector re-armed
        at the restored point — exactly what ``_sync_hooks`` does every
        major step, so the detector state after restore is bitwise what
        it was when the snapshot was taken.
        """
        if not self._built:
            raise HybridError("restore_state requires build() first")
        t = float(snapshot["t"])
        vec = snapshot.get("state")
        if vec is not None:
            if self.state is None or self.state.shape != np.shape(vec):
                raise HybridError(
                    "snapshot state vector shape "
                    f"{np.shape(vec)} does not match the built network "
                    f"({None if self.state is None else self.state.shape})"
                )
            self.state[:] = np.asarray(vec, dtype=float)
        self.major_steps = int(snapshot.get("major_steps", 0))
        self.events_fired = int(snapshot.get("events_fired", 0))
        self.signals_to_streamers = int(
            snapshot.get("signals_to_streamers", 0)
        )
        self.signals_to_capsules = int(
            snapshot.get("signals_to_capsules", 0)
        )
        self.model.time.advance_to(t)
        self.model.rts.now = max(self.model.rts.now, t)
        if self.network is not None:
            self.network.evaluate(t, self.state)
            if self._detector is not None:
                self._detector.reset(t, self.state)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "major_steps": self.major_steps,
            "events_fired": self.events_fired,
            "signals_to_streamers": self.signals_to_streamers,
            "signals_to_capsules": self.signals_to_capsules,
            "messages_dispatched": self.model.rts.total_dispatched,
        }
        out["backend"] = self.backend_info
        if self.network is not None:
            out["rhs_evaluations"] = self.network.rhs_evaluations
            out["minor_steps"] = sum(
                thread.minor_steps for thread in self.model.threads
            )
        return out
