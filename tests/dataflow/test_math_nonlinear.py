"""Arithmetic and nonlinear blocks."""

import numpy as np
import pytest

from repro.dataflow import (
    Abs,
    Bias,
    DeadZone,
    Gain,
    LookupTable1D,
    Product,
    Quantizer,
    RelayHysteresis,
    Saturation,
    Sum,
)
from repro.dataflow.block import BlockError


def feed(block, **inputs):
    for name, value in inputs.items():
        block.dport(name)._store(float(value))
    block.compute_outputs(0.0, np.empty(0))
    return block.dport("out").read_scalar()


class TestArithmetic:
    def test_gain(self):
        assert feed(Gain("g", k=-2.5), **{"in": 4.0}) == -10.0

    def test_bias(self):
        assert feed(Bias("b", bias=1.5), **{"in": 1.0}) == 2.5

    def test_abs(self):
        assert feed(Abs("a"), **{"in": -3.0}) == 3.0

    def test_sum_signs(self):
        block = Sum("s", signs="+-+")
        assert feed(block, in1=5.0, in2=2.0, in3=1.0) == 4.0

    def test_sum_port_names(self):
        assert Sum("s", signs="+-").in_names == ["in1", "in2"]

    def test_sum_bad_signs(self):
        with pytest.raises(BlockError):
            Sum("s", signs="+x")
        with pytest.raises(BlockError):
            Sum("s", signs="")

    def test_product(self):
        assert feed(Product("p", n=3), in1=2.0, in2=3.0, in3=4.0) == 24.0

    def test_product_validation(self):
        with pytest.raises(BlockError):
            Product("p", n=0)

    def test_all_direct_feedthrough(self):
        for block in (Gain("g"), Bias("b"), Abs("a"), Sum("s"),
                      Product("p")):
            assert block.direct_feedthrough


class TestSaturation:
    def test_clamping(self):
        sat = Saturation("s", lower=-1.0, upper=2.0)
        assert feed(sat, **{"in": 5.0}) == 2.0
        assert feed(sat, **{"in": -5.0}) == -1.0
        assert feed(sat, **{"in": 0.5}) == 0.5

    def test_validation(self):
        with pytest.raises(BlockError):
            Saturation("s", lower=1.0, upper=1.0)


class TestDeadZone:
    @pytest.mark.parametrize("u,expected", [
        (0.3, 0.0), (-0.3, 0.0), (1.0, 0.5), (-1.0, -0.5), (0.5, 0.0),
    ])
    def test_zone(self, u, expected):
        assert feed(DeadZone("d", width=0.5), **{"in": u}) == pytest.approx(
            expected
        )

    def test_negative_width(self):
        with pytest.raises(BlockError):
            DeadZone("d", width=-1.0)


class TestQuantizer:
    def test_rounding(self):
        q = Quantizer("q", step=0.25)
        assert feed(q, **{"in": 0.3}) == 0.25
        assert feed(q, **{"in": 0.38}) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(BlockError):
            Quantizer("q", step=0.0)


class TestRelayHysteresis:
    def test_switching_cycle(self):
        relay = RelayHysteresis("r", lower=-0.5, upper=0.5,
                                on_value=1.0, off_value=0.0)
        assert feed(relay, **{"in": 0.0}) == 0.0  # starts off
        assert feed(relay, **{"in": 0.6}) == 1.0  # crosses upper
        assert feed(relay, **{"in": 0.0}) == 1.0  # hysteresis holds
        assert feed(relay, **{"in": -0.6}) == 0.0  # crosses lower

    def test_initially_on(self):
        relay = RelayHysteresis("r", initially_on=True)
        assert feed(relay, **{"in": 0.0}) == 1.0

    def test_guards_published(self):
        relay = RelayHysteresis("r", lower=-0.5, upper=0.5)
        relay.dport("in")._store(0.7)
        up, down = relay.zero_crossings(0.0, np.empty(0))
        assert up == pytest.approx(0.2)
        assert down == pytest.approx(-1.2)

    def test_validation(self):
        with pytest.raises(BlockError):
            RelayHysteresis("r", lower=1.0, upper=0.0)


class TestLookupTable:
    def test_interpolation(self):
        table = LookupTable1D("t", xs=[0.0, 1.0, 2.0], ys=[0.0, 10.0, 0.0])
        assert feed(table, **{"in": 0.5}) == 5.0
        assert feed(table, **{"in": 1.5}) == 5.0

    def test_extrapolation(self):
        table = LookupTable1D("t", xs=[0.0, 1.0], ys=[0.0, 2.0])
        assert feed(table, **{"in": 2.0}) == 4.0
        assert feed(table, **{"in": -1.0}) == -2.0

    def test_validation(self):
        with pytest.raises(BlockError):
            LookupTable1D("t", xs=[0.0], ys=[1.0])
        with pytest.raises(BlockError):
            LookupTable1D("t", xs=[0.0, 0.0], ys=[1.0, 2.0])
        with pytest.raises(BlockError):
            LookupTable1D("t", xs=[0.0, 1.0], ys=[1.0])
