"""The cluster coordinator: a work-stealing pool of worker processes.

:class:`WorkerPool` owns N OS processes (spawned, never forked — the
coordinator runs threads, and fork+threads is a deadlock lottery), one
shared :class:`~repro.cluster.store.ArtifactStore`, and the scheduling
state that ties them together:

* **Per-worker deques + stealing.**  Every admitted job is appended to
  the shortest worker deque.  A worker pulls by sending READY; the
  coordinator pops the head of that worker's own deque, and when it is
  empty steals from the *tail* of the longest victim deque — the
  classic split: owners drain LIFO-adjacent work, thieves take the
  oldest (coldest) item, and ``cluster.steals`` counts every theft.

* **Admission control.**  :meth:`submit` sheds load *before* it enters
  the system: a bounded global queue, a per-client in-flight quota, and
  a deadline-feasibility gate that predicts completion from an EMA of
  recent job wall times and rejects jobs that would blow their deadline
  while waiting.  Rejection is an exception (:class:`ClusterRejected`)
  with a machine-readable reason, mirrored in ``cluster.rejected.*``
  counters.

* **Live migration.**  A monitor thread watches worker liveness.  When
  a worker dies (crash or SIGKILL) holding a job, the coordinator
  harvests the job's spool into the store's content-address index and
  re-enqueues the envelope with ``attempt + 1`` — the receiving worker
  resumes from the newest CRC-valid checkpoint in the shared store,
  bitwise-identically for fixed-step plans.  Dead workers are respawned
  to keep capacity constant.

Telemetry from workers is forwarded live onto each job's coordinator
channel (the same :class:`~repro.core.channel.Channel` the HTTP layer
streams), and each finished job's worker-side metrics dump is merged
into the pool registry.
"""

from __future__ import annotations

import collections
import itertools
import multiprocessing as mp
import os
import signal
import threading
import time
from multiprocessing import connection as mp_connection
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

from repro.cluster.requests import ClusterError, ClusterJobRequest, ClusterRejected
from repro.cluster.store import ArtifactStore
from repro.cluster.worker import (
    MSG_DONE, MSG_EVENT, MSG_JOB, MSG_READY, MSG_STARTED, MSG_STOP,
    JobEnvelope, result_from_wire, worker_main,
)
from repro.core.channel import Channel, ChannelPolicy
from repro.service.admission import CostModel, DeadlineAdmission
from repro.service.jobs import (
    JobCancelledError, JobError, JobState, JobTimeoutError,
)
from repro.service import telemetry
from repro.service.telemetry import MetricsRegistry, TelemetryEvent


@dataclass
class ClusterConfig:
    """Pool sizing and admission-control policy."""

    workers: int = 4
    #: bound on jobs queued (admitted, not yet dispatched); 0: unbounded
    queue_limit: int = 256
    #: per-client cap on jobs in flight (queued + running); 0: unbounded
    per_client_limit: int = 64
    #: migration budget per job — re-dispatches after worker deaths
    max_migrations: int = 3
    #: respawn a replacement when a worker process dies
    respawn: bool = True
    #: stop respawning one slot after this many deaths (a worker that
    #: cannot even boot would otherwise respawn in a tight loop)
    max_worker_deaths: int = 16
    #: steal from other workers' deques when the own deque runs dry
    steal: bool = True
    default_opt_level: int = 0
    #: per-worker plan-cache capacity
    cache_capacity: int = 64
    #: EMA smoothing for the job wall-time estimate feeding admission
    ema_alpha: float = 0.2
    #: reject when the predicted completion exceeds ``deadline * margin``
    admission_margin: float = 1.0
    #: per-job telemetry channel capacity (OVERWRITE beyond it)
    channel_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ClusterError(f"need at least one worker: {self.workers}")
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ClusterError(f"ema_alpha out of (0, 1]: {self.ema_alpha}")


class ClusterJobHandle:
    """The coordinator-side view of one submitted cluster job."""

    def __init__(
        self, job_id: str, request: ClusterJobRequest, capacity: int
    ) -> None:
        self.id = job_id
        self.request = request
        self.channel = Channel(
            f"cluster:{job_id}", capacity=capacity,
            policy=ChannelPolicy.OVERWRITE,
        )
        self.state = JobState.PENDING
        self.result_value: Any = None
        self.error: Optional[str] = None
        self.attempts = 0
        self.migrations = 0
        self.worker: Optional[int] = None
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._done = threading.Event()

    def _finish(
        self, state: JobState, result: Any = None, error: Optional[str] = None
    ) -> None:
        self.state = state
        self.result_value = result
        self.error = error
        self.finished_at = time.monotonic()
        self.channel.close()
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's result; raises the matching error otherwise."""
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"timed out waiting for cluster job {self.id} "
                f"({self.state.value})"
            )
        if self.state is JobState.DONE:
            return self.result_value
        if self.state is JobState.CANCELLED:
            raise JobCancelledError(f"cluster job {self.id} was cancelled")
        if self.state is JobState.TIMEOUT:
            raise JobTimeoutError(
                f"cluster job {self.id} exceeded its deadline"
            )
        raise JobError(
            f"cluster job {self.id} failed: {self.error or 'unknown error'}"
        )

    def status(self) -> Dict[str, Any]:
        """A JSON-shaped snapshot (what ``GET /jobs/<id>`` serves)."""
        return {
            "id": self.id,
            "name": self.request.name or None,
            "kind": self.request.kind,
            "client": self.request.client,
            "state": self.state.value,
            "attempts": self.attempts,
            "migrations": self.migrations,
            "worker": self.worker,
            "error": self.error,
            "wall": (
                None if self.finished_at is None
                else self.finished_at - self.submitted_at
            ),
        }


@dataclass
class _WorkerSlot:
    """Everything the coordinator tracks about one worker process."""

    worker_id: int
    process: Any
    feed: Any
    cancel_cell: Any
    #: coordinator end of the worker's private report pipe (None once
    #: the pipe turned out dead and was discarded)
    conn: Any = None
    #: job currently dispatched to this worker (None: idle/awaiting feed)
    current: Optional[str] = None
    #: True once the worker sent READY and is blocked on its feed queue
    hungry: bool = False
    deaths: int = 0
    jobs_done: int = 0
    deque: Deque[JobEnvelope] = field(default_factory=collections.deque)


class WorkerPool:
    """N worker processes, one shared store, work stealing, migration."""

    def __init__(
        self,
        store_root,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.store = ArtifactStore(Path(store_root))
        self.metrics = MetricsRegistry()
        self._ctx = mp.get_context("spawn")
        self._lock = threading.RLock()
        self._jobs: Dict[str, ClusterJobHandle] = {}
        self._envelopes: Dict[str, JobEnvelope] = {}
        self._job_seq = itertools.count(1)
        self._epoch_seq = itertools.count(1)
        # the shared deadline-admission predicate (same code path the
        # in-process JobEngine uses), calibrated per job kind from every
        # worker DONE report
        self.admission = DeadlineAdmission(
            CostModel(alpha=self.config.ema_alpha),
            margin=self.config.admission_margin,
        )
        self._stop = threading.Event()
        self.steals = 0
        self.migrations_total = 0
        self._slots: List[_WorkerSlot] = [
            self._spawn_slot(wid) for wid in range(self.config.workers)
        ]
        self._inbox_thread = threading.Thread(
            target=self._inbox_loop, name="cluster-inbox", daemon=True,
        )
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True,
        )
        self._inbox_thread.start()
        self._monitor_thread.start()

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_slot(
        self, worker_id: int, old: Optional[_WorkerSlot] = None
    ) -> _WorkerSlot:
        feed = self._ctx.Queue()
        cancel_cell = self._ctx.Value("q", 0, lock=False)
        # one private report pipe per worker — a shared queue's write
        # lock is a cross-process semaphore a SIGKILLed worker could
        # take to its grave, wedging everyone else's reports
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id, feed, send_conn, cancel_cell,
                str(self.store.root), self.config.default_opt_level,
                self.config.cache_capacity,
            ),
            name=f"repro-cluster-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        send_conn.close()  # worker holds the write end now
        slot = _WorkerSlot(
            worker_id, process, feed, cancel_cell, conn=recv_conn,
        )
        if old is not None:
            slot.deaths = old.deaths
            slot.jobs_done = old.jobs_done
            slot.deque = old.deque  # queued work survives the death
        return slot

    def kill_worker(self, worker_id: int, sig: int = signal.SIGKILL) -> int:
        """Hard-kill one worker process (testing/chaos hook).

        Returns the killed PID.  The monitor notices the death, migrates
        the worker's in-flight job and respawns a replacement.
        """
        slot = self._slots[worker_id]
        pid = slot.process.pid
        if pid is None:
            raise ClusterError(f"worker {worker_id} has no process")
        os.kill(pid, sig)
        return pid

    # ------------------------------------------------------------------
    # submission + admission control
    # ------------------------------------------------------------------
    def submit(self, request: ClusterJobRequest) -> ClusterJobHandle:
        """Admit one request, or shed it with :class:`ClusterRejected`."""
        if self._stop.is_set():
            raise ClusterError("pool is shut down")
        request.validate()
        with self._lock:
            decision = self._admit(request)
            job_id = f"cj-{next(self._job_seq):06d}"
            handle = ClusterJobHandle(
                job_id, request, self.config.channel_capacity,
            )
            envelope = JobEnvelope(
                job_id=job_id, request=request, attempt=1,
                epoch=next(self._epoch_seq),
                deadline_remaining=request.deadline,
            )
            self._jobs[job_id] = handle
            self._envelopes[job_id] = envelope
            self._enqueue(envelope)
            self.metrics.counter("cluster.submitted").inc()
            # coordinator-side admission event (seq -1, like MIGRATED)
            # so the decision is visible on the HTTP telemetry stream
            handle.channel.push(TelemetryEvent(
                kind=telemetry.ADMISSION, job_id=job_id, seq=-1,
                t=float("nan"), payload=decision.as_payload(),
            ))
            self._feed_hungry()
        return handle

    @property
    def _ema_wall(self) -> Optional[float]:
        """The global wall-time EMA (kept for status()/tests; the
        admission predicate itself is now per-kind with this as the
        fallback)."""
        return self.admission.cost_model.snapshot()["*"]

    def _admit(self, request: ClusterJobRequest):
        """Queue-shedding gates; caller holds the lock.  Returns the
        :class:`~repro.service.admission.AdmissionDecision`."""
        queued = sum(len(slot.deque) for slot in self._slots)
        limit = self.config.queue_limit
        if limit and queued >= limit:
            self.metrics.counter("cluster.rejected.queue_full").inc()
            raise ClusterRejected(
                "queue_full",
                f"global queue at capacity ({queued}/{limit})",
            )
        per_client = self.config.per_client_limit
        if per_client:
            in_flight = sum(
                1 for handle in self._jobs.values()
                if handle.request.client == request.client
                and not handle.state.terminal
            )
            if in_flight >= per_client:
                self.metrics.counter("cluster.rejected.client_quota").inc()
                raise ClusterRejected(
                    "client_quota",
                    f"client {request.client!r} has {in_flight} jobs in "
                    f"flight (limit {per_client})",
                )
        decision = self.admission.evaluate(
            request.kind, request.deadline,
            queued=queued, workers=len(self._slots),
        )
        if not decision.admitted:
            self.metrics.counter(
                "cluster.rejected.deadline_infeasible"
            ).inc()
            raise ClusterRejected(
                "deadline_infeasible",
                f"predicted completion "
                f"{decision.predicted_completion:.3f}s exceeds the "
                f"{request.deadline:g}s deadline",
            )
        return decision

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; False once it is terminal."""
        with self._lock:
            handle = self._jobs.get(job_id)
            if handle is None or handle.state.terminal:
                return False
            if handle.state is JobState.PENDING:
                for slot in self._slots:
                    for envelope in list(slot.deque):
                        if envelope.job_id == job_id:
                            slot.deque.remove(envelope)
                self._finish_job(handle, JobState.CANCELLED)
                return True
            # running: point the worker's cancel cell at the job's epoch
            envelope = self._envelopes.get(job_id)
            if envelope is not None and handle.worker is not None:
                self._slots[handle.worker].cancel_cell.value = envelope.epoch
            return True

    # ------------------------------------------------------------------
    # scheduling: deques, stealing, feeding
    # ------------------------------------------------------------------
    def _enqueue(self, envelope: JobEnvelope) -> None:
        """Append to the shortest deque; caller holds the lock."""
        slot = min(self._slots, key=lambda s: len(s.deque))
        slot.deque.append(envelope)

    def _take_work_for(self, slot: _WorkerSlot) -> Optional[JobEnvelope]:
        """Own deque head, else steal the longest victim's tail."""
        if slot.deque:
            return slot.deque.popleft()
        if not self.config.steal:
            return None
        victim = max(self._slots, key=lambda s: len(s.deque))
        if victim is slot or not victim.deque:
            return None
        self.steals += 1
        self.metrics.counter("cluster.steals").inc()
        return victim.deque.pop()

    def _feed_hungry(self) -> None:
        """Dispatch to every hungry worker with work available;
        caller holds the lock."""
        for slot in self._slots:
            if not slot.hungry:
                continue
            self._feed_one(slot)

    def _feed_one(self, slot: _WorkerSlot) -> None:
        while True:
            envelope = self._take_work_for(slot)
            if envelope is None:
                return
            handle = self._jobs.get(envelope.job_id)
            if handle is None or handle.state.terminal:
                continue  # cancelled while queued; take the next one
            if envelope.deadline_remaining is not None:
                elapsed = time.monotonic() - handle.submitted_at
                remaining = envelope.request.deadline - elapsed
                if remaining <= 0:
                    self._finish_job(handle, JobState.TIMEOUT)
                    self.metrics.counter("cluster.deadline_missed").inc()
                    continue
                envelope.deadline_remaining = remaining
            slot.current = envelope.job_id
            slot.hungry = False
            handle.worker = slot.worker_id
            handle.state = JobState.RUNNING
            if handle.started_at is None:
                handle.started_at = time.monotonic()
            slot.feed.put((MSG_JOB, envelope))
            return

    # ------------------------------------------------------------------
    # inbox: worker -> coordinator traffic (one pipe per worker)
    # ------------------------------------------------------------------
    def _inbox_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                by_conn = {
                    slot.conn: slot
                    for slot in self._slots
                    if slot.conn is not None
                }
            if not by_conn:
                time.sleep(0.05)
                continue
            try:
                ready = mp_connection.wait(list(by_conn), timeout=0.1)
            except OSError:
                continue
            for conn in ready:
                try:
                    message = conn.recv()
                except Exception:
                    # EOF or a write the worker died in the middle of —
                    # only this worker's pipe is affected; the monitor
                    # owns the death itself
                    self._discard_conn(by_conn[conn], conn)
                    continue
                self._handle_message(message)

    def _discard_conn(self, slot: _WorkerSlot, conn: Any) -> None:
        try:
            conn.close()
        except OSError:
            pass
        with self._lock:
            if slot.conn is conn:
                slot.conn = None

    def _handle_message(self, message) -> None:
        tag = message[0]
        if tag == MSG_READY:
            with self._lock:
                slot = self._slots[message[1]]
                slot.hungry = True
                self._feed_one(slot)
        elif tag == MSG_STARTED:
            __, worker_id, job_id, attempt = message
            with self._lock:
                handle = self._jobs.get(job_id)
                if handle is not None:
                    handle.attempts = attempt
        elif tag == MSG_EVENT:
            __, worker_id, job_id, event = message
            handle = self._jobs.get(job_id)
            if handle is not None and not handle.state.terminal:
                try:
                    handle.channel.push(event)
                except Exception:
                    pass
        elif tag == MSG_DONE:
            self._handle_done(message)

    def _handle_done(self, message) -> None:
        (__, worker_id, job_id, state_value, result_bytes, error,
         metrics_dump, wall) = message
        try:
            result = result_from_wire(result_bytes)
        except Exception as exc:
            state_value, result, error = (
                JobState.FAILED.value, None, f"result decode failed: {exc}"
            )
        with self._lock:
            slot = self._slots[worker_id]
            if slot.current == job_id:
                slot.current = None
            slot.jobs_done += 1
            handle = self._jobs.get(job_id)
            if handle is None or handle.state.terminal:
                return  # late DONE from a worker we already gave up on
            self.admission.cost_model.observe(handle.request.kind, wall)
            self.metrics.histogram("cluster.job_wall").observe(wall)
            self.metrics.merge(metrics_dump)
            self._finish_job(handle, JobState(state_value), result, error)

    def _finish_job(
        self,
        handle: ClusterJobHandle,
        state: JobState,
        result: Any = None,
        error: Optional[str] = None,
    ) -> None:
        """Caller holds the lock."""
        self._envelopes.pop(handle.id, None)
        handle._finish(state, result, error)
        self.metrics.counter(f"cluster.finished.{state.value}").inc()

    # ------------------------------------------------------------------
    # monitor: worker deaths -> migration + respawn
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(0.05):
            for slot in list(self._slots):
                if slot.process.is_alive() or self._stop.is_set():
                    continue
                self._handle_death(slot)

    def _handle_death(self, slot: _WorkerSlot) -> None:
        # death closed the worker's write end, so the inbox thread will
        # drain every buffered report in order and discard the conn at
        # EOF — wait for that before deciding migration, because a
        # buffered DONE means there is nothing to migrate
        deadline = time.monotonic() + 1.0
        while slot.conn is not None and time.monotonic() < deadline:
            if self._stop.is_set():
                break
            time.sleep(0.005)
        with self._lock:
            if self._slots[slot.worker_id] is not slot:
                return  # already replaced
            if slot.conn is not None:
                self._discard_conn(slot, slot.conn)
            slot.deaths += 1
            self.metrics.counter("cluster.worker_deaths").inc()
            job_id = slot.current
            slot.current = None
            slot.hungry = False
            if job_id is not None:
                self._migrate(job_id, slot.worker_id)
            if (
                self.config.respawn
                and not self._stop.is_set()
                and slot.deaths <= self.config.max_worker_deaths
            ):
                self._slots[slot.worker_id] = self._spawn_slot(
                    slot.worker_id, old=slot,
                )

    def _migrate(self, job_id: str, dead_worker: int) -> None:
        """Re-dispatch a dead worker's job; caller holds the lock."""
        handle = self._jobs.get(job_id)
        envelope = self._envelopes.get(job_id)
        if handle is None or handle.state.terminal or envelope is None:
            return
        # harvest the spool into the content-address index so the
        # resumable checkpoint is discoverable by fingerprint
        fingerprint = None
        try:
            fingerprint = self.store.index_job(job_id)
        except OSError:
            pass
        if handle.migrations >= self.config.max_migrations:
            self._finish_job(
                handle, JobState.FAILED,
                error=(
                    f"worker died and the migration budget "
                    f"({self.config.max_migrations}) is exhausted"
                ),
            )
            return
        handle.migrations += 1
        handle.state = JobState.PENDING
        handle.worker = None
        self.migrations_total += 1
        self.metrics.counter("cluster.migrations").inc()
        resumed = self.store.latest_checkpoint(job_id)
        handle.channel.push(TelemetryEvent(
            kind=telemetry.MIGRATED, job_id=job_id, seq=-1, t=float("nan"),
            payload={
                "from_worker": dead_worker,
                "migration": handle.migrations,
                "fingerprint": fingerprint,
                "resume_step": None if resumed is None else resumed[1].step,
            },
        ))
        replacement = JobEnvelope(
            job_id=job_id, request=envelope.request,
            attempt=envelope.attempt + 1, epoch=next(self._epoch_seq),
            deadline_remaining=envelope.deadline_remaining,
            submitted_at=envelope.submitted_at,
        )
        self._envelopes[job_id] = replacement
        self._enqueue(replacement)
        self._feed_hungry()

    # ------------------------------------------------------------------
    # introspection + lifecycle
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Optional[ClusterJobHandle]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[ClusterJobHandle]:
        with self._lock:
            return list(self._jobs.values())

    def status(self) -> Dict[str, Any]:
        """A JSON-shaped pool snapshot (what ``GET /status`` serves)."""
        with self._lock:
            states: Dict[str, int] = {}
            for handle in self._jobs.values():
                states[handle.state.value] = states.get(
                    handle.state.value, 0
                ) + 1
            return {
                "workers": [
                    {
                        "id": slot.worker_id,
                        "pid": slot.process.pid,
                        "alive": slot.process.is_alive(),
                        "current": slot.current,
                        "queued": len(slot.deque),
                        "jobs_done": slot.jobs_done,
                        "deaths": slot.deaths,
                    }
                    for slot in self._slots
                ],
                "jobs": states,
                "queued": sum(len(s.deque) for s in self._slots),
                "steals": self.steals,
                "migrations": self.migrations_total,
                "ema_wall": self._ema_wall,
                "cost_model": self.admission.cost_model.snapshot(),
                "store": self.store.stats(),
            }

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until every submitted job is terminal (True) or the
        timeout lapses (False)."""
        deadline = time.monotonic() + timeout
        for handle in self.jobs():
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle.wait(remaining):
                return False
        return True

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers, cancel queued jobs, join the pool threads."""
        if self._stop.is_set():
            return
        self._stop.set()
        with self._lock:
            for slot in self._slots:
                slot.deque.clear()
            for handle in self._jobs.values():
                if not handle.state.terminal:
                    self._finish_job(handle, JobState.CANCELLED)
        for slot in self._slots:
            try:
                slot.feed.put((MSG_STOP,))
            except Exception:
                pass
        deadline = time.monotonic() + timeout
        for slot in self._slots:
            slot.process.join(max(0.0, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(1.0)
        self._inbox_thread.join(timeout=2.0)
        self._monitor_thread.join(timeout=2.0)
        for slot in self._slots:
            if slot.conn is not None:
                self._discard_conn(slot, slot.conn)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(workers={len(self._slots)}, "
            f"store={str(self.store.root)!r})"
        )
