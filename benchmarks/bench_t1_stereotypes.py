"""Experiment T1 — Table 1: new stereotypes comparing with UML-RT.

Reproduces the paper's only table.  The assertion content is that every
stereotype in both columns is *implemented* by a live library class (not
merely documented), that the mapping matches the paper row for row, and
that the count of new stereotypes is the paper's "eight".  The timed
portion measures profile introspection + rendering, which code generators
and editors would sit on.
"""

from repro.metamodel import (
    EXTENSION_PROFILE,
    UMLRT_PROFILE,
    implementation_of,
    render_table1,
    table1_rows,
)
from repro.metamodel.profile import extension_profile, umlrt_profile
from repro.metamodel.stereotypes import new_stereotype_count

PAPER_TABLE1 = [
    ("capsule", "streamer"),
    ("port", "DPort, SPort"),
    ("connect", "flow, relay"),
    ("protocol", "flow type"),
    ("state machine", "solver, strategy"),
    ("Time service", "Time"),
]


def test_table1_reproduction(benchmark, report, bench_json):
    def build():
        rows = table1_rows()
        rendered = render_table1()
        impls = {
            stereotype.name: implementation_of(stereotype.name).__name__
            for profile in (UMLRT_PROFILE, EXTENSION_PROFILE)
            for stereotype in profile
        }
        return rows, rendered, impls

    rows, rendered, impls = benchmark(build)

    # --- paper fidelity checks -----------------------------------------
    assert rows == PAPER_TABLE1
    assert new_stereotype_count() == 8
    assert len(umlrt_profile().names()) == 6
    assert len(extension_profile().names()) == 9  # 8 new + Time

    report("T1: Table 1 (stereotype mapping, machine-checked)", [
        rendered,
        "",
        "implementation classes:",
        *(f"  {name:<14} -> {cls}" for name, cls in sorted(impls.items())),
    ])
    bench_json("t1", {
        "table1_rows_match_paper": rows == PAPER_TABLE1,
        "new_stereotypes": new_stereotype_count(),
        "implemented_stereotypes": len(impls),
    })


def test_table1_profile_application_cost(benchmark):
    """Applying the whole extension profile to a 100-class model."""
    from repro.metamodel.elements import Classifier, Package

    profile = extension_profile()

    def apply_profile():
        pkg = Package("big")
        for index in range(100):
            cls = pkg.add_class(Classifier(f"Block{index}"))
            profile.apply(cls, "streamer")
        return pkg

    pkg = benchmark(apply_profile)
    assert all(
        "streamer" in cls.stereotypes for cls in pkg.classifiers.values()
    )
