"""Seeded model synthesis: the generator layer of the campaign engine.

Every synthesiser here is a pure function of its ``seed`` — the only
randomness is a private ``random.Random(seed)`` — so any generated
model can be rebuilt bit-for-bit from the integer that named it.  That
is the property the whole campaign rig leans on: a failing scenario is
*replayable* from its seed alone (``python -m repro.scenarios replay
--seed <s>``), with no serialized model artefact to ship around.

Four families:

* :func:`synth_dag` — random acyclic diagrams over the emitter-
  supported block grammar (moved here from ``repro.core.opt.synth``,
  which keeps a deprecation alias).  ``sampled=True`` mixes in
  zero-order holds and unit delays; the continuous variant is also
  batch-comparable.
* :func:`synth_feedback` — the same DAG grammar plus seeded feedback
  loops, each broken by a non-feedthrough block (integrator or lag) so
  the diagram stays legal under W12/STR001.
* :func:`synth_plant` — a parameterised PID-over-plant control family
  with deliberately foldable, fusable, CSE-able and dead substructure,
  so a single scenario exercises every optimizer pass and the synthetic
  ``FoldedBlock``/``FusedChain`` opcodes.
* :func:`synth_multirate` / :func:`synth_control_model` — seeded
  :class:`~repro.core.model.HybridModel` instances (two-rate threads,
  probed feedback loops) for the determinism and fault-injection
  scenario kinds, which run through the hybrid scheduler rather than a
  compiled plan.
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = [
    "synth_control_model",
    "synth_dag",
    "synth_feedback",
    "synth_multirate",
    "synth_plant",
]


def _dag_body(
    rng: random.Random,
    d,
    blocks: int,
    sampled: bool,
) -> List[str]:
    """The shared random-DAG grammar: sources plus ``blocks`` ops.

    Factored out of :func:`synth_dag` *without changing its draw
    sequence* — the same seed still yields the identical diagram the
    backend-parity suites were written against — so the feedback family
    can reuse the grammar before appending its loop structures.
    """
    from repro.dataflow import (
        Abs, Bias, Constant, FirstOrderLag, Gain, Integrator, Saturation,
        Sine, Step, Sum, UnitDelay, ZeroOrderHold,
    )

    outs: List[str] = []

    def param() -> float:
        return round(rng.uniform(-2.0, 2.0), 6)

    for i in range(max(2, blocks // 4)):
        kind = rng.choice(("const", "sine", "step"))
        name = f"src{i}"
        if kind == "const":
            d.add(Constant(name, value=param()))
        elif kind == "sine":
            d.add(Sine(name, amplitude=abs(param()) + 0.1,
                       freq=abs(param()) + 0.2, phase=param()))
        else:
            d.add(Step(name, amplitude=param(),
                       t_step=round(abs(rng.uniform(0.0, 0.3)), 6)))
        outs.append(f"{name}.out")

    kinds = ["gain", "bias", "sum", "abs", "sat", "integ", "lag"]
    if sampled:
        kinds += ["zoh", "delay"]
    for i in range(blocks):
        kind = rng.choice(kinds)
        name = f"n{i}"
        src = rng.choice(outs)
        if kind == "gain":
            d.add(Gain(name, k=param()))
            d.connect(src, f"{name}.in")
        elif kind == "bias":
            d.add(Bias(name, bias=param()))
            d.connect(src, f"{name}.in")
        elif kind == "sum":
            arity = rng.choice((2, 3))
            signs = "".join(rng.choice("+-") for __ in range(arity))
            d.add(Sum(name, signs=signs))
            d.connect(src, f"{name}.in1")
            for slot in range(2, arity + 1):
                d.connect(rng.choice(outs), f"{name}.in{slot}")
        elif kind == "abs":
            d.add(Abs(name))
            d.connect(src, f"{name}.in")
        elif kind == "sat":
            d.add(Saturation(name, lower=min(param(), -0.1),
                             upper=abs(param()) + 0.1))
            d.connect(src, f"{name}.in")
        elif kind == "integ":
            d.add(Integrator(name, y0=param()))
            d.connect(src, f"{name}.in")
        elif kind == "lag":
            d.add(FirstOrderLag(name, tau=abs(param()) + 0.2, y0=param()))
            d.connect(src, f"{name}.in")
        elif kind == "zoh":
            d.add(ZeroOrderHold(name, ts=rng.choice((0.05, 0.07, 0.11))))
            d.connect(src, f"{name}.in")
        else:
            d.add(UnitDelay(name, ts=rng.choice((0.05, 0.09, 0.13)),
                            y0=param()))
            d.connect(src, f"{name}.in")
        outs.append(f"{name}.out")
    return outs


def synth_dag(
    seed: int,
    blocks: int = 12,
    sampled: bool = False,
    scope_channels: int = 3,
):
    """A deterministic random block diagram for differential testing.

    Seeded by ``random.Random(seed)`` only — the same seed always yields
    the same diagram with the same parameters, so backend-parity suites
    can fan structurally diverse DAGs through every registered execution
    backend and assert bitwise-identical traces against the interpreter.
    The generated diagram is acyclic (every consumer reads strictly
    earlier producers), uses only emitter-supported block types, and
    ends in one Scope recording ``scope_channels`` interior signals —
    giving every backend identical default record labels.  With
    ``sampled=True`` the mix includes zero-order holds and unit delays
    (the statement-replica sync path); otherwise the DAG is purely
    continuous and also batch-comparable.
    """
    from repro.dataflow import Scope
    from repro.dataflow.diagram import Diagram

    rng = random.Random(seed)
    d = Diagram(f"synth{seed}")
    outs = _dag_body(rng, d, blocks, sampled)

    channels = min(scope_channels, len(outs))
    d.add(Scope("scope", channels=channels))
    # record the newest signals — they transitively exercise the most
    # of the DAG — and keep everything upstream live under the optimizer
    for index, src in enumerate(outs[-channels:]):
        d.connect(src, f"scope.in{index + 1}")
    return d


def synth_feedback(
    seed: int,
    blocks: int = 10,
    loops: int = 2,
    scope_channels: int = 3,
):
    """A continuous DAG with ``loops`` seeded feedback loops.

    Each loop is an error Sum -> controller Gain -> non-feedthrough
    plant (Integrator or FirstOrderLag) whose output closes back onto
    the Sum's second slot — the one topology the forward DAG grammar of
    :func:`synth_dag` cannot produce, and the one that exercises the
    plan's feedback-edge classification in every backend.  The loops
    are legal by construction: every cycle passes through a
    non-feedthrough block, so W12/STR001 stay silent.
    """
    from repro.dataflow import FirstOrderLag, Gain, Integrator, Scope, Sum
    from repro.dataflow.diagram import Diagram

    rng = random.Random(seed)
    d = Diagram(f"fb{seed}")
    outs = _dag_body(rng, d, blocks, sampled=False)

    loop_outs: List[str] = []
    for i in range(max(1, loops)):
        drive = rng.choice(outs)
        err = Sum(f"fberr{i}", signs="+-")
        ctrl = Gain(f"fbg{i}", k=round(rng.uniform(0.2, 1.5), 6))
        if rng.random() < 0.5:
            plant = Integrator(
                f"fbp{i}", y0=round(rng.uniform(-0.5, 0.5), 6)
            )
        else:
            plant = FirstOrderLag(
                f"fbp{i}",
                tau=round(rng.uniform(0.3, 1.2), 6),
                y0=round(rng.uniform(-0.5, 0.5), 6),
            )
        d.add(err)
        d.add(ctrl)
        d.add(plant)
        d.connect(drive, f"fberr{i}.in1")
        d.connect(f"fbp{i}.out", f"fberr{i}.in2")   # the feedback edge
        d.connect(f"fberr{i}.out", f"fbg{i}.in")
        d.connect(f"fbg{i}.out", f"fbp{i}.in")
        loop_outs.append(f"fbp{i}.out")

    channels = min(max(scope_channels, 1), len(loop_outs))
    d.add(Scope("scope", channels=channels))
    for index, src in enumerate(loop_outs[-channels:]):
        d.connect(src, f"scope.in{index + 1}")
    return d


def synth_plant(seed: int):
    """A parameterised PID-over-plant family with optimizer bait.

    The control core is Step reference -> Sum error -> PID ->
    Saturation -> plant (second-order or first-order lag, seeded) with
    the plant output fed back.  Around it, three deliberate
    substructures guarantee that *one* scenario of this family drives
    every optimizer pass and both synthetic opcodes:

    * a constant-fed trim chain (Constant -> Gain -> Bias) into the
      error Sum — constant-folded at O1 (``FoldedBlock``);
    * a measurement chain (Gain -> Bias -> Gain) off the plant output —
      fused at O1 (``FusedChain``);
    * two *identical* Gain taps off the plant output, combined by an
      unrecorded Sum — merged by CSE (recorded pads are protected from
      CSE rewiring, so the taps themselves must stay unobserved);
    * one dangling Gain tap nothing reads — removed by DCE.
    """
    from repro.dataflow import (
        PID, Bias, Constant, FirstOrderLag, Gain, Saturation, Scope,
        SecondOrderSystem, Step, Sum,
    )
    from repro.dataflow.diagram import Diagram

    rng = random.Random(seed)

    def p(lo: float, hi: float) -> float:
        return round(rng.uniform(lo, hi), 6)

    d = Diagram(f"plant{seed}")
    d.add(Step("ref", amplitude=p(0.5, 2.0), t_step=p(0.0, 0.1)))
    d.add(Sum("err", signs="+-+"))
    d.add(PID(
        "pid", kp=p(1.0, 6.0), ki=p(0.0, 3.0), tf=p(0.2, 0.8),
        u_min=-p(5.0, 12.0), u_max=p(5.0, 12.0),
    ))
    d.add(Saturation("act", lower=-p(4.0, 10.0), upper=p(4.0, 10.0)))
    if rng.random() < 0.6:
        d.add(SecondOrderSystem(
            "plant", omega=p(1.5, 5.0), zeta=p(0.3, 1.1),
        ))
    else:
        d.add(FirstOrderLag("plant", tau=p(0.2, 1.0)))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "act.in")
    d.connect("act.out", "plant.in")

    # constant-fed trim chain: folded into one literal at O1
    d.add(Constant("trim", value=p(-0.3, 0.3)))
    d.add(Gain("trimg", k=p(0.5, 1.5)))
    d.add(Bias("trimb", bias=p(-0.2, 0.2)))
    d.connect("trim.out", "trimg.in")
    d.connect("trimg.out", "trimb.in")
    d.connect("trimb.out", "err.in3")

    # linear measurement chain: fused into one node at O1
    k_meas = p(0.8, 1.2)
    d.add(Gain("m1", k=k_meas))
    d.add(Bias("m2", bias=p(-0.1, 0.1)))
    d.add(Gain("m3", k=p(0.9, 1.1)))
    d.connect("plant.out", "m1.in")
    d.connect("m1.out", "m2.in")
    d.connect("m2.out", "m3.in")

    # two identical taps: CSE merges them; one dangling tap: DCE
    # removes it.  The taps feed an (unrecorded) Sum rather than the
    # scope directly — observed pads are excluded from CSE.
    k_tap = p(1.5, 2.5)
    d.add(Gain("tap_a", k=k_tap))
    d.add(Gain("tap_b", k=k_tap))
    d.add(Gain("dangle", k=p(0.1, 0.9)))
    d.add(Sum("tapsum", signs="++"))
    d.connect("plant.out", "tap_a.in")
    d.connect("plant.out", "tap_b.in")
    d.connect("plant.out", "dangle.in")
    d.connect("tap_a.out", "tapsum.in1")
    d.connect("tap_b.out", "tapsum.in2")

    d.add(Scope("scope", channels=3))
    d.connect("plant.out", "scope.in1")
    d.connect("m3.out", "scope.in2")
    d.connect("tapsum.out", "scope.in3")
    return d


def synth_control_model(seed: int, probes: int = 2):
    """A seeded single-thread :class:`HybridModel` feedback loop.

    The fault-injection scenario kind runs this through
    :class:`~repro.service.jobs.SingleRunJob` twice — once uninterrupted
    and once with an injected crash plus checkpoint/resume — and asserts
    the recovered run lands on exactly the same final probe values.
    """
    from repro.core.model import HybridModel
    from repro.dataflow import FirstOrderLag, Gain, Integrator, Step, Sum

    rng = random.Random(seed)
    model = HybridModel(f"ctl{seed}")
    ref = model.add_streamer(Step(
        "ref", amplitude=round(rng.uniform(0.5, 2.0), 6),
    ))
    err = model.add_streamer(Sum("err", signs="+-"))
    ctrl = model.add_streamer(Gain(
        "ctrl", k=round(rng.uniform(0.5, 3.0), 6),
    ))
    if rng.random() < 0.5:
        plant = model.add_streamer(Integrator("plant"))
    else:
        plant = model.add_streamer(FirstOrderLag(
            "plant", tau=round(rng.uniform(0.3, 1.0), 6),
        ))
    model.add_flow(ref.dport("out"), err.dport("in1"))
    model.add_flow(plant.dport("out"), err.dport("in2"))
    model.add_flow(err.dport("out"), ctrl.dport("in"))
    model.add_flow(ctrl.dport("out"), plant.dport("in"))
    model.add_probe("y", plant.dport("out"))
    if probes > 1:
        model.add_probe("u", ctrl.dport("out"))
    return model


def synth_multirate(seed: int, feedthrough: Optional[bool] = None):
    """A seeded two-rate :class:`HybridModel` (fast + default thread).

    A source and lag run on a fast thread; an integrator consumes the
    lag across the thread boundary on the default thread.  With
    ``feedthrough=True`` (or a seeded coin flip when ``None``) a
    direct-feedthrough Gain also reads across the boundary, which the
    static checker flags as THR001 — deliberate, so campaign lint
    coverage includes the thread rules on *runnable* models, not just
    the defect menu.
    """
    from repro.core.model import HybridModel
    from repro.dataflow import FirstOrderLag, Gain, Integrator, Sine

    rng = random.Random(seed)
    if feedthrough is None:
        feedthrough = rng.random() < 0.5
    model = HybridModel(f"mr{seed}")
    fast = model.create_thread(
        "fast",
        solver=rng.choice(("rk4", "heun")),
        h=rng.choice((2e-4, 5e-4)),
    )
    src = model.add_streamer(Sine(
        "src",
        amplitude=round(rng.uniform(0.5, 2.0), 6),
        freq=round(rng.uniform(0.5, 3.0), 6),
    ), thread=fast)
    lag = model.add_streamer(FirstOrderLag(
        "lag", tau=round(rng.uniform(0.05, 0.4), 6),
    ), thread=fast)
    integ = model.add_streamer(Integrator("slow"))
    model.add_flow(src.dport("out"), lag.dport("in"))
    model.add_flow(lag.dport("out"), integ.dport("in"))
    model.add_probe("fast_y", lag.dport("out"))
    model.add_probe("slow_y", integ.dport("out"))
    if feedthrough:
        tap = model.add_streamer(Gain(
            "tap", k=round(rng.uniform(0.5, 2.0), 6),
        ))
        model.add_flow(lag.dport("out"), tap.dport("in"))
        model.add_probe("tap_y", tap.dport("out"))
    return model
