"""Experiment S7 — the static diagnostics engine.

Two headline measurements for the checker subsystem:

1. **Lint wall-time** — ``run_checks`` over the largest shipped example
   model (``examples/networked_control.py``) and over a padded 200-block
   dataflow diagram.  The whole analysis must stay interactive
   (sub-second on the example), since the CLI runs it on every file and
   CI runs it on every push.
2. **Service-gate overhead** — warm-cache submit latency with the lint
   gate off vs ``warn``.  The gate memoises its :class:`CheckResult` on
   the spec, so resubmitting the same spec must cost < 5% extra (or
   < 50ms absolute slack for timer noise on tiny baselines) — the
   acceptance bar for leaving the gate on in a serving loop.
"""

import importlib.util
import pathlib
import time

import numpy as np

from benchmarks.conftest import pid_plant_diagram
from repro.check import run_checks
from repro.service import BatchJob, SimulationService

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
BIG_BLOCKS = 200
LINT_REPEATS = 5
WARM_SUBMITS = 40
N = 8
T_END = 0.05
OVERHEAD_BAR = 0.05
ABSOLUTE_SLACK = 0.05  # seconds across all warm submits


def _load_example_builder():
    path = EXAMPLES / "networked_control.py"
    spec = importlib.util.spec_from_file_location(
        "bench_s7_networked_control", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.build_model


def _time_lint(target_factory, repeats=LINT_REPEATS):
    samples = []
    for __ in range(repeats):
        target = target_factory()
        start = time.perf_counter()
        result = run_checks(target)
        samples.append(time.perf_counter() - start)
    return min(samples), result


def test_lint_wall_time(report, bench_json):
    build_model = _load_example_builder()
    example_s, example_result = _time_lint(build_model)
    big_s, big_result = _time_lint(
        lambda: pid_plant_diagram(BIG_BLOCKS).finalise()
    )

    assert example_result.ok("warning"), example_result.format_text()
    assert big_result.ok("error"), big_result.format_text()
    assert example_s < 1.0, f"example lint took {example_s:.3f}s"

    report("S7 lint wall-time", [
        f"networked_control.build_model: {example_s * 1e3:8.2f} ms",
        f"{BIG_BLOCKS}-block padded diagram:   {big_s * 1e3:8.2f} ms",
    ])
    bench_json("s7", {
        "lint_example_ms": example_s * 1e3,
        "lint_big_diagram_ms": big_s * 1e3,
        "lint_big_diagram_blocks": BIG_BLOCKS + 4,
    })


def _warm_submit_wall(policy):
    """Total wall time of WARM_SUBMITS submits of one memoised spec."""
    spec = BatchJob(
        diagram_factory=lambda: pid_plant_diagram(0),
        n=N, t_end=T_END, solver="rk4", h=1e-3,
        records=["plant.out"],
        sweeps={"pid.kp": np.linspace(0.5, 6.0, N)},
    )
    with SimulationService(workers=2, check_policy=policy) as svc:
        svc.submit(spec).result(timeout=60.0)  # prime caches + memo
        start = time.perf_counter()
        handles = [
            svc.submit(spec) for __ in range(WARM_SUBMITS)
        ]
        for handle in handles:
            handle.result(timeout=60.0)
        return time.perf_counter() - start


def test_gate_overhead_on_warm_submit(report, bench_json):
    wall_off = _warm_submit_wall("off")
    wall_warn = _warm_submit_wall("warn")
    overhead = (wall_warn - wall_off) / wall_off

    assert (
        overhead < OVERHEAD_BAR
        or (wall_warn - wall_off) < ABSOLUTE_SLACK
    ), (
        f"gate overhead {overhead * 100:.1f}% "
        f"({wall_off:.3f}s -> {wall_warn:.3f}s)"
    )

    report("S7 service-gate overhead (warm submit)", [
        f"policy=off:  {wall_off:7.3f} s / {WARM_SUBMITS} submits",
        f"policy=warn: {wall_warn:7.3f} s / {WARM_SUBMITS} submits",
        f"overhead:    {overhead * 100:+7.1f} %  (bar < 5% or "
        f"< {ABSOLUTE_SLACK * 1e3:.0f}ms slack)",
    ])
    bench_json("s7", {
        "warm_submit_off_s": wall_off,
        "warm_submit_warn_s": wall_warn,
        "gate_overhead_frac": overhead,
        "warm_submits": WARM_SUBMITS,
    })
