"""Connectors: explicit wiring objects between two ports.

A connector validates protocol-role compatibility at creation time
(UML-RT's static wiring check) and supports disconnection, which the frame
service uses when destroying optional parts.
"""

from __future__ import annotations

from repro.umlrt.port import Port, PortError


class ConnectorError(Exception):
    """Raised when two ports cannot legally be wired."""


class Connector:
    """A checked, reversible link between two ports.

    Compatibility rule: each side's send set must be a subset of the peer's
    receive set (base/conjugate pairs of the same protocol always satisfy
    this).  Relay-to-relay, relay-to-end and end-to-end wirings are all
    legal; relay ports accept up to two links (outer + inner side).
    """

    def __init__(self, a: Port, b: Port) -> None:
        if not a.role.compatible_with(b.role):
            raise ConnectorError(
                f"incompatible roles: {a.qualified_name} ({a.role.name}) "
                f"sends {sorted(a.role.sends)} / receives "
                f"{sorted(a.role.receives)}; {b.qualified_name} "
                f"({b.role.name}) sends {sorted(b.role.sends)} / receives "
                f"{sorted(b.role.receives)}"
            )
        try:
            a.link(b)
        except PortError as exc:
            raise ConnectorError(str(exc)) from exc
        self.a = a
        self.b = b
        self.connected = True

    def disconnect(self) -> None:
        if not self.connected:
            raise ConnectorError("connector already disconnected")
        self.a.unlink(self.b)
        self.connected = False

    def involves(self, port: Port) -> bool:
        return port is self.a or port is self.b

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "" if self.connected else " (disconnected)"
        return (
            f"Connector({self.a.qualified_name} <-> "
            f"{self.b.qualified_name}{state})"
        )
