"""Entry point for ``python -m repro.check``."""

from repro.check.cli import main

raise SystemExit(main())
