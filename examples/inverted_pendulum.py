"""Inverted pendulum on a cart: mode-switching hybrid control.

The classic nonlinear benchmark plant, done the paper's way:

* the cart-pole dynamics are a custom 4-state *streamer* (nonlinear ODEs,
  not expressible as library LTI blocks);
* a state-feedback balancing law runs as a second streamer, tunable at
  run time through an SPort;
* a supervisor *capsule* watches a zero-crossing guard on the pole angle:
  if the pole leaves the controllable cone (|theta| > 0.5 rad) it switches
  the controller off (safe mode) and brakes the cart; when the pole
  re-enters a small cone it re-engages balancing — a textbook hybrid
  automaton split across the paper's two worlds.

Run:  python examples/inverted_pendulum.py
"""

import numpy as np

from repro import Capsule, HybridModel, Protocol, StateMachine, Streamer
from repro.core.flowtype import SCALAR

MODES = Protocol.define(
    "BalanceCtrl",
    outgoing=("engage", "disengage"),
    incoming=("coneExit", "coneEnter"),
)

# physical parameters
M_CART = 0.5      # kg
M_POLE = 0.2      # kg
L_POLE = 0.3      # m (half length)
GRAVITY = 9.81


class CartPole(Streamer):
    """States: [x, x_dot, theta, theta_dot]; input: horizontal force."""

    state_size = 4
    zero_crossing_names = ("cone_exit", "cone_enter")

    def __init__(self, name: str = "cartpole", theta0: float = 0.12) -> None:
        super().__init__(name)
        self.add_in("force", SCALAR)
        self.add_out("x", SCALAR)
        self.add_out("theta", SCALAR)
        self.add_sport("guard", MODES.conjugate())
        self.params.update(cone=0.5, inner_cone=0.1)
        self._theta0 = theta0

    def initial_state(self) -> np.ndarray:
        return np.array([0.0, 0.0, self._theta0, 0.0])

    def derivatives(self, t, state):
        __, x_dot, theta, theta_dot = state
        force = self.in_scalar("force")
        sin_t, cos_t = np.sin(theta), np.cos(theta)
        total_mass = M_CART + M_POLE
        pole_mass_len = M_POLE * L_POLE
        temp = (
            force + pole_mass_len * theta_dot ** 2 * sin_t
        ) / total_mass
        theta_acc = (GRAVITY * sin_t - cos_t * temp) / (
            L_POLE * (4.0 / 3.0 - M_POLE * cos_t ** 2 / total_mass)
        )
        x_acc = temp - pole_mass_len * theta_acc * cos_t / total_mass
        return np.array([x_dot, x_acc, theta_dot, theta_acc])

    def compute_outputs(self, t, state):
        self.out_scalar("x", state[0])
        self.out_scalar("theta", state[2])

    def zero_crossings(self, t, state):
        cone = self.params["cone"]
        inner = self.params["inner_cone"]
        return (abs(state[2]) - cone, inner - abs(state[2]))

    def on_zero_crossing(self, name, t, direction):
        if direction > 0:
            signal = "coneExit" if name == "cone_exit" else "coneEnter"
            self.sport("guard").send(signal)


class BalanceController(Streamer):
    """State feedback u = -K·[x, x_dot, theta, theta_dot] (LQR-ish gains),
    with an enable flag flipped by the supervisor."""

    direct_feedthrough = True

    def __init__(self, name: str = "balance") -> None:
        super().__init__(name)
        self.add_in("x", SCALAR)
        self.add_in("theta", SCALAR)
        self.add_out("force", SCALAR)
        self.add_sport("mode", MODES.conjugate())
        self.params.update(
            kx=2.0, kxd=3.5, kth=35.0, kthd=7.5, enabled=1.0,
            brake=-2.0, clip=15.0,
        )
        self._prev = {"x": 0.0, "theta": 0.0}
        self._prev_t = None

    def compute_outputs(self, t, state):
        p = self.params
        x = self.in_scalar("x")
        theta = self.in_scalar("theta")
        # derivative estimates by backward difference (no direct state
        # access across streamers: only flows)
        if self._prev_t is None or t <= self._prev_t:
            x_dot = theta_dot = 0.0
        else:
            dt = t - self._prev_t
            x_dot = (x - self._prev["x"]) / dt
            theta_dot = (theta - self._prev["theta"]) / dt
        if p["enabled"]:
            force = (
                p["kx"] * x + p["kxd"] * x_dot
                + p["kth"] * theta + p["kthd"] * theta_dot
            )
        else:
            force = p["brake"] * x_dot  # damp the cart in safe mode
        self.out_scalar(
            "force", float(np.clip(force, -p["clip"], p["clip"]))
        )

    def on_sync(self, t):
        self._prev["x"] = self.in_scalar("x")
        self._prev["theta"] = self.in_scalar("theta")
        self._prev_t = t

    def handle_signal(self, sport_name, message):
        if message.signal == "engage":
            self.params["enabled"] = 1.0
        elif message.signal == "disengage":
            self.params["enabled"] = 0.0

    # checkpointing: expose the backward-difference cache so a resumed
    # run reproduces the same derivative estimates bit for bit
    def extra_state(self):
        return {"prev": dict(self._prev), "prev_t": self._prev_t}

    def restore_extra_state(self, state):
        self._prev = dict(state.get("prev", {"x": 0.0, "theta": 0.0}))
        self._prev_t = state.get("prev_t")


class Supervisor(Capsule):
    """balancing -> safe on cone exit; safe -> balancing on cone entry."""

    def build_structure(self):
        self.create_port("guard", MODES.base())
        self.create_port("mode", MODES.base())

    def build_behaviour(self):
        sm = StateMachine("supervisor")
        sm.trace_enabled = True
        sm.add_state(
            "balancing", entry=lambda c, m: c.send("mode", "engage")
        )
        sm.add_state(
            "safe", entry=lambda c, m: c.send("mode", "disengage")
        )
        sm.initial("balancing")
        sm.add_transition("balancing", "safe", trigger=("guard", "coneExit"))
        sm.add_transition("safe", "balancing", trigger=("guard", "coneEnter"))
        return sm


def build_model(theta0: float = 0.12) -> HybridModel:
    model = HybridModel("pendulum")
    supervisor = model.add_capsule(Supervisor("sup"))
    plant = model.add_streamer(CartPole("cartpole", theta0=theta0))
    controller = model.add_streamer(BalanceController("balance"))
    model.add_flow(plant.dport("x"), controller.dport("x"))
    model.add_flow(plant.dport("theta"), controller.dport("theta"))
    model.add_flow(controller.dport("force"), plant.dport("force"))
    model.connect_sport(supervisor.port("guard"), plant.sport("guard"))
    model.connect_sport(supervisor.port("mode"), controller.sport("mode"))
    model.add_probe("theta", plant.dport("theta"))
    model.add_probe("x", plant.dport("x"))
    model.add_probe("force", controller.dport("force"))
    return model


def main() -> None:
    # nominal case: small tilt, the controller balances the pole
    model = build_model(theta0=0.12)
    model.run(until=8.0, sync_interval=0.002)
    theta = model.probe("theta").component(0)
    print("inverted pendulum, 8 s simulated (initial tilt 0.12 rad)")
    print(f"  |theta| final      : {abs(theta[-1]):.4f} rad")
    print(f"  |theta| max        : {np.max(np.abs(theta)):.4f} rad")
    assert abs(theta[-1]) < 0.02, "pole did not balance"

    # failure case: large tilt + weak actuator force the supervisor into
    # safe mode through the cone-exit zero crossing
    crash = build_model(theta0=0.45)
    crash.streamers[1].params["clip"] = 1.0  # actuator too weak to catch
    crash.run(until=4.0, sync_interval=0.002)
    supervisor = crash.rts.tops[0]
    trace = supervisor.behaviour.trace
    fired = [detail for kind, detail in trace if kind == "fire"]
    print("large-tilt case (0.45 rad):")
    print(f"  supervisor transitions: {fired}")
    assert any("safe" in f for f in fired), "supervisor never tripped"
    print("OK")


if __name__ == "__main__":
    main()
