"""Crash-safe simulation: checkpoint, kill, resume, same answer.

The resilience layer end to end, on the inverted pendulum:

1. a reference run of the hybrid model, uninterrupted;
2. the same job with a deterministic :class:`~repro.resilience.
   FaultInjector` that kills the worker mid-run — the engine's retry
   finds the checkpoint spool, restores the newest snapshot and
   *resumes* instead of cold-restarting;
3. the recovered trajectories are compared bitwise against the
   reference — identical times, identical states, every probe.

Run:  python examples/checkpoint_resume.py
"""

import tempfile

import numpy as np

from inverted_pendulum import build_model

from repro import FaultInjector, SimulationService, SingleRunJob

T_END = 4.0
SYNC = 0.002
CRASH_STEP = 1200            # ~60% of the way through
CHECKPOINT_EVERY = 250       # major steps between snapshots


def run(spec):
    with SimulationService(workers=1) as service:
        handle = service.submit(spec)
        events = list(handle.stream())
        result = handle.result(120)
    return result, events


def main() -> None:
    factory = lambda: build_model(theta0=0.12)  # noqa: E731

    print("reference run (uninterrupted) ...")
    reference, __ = run(SingleRunJob(
        model_factory=factory, t_end=T_END, sync_interval=SYNC,
    ))

    with tempfile.TemporaryDirectory() as spool:
        injector = FaultInjector(seed=42).crash_at_step(CRASH_STEP)
        print(
            f"crashing run: injected kill at major step {CRASH_STEP}, "
            f"checkpoints every {CHECKPOINT_EVERY} steps ..."
        )
        recovered, events = run(SingleRunJob(
            model_factory=factory, t_end=T_END, sync_interval=SYNC,
            retries=1, backoff=0.01,
            checkpoint_dir=spool,
            checkpoint_every_steps=CHECKPOINT_EVERY,
            fault_injector=injector,
        ))
        resumed = [e for e in events if e.kind == "resumed"]

    assert injector.fired and injector.fired[0].kind == "crash", \
        "the planned fault never fired"
    assert resumed, "the retry cold-restarted instead of resuming"
    info = resumed[0].payload
    print(
        f"  crashed at step {injector.fired[0].step} "
        f"(t={injector.fired[0].t:.3f}), resumed from step "
        f"{info['step']} (t={resumed[0].t:.3f}) on attempt "
        f"{info['attempt']}"
    )

    for name in reference.probes:
        want = reference.probes[name]
        got = recovered.probes[name]
        assert np.array_equal(want.times, got.times), f"{name}: times"
        assert np.array_equal(want.states, got.states), f"{name}: states"
    assert reference.t_final == recovered.t_final
    print(
        f"  {len(reference.probes)} probes x "
        f"{len(reference.probes['theta'])} samples: bitwise identical"
    )
    print("OK")


if __name__ == "__main__":
    main()
