"""C99 code generation.

``generate_c(diagram)`` returns a single self-contained translation unit:

* ``static void outputs(double t, const double *x, double *sig)``
* ``static void rhs(double t, const double *x, double *dx)``
* ``static void sync_step(double t, const double *x)`` (sampled blocks)
* ``int main(void)`` — RK4 loop printing recorded columns as CSV.

The offline CI has no C compiler, so tests validate structure (balanced
braces, every state/signal declared, all emitted expressions present) and
the Python backend carries the numeric round-trip proof (bench S3); the C
and Python backends share every expression through
:mod:`repro.codegen.common`, so structural validation plus the Python
round-trip covers the generator logic.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.codegen.common import CLang, LoweredModel, lower
from repro.dataflow.diagram import Diagram


def _signal_substituter(
    signals: Sequence[str], signal_index: Dict[str, int]
) -> Callable[[str], str]:
    """A ``text -> text`` rewriter mapping whole signal identifiers to
    their ``sig[i]`` slots.  Word-boundary anchored and single-pass, so
    identifiers that embed (or are embedded in) a signal name are never
    corrupted."""
    if not signals:
        return lambda text: text
    pattern = re.compile(
        r"\b(?:" + "|".join(
            re.escape(name)
            for name in sorted(signals, key=len, reverse=True)
        ) + r")\b"
    )

    def fix(text: str) -> str:
        return pattern.sub(
            lambda m: f"sig[{signal_index[m.group(0)]}]", text
        )

    return fix


def generate_c(
    diagram: Diagram,
    records: Optional[List[str]] = None,
    default_h: float = 1e-3,
    t_end: float = 10.0,
    opt_level: int = 0,
    opt_config=None,
) -> str:
    """Generate a standalone C99 simulation program for ``diagram``."""
    model = lower(
        diagram, CLang(), records,
        opt_level=opt_level, opt_config=opt_config,
    )
    return _render(model, default_h, t_end)


# ----------------------------------------------------------------------
# N-instance batch kernel (the native-batch backend's translation unit)
# ----------------------------------------------------------------------
#: per-instance solver stages; arithmetic (order + grouping) replicates
#: :mod:`repro.solvers.fixed` exactly, same as the scalar native kernel,
#: so batched trajectories stay bitwise vs N sequential runs
_BATCH_STAGES: Dict[str, Tuple[str, ...]] = {
    "euler": (
        "inst_deriv(t, x, P, held, k1);",
        "for (i = 0; i < NX; i++) x[i] = x[i] + hh * k1[i];",
    ),
    "heun": (
        "inst_deriv(t, x, P, held, k1);",
        "for (i = 0; i < NX; i++) xs[i] = x[i] + hh * k1[i];",
        "inst_deriv(t + hh, xs, P, held, k2);",
        "for (i = 0; i < NX; i++)"
        " x[i] = x[i] + (hh / 2.0) * (k1[i] + k2[i]);",
    ),
    "rk4": (
        "inst_deriv(t, x, P, held, k1);",
        "for (i = 0; i < NX; i++) xs[i] = x[i] + (hh / 2.0) * k1[i];",
        "inst_deriv(t + hh / 2.0, xs, P, held, k2);",
        "for (i = 0; i < NX; i++) xs[i] = x[i] + (hh / 2.0) * k2[i];",
        "inst_deriv(t + hh / 2.0, xs, P, held, k3);",
        "for (i = 0; i < NX; i++) xs[i] = x[i] + hh * k3[i];",
        "inst_deriv(t + hh, xs, P, held, k4);",
        "for (i = 0; i < NX; i++)",
        "    x[i] = x[i] + (hh / 6.0)"
        " * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);",
    ),
}


def render_batch_kernel(
    model: LoweredModel, solver_name: str, n_params: int
) -> str:
    """A shared-object C translation unit integrating N instances.

    The data layout is one contiguous row per instance (``X[n][NXS]``,
    ``P[n][NPS]``, ``H[n][NHS]``) so a shard is a pointer offset, not a
    copy; the instance loop is the *inner* loop of every batch driver,
    which is the auto-vectorizable shape.  Inside the per-instance
    helpers the row pointers are named exactly ``x`` / ``P`` / ``held``,
    so the emitted expressions (``x[i]``, ``P[j]``, held locals) are
    valid verbatim — no textual rewriting.

    ``model`` must be lowered with
    :class:`~repro.codegen.common.CBatchLang`: swept parameters stay
    ``P[j]`` symbols and sampled blocks carry the statement-level sync
    replicas, so one instance's arithmetic is exactly the scalar native
    kernel's — bitwise vs ``simulate_sequential``.

    The batch-size ``n`` is a *runtime* argument of every exported
    function; nothing per-N is baked into the source, so one artifact
    serves any instance count.
    """
    if solver_name not in _BATCH_STAGES:
        raise ValueError(
            f"no batch solver stages for {solver_name!r} "
            f"(have {sorted(_BATCH_STAGES)})"
        )
    from repro.core.backend.pykernel import kernel_tables

    tables = kernel_tables(model)
    held_names = [name for name, __ in tables["held"]]
    n_states = tables["n_states"]
    n_rec = len(tables["record_exprs"])
    out: List[str] = [
        "/* Auto-generated by repro.codegen.cgen (batch) -- do not edit.",
        f" * Source model: {model.name}",
        f" * Solver: {solver_name}",
        " */",
        "#include <math.h>",
        "",
        f"#define NX {n_states}",
        f"#define NXS {max(1, n_states)}",
        f"#define NP {n_params}",
        f"#define NPS {max(1, n_params)}",
        f"#define NH {len(held_names)}",
        f"#define NHS {max(1, len(held_names))}",
        f"#define NREC {n_rec}",
        f"#define RECN {max(1, n_rec)}",
        "",
    ]

    def emit_signals(mutable_held: bool) -> None:
        qualifier = "double" if mutable_held else "const double"
        for i, name in enumerate(held_names):
            out.append(f"    {qualifier} {name} = held[{i}];")
        for line in tables["output_lines"]:
            var, __, expr = line.partition(" = ")
            out.append(f"    const double {var} = {expr};")

    out.append("static void inst_deriv(double t, const double* x,")
    out.append("                       const double* P,")
    out.append("                       const double* held, double* dx)")
    out.append("{")
    out.append("    int i;")
    out.append("    (void)t; (void)x; (void)P; (void)held;")
    emit_signals(mutable_held=False)
    out.append("    for (i = 0; i < NX; i++) dx[i] = 0.0;")
    for index, expr in tables["derivs"]:
        out.append(f"    dx[{index}] = {expr};")
    out.append("}")
    out.append("")

    out.append("static void inst_outvals(double t, const double* x,")
    out.append("                         const double* P,")
    out.append("                         const double* held, double* rec)")
    out.append("{")
    out.append("    (void)t; (void)x; (void)P; (void)held; (void)rec;")
    emit_signals(mutable_held=False)
    for i, expr in enumerate(tables["record_exprs"]):
        out.append(f"    rec[{i}] = {expr};")
    out.append("}")
    out.append("")

    out.append("static void inst_sync(double t, const double* x,")
    out.append("                      const double* P, double* held)")
    out.append("{")
    out.append("    (void)t; (void)x; (void)P; (void)held;")
    if tables["sync_rows"]:
        emit_signals(mutable_held=True)
        for indent, line in tables["sync_rows"]:
            out.append(f"    {'    ' * indent}{line}")
        for i, name in enumerate(held_names):
            out.append(f"    held[{i}] = {name};")
    out.append("}")
    out.append("")

    out.append("static void inst_step(double t, double hh, double* x,")
    out.append("                      const double* P, double* held)")
    out.append("{")
    out.append("    double k1[NXS], k2[NXS], k3[NXS], k4[NXS], xs[NXS];")
    out.append("    int i;")
    out.append("    (void)k2; (void)k3; (void)k4; (void)xs; (void)held;")
    for line in _BATCH_STAGES[solver_name]:
        out.append(f"    {line}")
    out.append("}")
    out.append("")

    out.append("void batch_sync(double t, long n, double* XB,")
    out.append("                const double* PB, double* HB)")
    out.append("{")
    out.append("    long r;")
    out.append("    for (r = 0; r < n; r++)")
    out.append("        inst_sync(t, XB + r * NXS, PB + r * NPS,")
    out.append("                  HB + r * NHS);")
    out.append("}")
    out.append("")

    out.append("void batch_step(double t, double hh, long n, double* XB,")
    out.append("                const double* PB, double* HB)")
    out.append("{")
    out.append("    long r;")
    out.append("    for (r = 0; r < n; r++)")
    out.append("        inst_step(t, hh, XB + r * NXS, PB + r * NPS,")
    out.append("                  HB + r * NHS);")
    out.append("}")
    out.append("")

    out.append("void batch_outvals(double t, long n, const double* XB,")
    out.append("                   const double* PB, const double* HB,")
    out.append("                   double* rec)")
    out.append("{")
    out.append("    long r;")
    out.append("    for (r = 0; r < n; r++)")
    out.append("        inst_outvals(t, XB + r * NXS, PB + r * NPS,")
    out.append("                     HB + r * NHS, rec + r * RECN);")
    out.append("}")
    out.append("")

    # the whole-run driver: replicates BatchSimulator.run_chunked's
    # record-before-step / step / sync loop and its chunk-boundary cut
    # (max_steps > 0 caps minor steps per call), so Python-side chunking
    # and checkpoint/resume semantics carry over bitwise
    out.append("long batch_run(double t, double t_end, double h,")
    out.append("               long record_every, long step,")
    out.append("               long max_steps, int cold, long n,")
    out.append("               double* XB, const double* PB, double* HB,")
    out.append("               double* rec_t, int write_t,")
    out.append("               double* rec, long rec_stride, long cap,")
    out.append("               double* t_out, long* step_out,")
    out.append("               int* done_out)")
    out.append("{")
    out.append("    long nrec = 0, taken = 0, r;")
    out.append("    if (cold)")
    out.append("        for (r = 0; r < n; r++)")
    out.append("            inst_sync(t, XB + r * NXS, PB + r * NPS,")
    out.append("                      HB + r * NHS);")
    out.append("    while (t < t_end - 1e-12) {")
    out.append("        double hh = (h < t_end - t) ? h : (t_end - t);")
    out.append("        if (step % record_every == 0) {")
    out.append("            if (nrec >= cap) return -1;")
    out.append("            if (write_t) rec_t[nrec] = t;")
    out.append("            for (r = 0; r < n; r++)")
    out.append("                inst_outvals(t, XB + r * NXS,")
    out.append("                             PB + r * NPS, HB + r * NHS,")
    out.append("                             rec + nrec * rec_stride"
               " + r * RECN);")
    out.append("            nrec += 1;")
    out.append("        }")
    out.append("        for (r = 0; r < n; r++)")
    out.append("            inst_step(t, hh, XB + r * NXS, PB + r * NPS,")
    out.append("                      HB + r * NHS);")
    out.append("        t = t + hh;")
    out.append("        step += 1;")
    out.append("        taken += 1;")
    out.append("        for (r = 0; r < n; r++)")
    out.append("            inst_sync(t, XB + r * NXS, PB + r * NPS,")
    out.append("                      HB + r * NHS);")
    out.append("        if (max_steps > 0 && taken >= max_steps")
    out.append("                && t < t_end - 1e-12) {")
    out.append("            *t_out = t;")
    out.append("            *step_out = step;")
    out.append("            *done_out = 0;")
    out.append("            return nrec;")
    out.append("        }")
    out.append("    }")
    out.append("    if (nrec >= cap) return -1;")
    out.append("    if (write_t) rec_t[nrec] = t;")
    out.append("    for (r = 0; r < n; r++)")
    out.append("        inst_outvals(t, XB + r * NXS, PB + r * NPS,")
    out.append("                     HB + r * NHS,")
    out.append("                     rec + nrec * rec_stride + r * RECN);")
    out.append("    nrec += 1;")
    out.append("    *t_out = t;")
    out.append("    *step_out = step;")
    out.append("    *done_out = 1;")
    out.append("    return nrec;")
    out.append("}")
    return "\n".join(out) + "\n"


def _render(model: LoweredModel, default_h: float, t_end: float) -> str:
    n_states = len(model.initial_state)
    held_decls: List[str] = []
    for node in model.plan.nodes:
        for name, value in model.code[node.index].held_vars:
            held_decls.append(f"static double {name} = {float(value)!r};")

    signals = sorted({
        line.split(" = ")[0]
        for node in model.plan.nodes
        for line in model.code[node.index].output_lines
    })
    signal_index = {name: i for i, name in enumerate(signals)}

    # one pass, whole identifiers only: sequential str.replace corrupts
    # any identifier that merely *embeds* a signal name (e.g. a held
    # register h_xv_a_held containing the signal v_a_held); \b anchors
    # make a match start/end at identifier boundaries, and the single
    # pass means replacements never rescan each other's output
    fix = _signal_substituter(signals, signal_index)

    out: List[str] = []
    out.append("/* Auto-generated by repro.codegen.cgen -- do not edit.")
    out.append(f" * Source diagram: {model.name}")
    out.append(f" * States: {', '.join(model.state_names) or '(none)'}")
    out.append(" */")
    out.append("#include <math.h>")
    out.append("#include <stdio.h>")
    out.append("")
    out.append(f"#define N_STATES {n_states}")
    out.append(f"#define N_SIGNALS {len(signals)}")
    out.append("")
    init = ", ".join(repr(float(v)) for v in model.initial_state) or "0.0"
    out.append(f"static const double initial_state[] = {{{init}}};")
    out.extend(held_decls)
    out.append("")
    out.append("static void outputs(double t, const double *x, double *sig)")
    out.append("{")
    out.append("    (void)t; (void)x;")
    for node in model.plan.nodes:
        for line in model.code[node.index].output_lines:
            var, __, expr = line.partition(" = ")
            out.append(f"    sig[{signal_index[var]}] = {fix(expr)};")
    out.append("}")
    out.append("")
    out.append("static void rhs(double t, const double *x, double *dx)")
    out.append("{")
    out.append("    double sig[N_SIGNALS > 0 ? N_SIGNALS : 1];")
    out.append("    outputs(t, x, sig);")
    out.append("    (void)sig;")
    deriv_index = 0
    for node in model.plan.nodes:
        for expr in model.code[node.index].deriv_exprs:
            out.append(f"    dx[{deriv_index}] = {fix(expr)};")
            deriv_index += 1
    out.append("}")
    out.append("")
    out.append("static void sync_step(double t, const double *x)")
    out.append("{")
    out.append("    double sig[N_SIGNALS > 0 ? N_SIGNALS : 1];")
    out.append("    outputs(t, x, sig);")
    out.append("    (void)sig; (void)t; (void)x;")
    for node in model.plan.nodes:
        for line in model.code[node.index].sync_lines:
            var, __, expr = line.partition(" = ")
            out.append(f"    {var} = {fix(expr)};")
    out.append("}")
    out.append("")
    out.append("int main(void)")
    out.append("{")
    out.append("    double x[N_STATES > 0 ? N_STATES : 1];")
    out.append("    double k1[N_STATES > 0 ? N_STATES : 1];")
    out.append("    double k2[N_STATES > 0 ? N_STATES : 1];")
    out.append("    double k3[N_STATES > 0 ? N_STATES : 1];")
    out.append("    double k4[N_STATES > 0 ? N_STATES : 1];")
    out.append("    double xt[N_STATES > 0 ? N_STATES : 1];")
    out.append("    double sig[N_SIGNALS > 0 ? N_SIGNALS : 1];")
    out.append("    int i;")
    out.append("    for (i = 0; i < N_STATES; i++) x[i] = initial_state[i];")
    out.append(f"    double t = 0.0, h = {default_h!r};")
    out.append(f"    const double t_end = {t_end!r};")
    header = ",".join(["t"] + [label for label, __ in model.records])
    out.append(f'    printf("%s\\n", "{header}");')
    out.append("    sync_step(t, x);")
    out.append("    while (t < t_end - 1e-12) {")
    out.append("        double hh = (h < t_end - t) ? h : (t_end - t);")
    out.append("        outputs(t, x, sig);")
    fmt = ",".join(["%.9g"] * (1 + len(model.records)))
    args = ", ".join(
        ["t"] + [f"sig[{signal_index[signal]}]"
                 for __, signal in model.records]
    )
    out.append(f'        printf("{fmt}\\n", {args});')
    out.append("        rhs(t, x, k1);")
    out.append("        for (i = 0; i < N_STATES; i++)"
               " xt[i] = x[i] + hh / 2.0 * k1[i];")
    out.append("        rhs(t + hh / 2.0, xt, k2);")
    out.append("        for (i = 0; i < N_STATES; i++)"
               " xt[i] = x[i] + hh / 2.0 * k2[i];")
    out.append("        rhs(t + hh / 2.0, xt, k3);")
    out.append("        for (i = 0; i < N_STATES; i++)"
               " xt[i] = x[i] + hh * k3[i];")
    out.append("        rhs(t + hh, xt, k4);")
    out.append("        for (i = 0; i < N_STATES; i++)")
    out.append("            x[i] += hh / 6.0 * "
               "(k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);")
    out.append("        t += hh;")
    out.append("        sync_step(t, x);")
    out.append("    }")
    out.append("    return 0;")
    out.append("}")
    return "\n".join(out) + "\n"
