"""Independent verification of the solver suite against SciPy.

SciPy is not a runtime dependency of the library; these tests use it as
an *oracle*: our integrators must agree with ``scipy.integrate`` on
nonlinear, oscillatory and event-bearing problems.
"""

import math

import numpy as np
import pytest

scipy_integrate = pytest.importorskip("scipy.integrate")

from repro.solvers import (  # noqa: E402
    BackwardEuler,
    DormandPrince45,
    EventSpec,
    RK4,
    integrate,
)


def van_der_pol(mu):
    def rhs(t, y):
        return np.array([
            y[1],
            mu * (1.0 - y[0] ** 2) * y[1] - y[0],
        ])

    return rhs


class TestAgainstScipy:
    def test_van_der_pol_nonstiff(self):
        """mu = 1 Van der Pol oscillator over one pseudo-period."""
        rhs = van_der_pol(1.0)
        ours = integrate(
            rhs, [2.0, 0.0], 0.0, 10.0,
            DormandPrince45(rtol=1e-9, atol=1e-12), h=0.01,
        )
        reference = scipy_integrate.solve_ivp(
            rhs, (0.0, 10.0), [2.0, 0.0], rtol=1e-10, atol=1e-13,
            dense_output=True,
        )
        assert ours.y_final[0] == pytest.approx(
            reference.y[0, -1], abs=1e-6
        )
        assert ours.y_final[1] == pytest.approx(
            reference.y[1, -1], abs=1e-6
        )

    def test_rk4_fixed_step_vs_scipy(self):
        rhs = van_der_pol(0.5)
        ours = integrate(rhs, [1.0, 1.0], 0.0, 5.0, RK4(), h=0.001)
        reference = scipy_integrate.solve_ivp(
            rhs, (0.0, 5.0), [1.0, 1.0], rtol=1e-11, atol=1e-13,
        )
        assert ours.y_final[0] == pytest.approx(
            reference.y[0, -1], abs=1e-7
        )

    def test_stiff_problem_vs_bdf(self):
        """Robertson-like stiffness: BE agrees with scipy BDF."""
        a = np.array([[-500.0, 499.0], [499.0, -500.0]])

        def rhs(t, y):
            return a @ y

        ours = integrate(rhs, [2.0, 0.0], 0.0, 1.0, BackwardEuler(),
                         h=0.001)
        reference = scipy_integrate.solve_ivp(
            rhs, (0.0, 1.0), [2.0, 0.0], method="BDF",
            rtol=1e-10, atol=1e-13,
        )
        assert ours.y_final[0] == pytest.approx(
            reference.y[0, -1], abs=1e-3
        )
        assert ours.y_final[1] == pytest.approx(
            reference.y[1, -1], abs=1e-3
        )

    def test_event_time_vs_scipy_events(self):
        """Falling ball impact localisation vs scipy's event finder."""
        g = 9.81

        def rhs(t, y):
            return np.array([y[1], -g])

        def ground(t, y):
            return y[0]

        ground.terminal = True
        ground.direction = -1

        ours = integrate(
            rhs, [10.0, 0.0], 0.0, 5.0, RK4(), h=0.01,
            events=[EventSpec("ground", lambda t, y: y[0],
                              direction=-1, terminal=True)],
        )
        reference = scipy_integrate.solve_ivp(
            rhs, (0.0, 5.0), [10.0, 0.0], events=ground,
            rtol=1e-10, atol=1e-12,
        )
        assert ours.t_final == pytest.approx(
            float(reference.t_events[0][0]), abs=1e-4
        )
