"""Experiment C3 — claim: thread separation is sound and easy to realise.

Three measurements behind "this method makes the architecture of complex
control system very sound, and easy to realize":

1. **Channel cost** — throughput of the bounded channels carrying
   capsule<->streamer traffic, with the policy ablation (BLOCK vs
   OVERWRITE vs LATEST) from DESIGN.md §6.
2. **Timing predictability** — UML-RT timer jitter under queue load
   (dispatch cost > 0) vs the extension's continuous Time service, which
   is exact by construction (W11 + sync-point advancement).
3. **Real OS threads** — the cooperative scheduler and the real-thread
   backend produce bit-identical trajectories; slices map 1:1 onto
   ``threading.Thread``.
"""

import numpy as np
import pytest

from repro.analysis import MessageTrace
from repro.core.channel import Channel, ChannelPolicy
from repro.core.model import HybridModel
from repro.core.timeservice import ContinuousTime
from repro.umlrt.runtime import RTSystem


def test_c3_channel_throughput(benchmark, report):
    channel = Channel("bench", capacity=64, policy=ChannelPolicy.OVERWRITE)
    payload = {"signal": "setpoint", "value": 1.0}

    def push_pop():
        channel.push(payload)
        channel.pop()

    benchmark(push_pop)
    report("C3: channel push+pop cost", [
        f"operations measured: {channel.pushed}",
        "see pytest-benchmark table for ns/op",
    ])


def test_c3_channel_policy_ablation(benchmark, report):
    """Behaviour under overload differs by policy; cost barely does."""
    stats = {}

    def run_all_policies():
        for policy in ChannelPolicy:
            channel = Channel("c", capacity=8, policy=policy)
            delivered = 0
            for index in range(1000):
                if channel.try_push(index):
                    delivered += 1
                if index % 4 == 0:  # slow consumer
                    channel.pop()
            stats[policy.value] = {
                "accepted": delivered,
                "dropped": channel.dropped,
                "max_depth": channel.max_depth,
            }

    benchmark(run_all_policies)
    lines = [f"{'policy':<10}{'accepted':>9}{'dropped':>8}{'max depth':>10}"]
    for name, row in stats.items():
        lines.append(
            f"{name:<10}{row['accepted']:>9}{row['dropped']:>8}"
            f"{row['max_depth']:>10}"
        )
    report("C3: channel policy ablation (slow consumer)", lines)
    assert stats["latest"]["max_depth"] == 1
    assert stats["block"]["accepted"] < 1000      # refuses when full
    assert stats["overwrite"]["accepted"] == 1000  # never refuses


class _TimerUser:
    pass


def test_c3_timer_jitter_vs_time_service(benchmark, report, bench_json):
    """UML-RT timeout observation jitter under load vs continuous Time."""
    from tests.conftest import Echo, Pinger

    from repro.umlrt.capsule import Capsule
    from repro.umlrt.statemachine import StateMachine

    class Periodic(Capsule):
        def __init__(self, name):
            self.observed = []
            super().__init__(name)

        def build_behaviour(self):
            sm = StateMachine("p")
            sm.add_state("s")
            sm.initial("s")
            sm.add_transition(
                "s", trigger=("timer", "timeout"), internal=True,
                action=lambda c, m: c.observed.append(c.runtime.now),
            )
            return sm

        def on_start(self):
            self.inform_every(1.0)

    results = {}

    def measure():
        rts = RTSystem("loaded")
        rts.dispatch_cost = 0.2  # synthetic CPU cost per message
        users = [rts.add_top(Periodic(f"u{i}")) for i in range(5)]
        rts.start()
        rts.run(until=10.0)
        lags = []
        for user in users:
            lags.extend(
                observed - (k + 1) * 1.0
                for k, observed in enumerate(user.observed)
            )
        results["umlrt_max_jitter"] = max(lags)
        results["umlrt_mean_jitter"] = sum(lags) / len(lags)

        # the Time stereotype: advanced by the scheduler, exact and
        # monotone regardless of message load
        time = ContinuousTime()
        time.audit_enabled = True
        for k in range(1, 101):
            time.advance_to(k * 0.1)
        results["time_monotone"] = time.is_monotone()
        results["time_error"] = abs(time.now - 10.0)

    benchmark(measure)
    report("C3: timing predictability", [
        f"UML-RT timer jitter under load: mean="
        f"{results['umlrt_mean_jitter']:.3f}s "
        f"max={results['umlrt_max_jitter']:.3f}s  "
        "(paper: 'timing in UML-RT is unpredictable')",
        f"Time stereotype: monotone={results['time_monotone']}, "
        f"end-of-run error={results['time_error']:.1e}",
    ])
    assert results["umlrt_max_jitter"] > 0.0
    assert results["time_monotone"] and results["time_error"] < 1e-12
    bench_json("c3", {
        "umlrt_mean_jitter_s": results["umlrt_mean_jitter"],
        "umlrt_max_jitter_s": results["umlrt_max_jitter"],
        "time_service_error": results["time_error"],
    })


def _two_thread_model():
    from tests.conftest import ConstLeaf, DecayLeaf, IntegratorLeaf

    model = HybridModel("mt")
    fast = model.create_thread("fast", solver="rk4", h=1e-3)
    slow = model.create_thread("slow", solver="euler", h=1e-2)
    source = model.add_streamer(ConstLeaf("src", 1.0), fast)
    a = model.add_streamer(IntegratorLeaf("a"), fast)
    b = model.add_streamer(IntegratorLeaf("b"), slow)
    model.add_flow(source.dport("y"), a.dport("u"))
    model.add_flow(a.dport("y"), b.dport("u"))
    model.add_probe("b", b.dport("y"))
    return model


def test_c3_cooperative_backend(benchmark):
    def run():
        model = _two_thread_model()
        model.run(until=1.0, sync_interval=0.02)
        return model.probe("b").y_final[0]

    value = benchmark(run)
    assert value == pytest.approx(0.5, abs=0.05)


def test_c3_real_thread_backend(benchmark, report, bench_json):
    def run():
        model = _two_thread_model()
        model.run(until=1.0, sync_interval=0.02, real_threads=True)
        return model.probe("b").y_final[0]

    real_value = benchmark(run)

    reference = _two_thread_model()
    reference.run(until=1.0, sync_interval=0.02)
    cooperative_value = reference.probe("b").y_final[0]

    report("C3: real OS threads vs cooperative scheduler", [
        f"cooperative final: {cooperative_value!r}",
        f"real threads final: {real_value!r}",
        f"bit-identical: {real_value == cooperative_value} "
        "(slices are data-disjoint -> direct mapping onto OS threads)",
    ])
    assert real_value == cooperative_value
    bench_json("c3", {
        "real_threads_bit_identical": real_value == cooperative_value,
    })
