"""Static diagnostics for hybrid models: lint before you simulate.

The paper's structural laws (W-rules) are enforced at construction time;
this package adds the *whole-model* static analyses nothing enforces —
delay-free algebraic cycles with their full path, dead blocks, unread
outputs, constant-foldable subgraphs, unreachable states, overlapping
triggers, leaked timers, cross-thread races, infeasible deadlines — and
reports them as :class:`Diagnostic` records with stable codes, optional
machine-applicable fix-its and three surfaces:

* **library** — ``run_checks(model_or_plan)`` → :class:`CheckResult`;
* **CLI** — ``python -m repro.check examples/*.py --fail-on=error``;
* **service gate** — ``SimulationService(check_policy="enforce")``
  rejects defective jobs at submission with ``checks.failed`` metrics
  and a ``checks`` telemetry event.

Rule codes and what they enforce are catalogued in DESIGN.md §8.
"""

from __future__ import annotations

from repro.check.diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    FixIt,
    apply_fixits,
    severity_rank,
    worst_severity,
)
from repro.check.registry import (
    CATEGORIES,
    DEFAULT_REGISTRY,
    CheckConfig,
    Rule,
    RuleError,
    RuleRegistry,
    meets_threshold,
)
from repro.check.context import CheckContext, CheckTargetError, build_context
from repro.check.runner import CheckResult, autofix, run_checks

_RULES_LOADED = False


def default_registry() -> RuleRegistry:
    """The shared registry with every built-in rule loaded."""
    global _RULES_LOADED
    if not _RULES_LOADED:
        # importing the rule modules registers them (decorator side
        # effect); deferred so `import repro` stays cheap
        from repro.check import (  # noqa: F401
            model_rules, plan_rules, sched_rules, sm_rules, thread_rules,
        )
        _RULES_LOADED = True
    return DEFAULT_REGISTRY


__all__ = [
    "CATEGORIES",
    "CheckConfig",
    "CheckContext",
    "CheckResult",
    "CheckTargetError",
    "DEFAULT_REGISTRY",
    "Diagnostic",
    "ERROR",
    "FixIt",
    "INFO",
    "Rule",
    "RuleError",
    "RuleRegistry",
    "SEVERITIES",
    "WARNING",
    "apply_fixits",
    "autofix",
    "build_context",
    "default_registry",
    "meets_threshold",
    "run_checks",
    "severity_rank",
    "worst_severity",
]
