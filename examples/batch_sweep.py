"""Batch parameter sweep: 200 closed-loop variants in one NumPy program.

Controller tuning is a many-runs problem: the same block diagram, re-run
for every candidate gain.  The batch backend compiles the diagram's
ExecutionPlan into a single vectorised program over an ``(N, n_state)``
state matrix, so sweeping ``N`` parameter sets costs one Python loop
instead of ``N`` — here we grid-sweep a PID's ``kp``/``ki`` over a
first-order plant, pick the gains with the best settling error, and
cross-check one instance bit-for-bit against the interpreter-based
sequential reference.

Run:  python examples/batch_sweep.py
"""

import time as wallclock

import numpy as np

from repro import BatchSimulator, simulate_sequential
from repro.dataflow import Diagram, FirstOrderLag, PID, Step, Sum


def make_loop() -> Diagram:
    """Step -> Sum(+-) -> PID -> plant, with unity feedback."""
    d = Diagram("loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=1.0, ki=0.5, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.4))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    return d


def main() -> None:
    # a 20 x 10 grid of (kp, ki) candidates = 200 instances
    kp_axis = np.linspace(0.5, 8.0, 20)
    ki_axis = np.linspace(0.1, 4.0, 10)
    kp_grid, ki_grid = np.meshgrid(kp_axis, ki_axis, indexing="ij")
    sweeps = {
        "pid.kp": kp_grid.ravel(),
        "pid.ki": ki_grid.ravel(),
    }
    n = kp_grid.size

    sim = BatchSimulator(
        make_loop(), n, solver="rk4", h=2e-3,
        records=["plant.out"], sweeps=sweeps,
    )
    start = wallclock.perf_counter()
    batch = sim.run(2.0, record_every=10)
    wall = wallclock.perf_counter() - start

    # score: worst tracking error over the last 25% of the run
    y = batch.series["plant.out"]
    tail = y[3 * len(batch.t) // 4:, :]
    score = np.max(np.abs(tail - 1.0), axis=0)
    best = int(np.argmin(score))
    print(f"swept {n} gain pairs in {wall * 1e3:.1f} ms "
          f"({wall / n * 1e6:.0f} us per variant)")
    print(f"best gains: kp={sweeps['pid.kp'][best]:.2f} "
          f"ki={sweeps['pid.ki'][best]:.2f} "
          f"(tail error {score[best]:.4f})")

    # cross-check: the best instance, re-run through the interpreter
    # path one at a time, must match the batched trajectory exactly
    single = {path: values[best:best + 1] for path, values in sweeps.items()}
    reference = simulate_sequential(
        make_loop, 1, 2.0, solver="rk4", h=2e-3,
        records=["plant.out"], sweeps=single, record_every=10,
    )
    assert np.array_equal(
        batch.series["plant.out"][:, best],
        reference.series["plant.out"][:, 0],
    ), "batched trajectory diverged from the sequential reference"
    print("batched trajectory is bitwise identical to the sequential run")

    assert score[best] < 0.05, "sweep failed to find a settling controller"
    print("OK")


if __name__ == "__main__":
    main()
