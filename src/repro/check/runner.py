"""Running the rules: ``run_checks``, results, and auto-fixing.

``run_checks(target)`` is the library surface the CLI and the service
gate both sit on: normalise the target into a
:class:`~repro.check.context.CheckContext`, run every enabled rule in
registration order, and hand back a :class:`CheckResult` — an ordered
diagnostic list with severity accessors, a pass/fail threshold test and
text/JSON renderings.

``autofix(target)`` applies machine-applicable fix-its to a fixpoint:
repairs cascade (deleting a dead block can orphan its source, which the
next pass removes), so it re-lints after every round until no fixable
diagnostic remains.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.check.context import CheckContext, build_context
from repro.check.diagnostics import (
    Diagnostic, apply_fixits, severity_rank, worst_severity,
)
from repro.check.registry import (
    CheckConfig, RuleRegistry, meets_threshold,
)


class CheckResult:
    """The ordered findings of one checker run."""

    def __init__(
        self, diagnostics: List[Diagnostic], subject: str = "model"
    ) -> None:
        self.diagnostics = list(diagnostics)
        self.subject = subject

    # -- severity views -------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    @property
    def worst(self) -> Optional[str]:
        return worst_severity(d.severity for d in self.diagnostics)

    def ok(self, fail_on: str = "error") -> bool:
        """True when nothing at/above the ``fail_on`` threshold fired."""
        return not any(
            meets_threshold(d.severity, fail_on) for d in self.diagnostics
        )

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    # -- renderings -----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "subject": self.subject,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
        }

    def format_text(self) -> str:
        if not self.diagnostics:
            return f"{self.subject}: clean"
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-severity_rank(d.severity), d.code, d.subject),
        )
        lines = [str(d) for d in ordered]
        lines.append(
            f"{self.subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        )
        return "\n".join(lines)

    # -- container protocol --------------------------------------------
    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckResult({self.subject!r}, errors={len(self.errors)}, "
            f"warnings={len(self.warnings)}, infos={len(self.infos)})"
        )


def run_checks(
    target: Any,
    config: Optional[CheckConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> CheckResult:
    """Statically analyse a model, diagram, plan or state machine.

    Runs without executing the target: no scheduler build, no solver
    step, no capsule start.  ``config`` selects/disables rules and
    overrides severities; ``registry`` swaps the rule set entirely.
    """
    from repro.check import default_registry

    cfg = config if config is not None else CheckConfig()
    reg = registry if registry is not None else default_registry()
    ctx = build_context(target, cfg)
    for rule in reg.active(cfg):
        ctx._rule = rule
        rule.check(ctx)
    ctx._rule = None
    return CheckResult(ctx.diagnostics, subject=ctx.subject)


def autofix(
    target: Any,
    config: Optional[CheckConfig] = None,
    registry: Optional[RuleRegistry] = None,
    max_rounds: int = 32,
) -> CheckResult:
    """Apply fix-its to a fixpoint; returns the final (post-fix) result.

    Each round re-lints and applies every attached fix-it; stops when a
    round fixes nothing (or after ``max_rounds``, a cascade backstop).
    """
    result = run_checks(target, config=config, registry=registry)
    for __ in range(max_rounds):
        if apply_fixits(result.diagnostics) == 0:
            break
        result = run_checks(target, config=config, registry=registry)
    return result


__all__ = ["CheckContext", "CheckResult", "autofix", "run_checks"]
