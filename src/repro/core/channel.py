"""Bounded channels: the thread communication mechanism of the paper.

Capsule threads and streamer threads never share state; they exchange
messages over bounded channels.  Three overflow policies cover the design
space ablated in bench C3:

* ``BLOCK`` — refuse the push; the producer must retry (in the
  deterministic scheduler a refused push raises, surfacing the overflow
  instead of silently stalling).
* ``OVERWRITE`` — drop the *oldest* entry (control loops usually want the
  freshest data; bounded memory, bounded staleness).
* ``LATEST`` — keep only the newest entry (a 1-deep mailbox; the classic
  sample-and-hold register between a controller and a plant model).

Channels are lock-protected so the optional real-thread backend
(:mod:`repro.core.thread`) can share them safely.

Streaming consumers: the service layer (:mod:`repro.service`) uses
channels as job telemetry streams, so a channel can be *closed* by the
producer to signal end-of-stream, ``pop(block=True)`` waits for the next
item (or the close) instead of busy-polling, and iterating a channel
yields items until it is both closed and drained.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Any, Deque, Iterator, List, Optional


class ChannelError(Exception):
    """Raised when a BLOCK-policy channel overflows or a closed channel
    is pushed to."""


class ChannelPolicy(enum.Enum):
    BLOCK = "block"
    OVERWRITE = "overwrite"
    LATEST = "latest"


class Channel:
    """A bounded, thread-safe FIFO with a configurable overflow policy."""

    def __init__(
        self,
        name: str,
        capacity: int = 64,
        policy: ChannelPolicy = ChannelPolicy.OVERWRITE,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"channel capacity must be >= 1: {capacity}")
        self.name = name
        self.capacity = 1 if policy is ChannelPolicy.LATEST else capacity
        self.policy = policy
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.pushed = 0
        self.dropped = 0
        self.popped = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    def push(self, item: Any) -> bool:
        """Push an item; returns False only if a BLOCK channel was full."""
        with self._lock:
            if self._closed:
                raise ChannelError(f"channel {self.name!r} is closed")
            self.pushed += 1
            if len(self._items) >= self.capacity:
                if self.policy is ChannelPolicy.BLOCK:
                    self.dropped += 1
                    raise ChannelError(
                        f"channel {self.name!r} full "
                        f"(capacity {self.capacity}, policy BLOCK)"
                    )
                # OVERWRITE and LATEST both evict the oldest
                self._items.popleft()
                self.dropped += 1
            self._items.append(item)
            self.max_depth = max(self.max_depth, len(self._items))
            self._not_empty.notify()
            return True

    def try_push(self, item: Any) -> bool:
        """Like :meth:`push` but returns False instead of raising on BLOCK."""
        try:
            return self.push(item)
        except ChannelError:
            return False

    def pop(
        self, block: bool = False, timeout: Optional[float] = None
    ) -> Optional[Any]:
        """Pop the oldest item, or None if empty.

        With ``block=True`` the call waits until an item arrives, the
        channel is closed (returns None immediately once drained), or
        ``timeout`` seconds elapse (returns None).  :meth:`close` wakes
        *every* blocked popper, so a consumer can never hang on a
        channel whose producer has finished — the guarantee resumed
        jobs rely on when they re-attach to a drained stream.
        """
        item, __ = self.pop_item(block=block, timeout=timeout)
        return item

    def pop_item(
        self, block: bool = False, timeout: Optional[float] = None
    ) -> "tuple[Optional[Any], bool]":
        """Like :meth:`pop`, but unambiguous: returns ``(item, True)``
        when an item was popped and ``(None, False)`` when the channel
        was empty — so a legitimately queued ``None`` is distinguishable
        from exhaustion."""
        with self._lock:
            if block:
                self._not_empty.wait_for(
                    lambda: self._items or self._closed, timeout,
                )
            if not self._items:
                return None, False
            self.popped += 1
            return self._items.popleft(), True

    def drain(self) -> List[Any]:
        """Pop everything, oldest first."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self.popped += len(items)
            return items

    def peek_latest(self) -> Optional[Any]:
        """The newest item without removing it, or None."""
        with self._lock:
            return self._items[-1] if self._items else None

    def close(self) -> None:
        """Mark end-of-stream: no further pushes; waiters wake up.

        Items already queued stay poppable; :meth:`pop` and iteration
        drain them before reporting exhaustion.  Closing twice is a
        no-op.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- checkpointing hooks (resilience layer) -------------------------
    def snapshot_state(self) -> dict:
        """Extract queued items and statistics for the snapshot codec.

        Items are returned as-is (the codec encodes them); the queue
        order is preserved oldest-first.
        """
        with self._lock:
            return {
                "items": list(self._items),
                "closed": self._closed,
                "pushed": self.pushed,
                "dropped": self.dropped,
                "popped": self.popped,
                "max_depth": self.max_depth,
            }

    def restore_state(self, state: dict) -> None:
        """Replace queue contents and statistics from a snapshot."""
        with self._lock:
            self._items.clear()
            self._items.extend(state.get("items", ()))
            self._closed = bool(state.get("closed", False))
            self.pushed = int(state.get("pushed", 0))
            self.dropped = int(state.get("dropped", 0))
            self.popped = int(state.get("popped", 0))
            self.max_depth = int(state.get("max_depth", len(self._items)))
            self._not_empty.notify_all()

    def __iter__(self) -> Iterator[Any]:
        """Yield items (blocking) until the channel is closed and drained."""
        while True:
            item, popped = self.pop_item(block=True)
            if not popped:
                with self._lock:
                    if self._closed and not self._items:
                        return
                continue
            yield item

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Channel({self.name!r}, {self.policy.value}, "
            f"depth={len(self)}/{self.capacity})"
        )
