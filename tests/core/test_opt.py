"""Plan optimizer: pass-by-pass behaviour, protection, O-level contract.

Each pass is exercised on the smallest diagram that triggers it, then the
pipeline is validated end-to-end: O1 must be bitwise identical to O0 on
fixed-step runs, fingerprints must separate configurations, and
protection (probes, sweep variables) must pin pads the outside world
reads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import HybridModel
from repro.core.network import FlatNetwork
from repro.core.opt import (
    FoldedBlock, FusedChain, OptConfig, PlanOptimizer, resolve_config,
)
from repro.dataflow import (
    Bias, Constant, Diagram, Gain, Integrator, Step, Sum,
)


def plan_of(diagram, level=0, config=None, protect=()):
    diagram.finalise()
    return FlatNetwork([diagram]).plan(
        opt_level=level, opt_config=config, protect=protect,
    )


def leaf_names(plan):
    return [node.leaf.name for node in plan.nodes]


def make_live_tail(d, feed):
    """An Integrator consuming ``feed`` so the chain stays live (the
    integrator has state: never rewritable, a DCE root)."""
    d.add(Integrator("keep"))
    d.connect(feed, "keep.in")


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
class TestOptConfig:
    def test_levels(self):
        assert not OptConfig.from_level(0).is_active
        o1 = OptConfig.from_level(1)
        assert o1.is_active and not o1.allows_reassociation
        o2 = OptConfig.from_level(2)
        assert o2.is_active and o2.allows_reassociation

    def test_cache_tokens_distinct(self):
        tokens = {
            OptConfig.from_level(level).cache_token()
            for level in (0, 1, 2)
        }
        assert len(tokens) == 3

    def test_pass_toggles(self):
        config = OptConfig(level=1, fuse=False, cse=False)
        assert config.enabled_passes() == ("dce", "fold")
        assert "fuse" not in config.cache_token()

    def test_resolve(self):
        explicit = OptConfig.from_level(2)
        assert resolve_config(0, explicit) is explicit
        assert resolve_config(1).level == 1


# ----------------------------------------------------------------------
# dead-code elimination
# ----------------------------------------------------------------------
class TestDCE:
    def build(self):
        d = Diagram("m")
        d.add(Constant("c", value=1.0))
        d.add(Gain("dead1", k=2.0))
        d.add(Gain("dead2", k=3.0))
        d.add(Gain("live", k=4.0))
        d.connect("c.out", "dead1.in")
        d.connect("dead1.out", "dead2.in")
        d.connect("c.out", "live.in")
        make_live_tail(d, "live.out")
        return d

    def test_cascade_removed_in_one_run(self):
        plan = plan_of(self.build(), level=1)
        names = leaf_names(plan)
        assert "dead1" not in names and "dead2" not in names
        assert "live" in names and "keep" in names
        assert sorted(plan.opt_report.dce_removed) == [
            "m.dead1", "m.dead2",
        ]

    def test_probe_protects(self):
        d = self.build()
        d.finalise()
        network = FlatNetwork([d])
        pad = d.sub("dead2").dport("out")
        plan = network.plan(opt_level=1, protect=[pad])
        assert "dead2" in leaf_names(plan)

    def test_o0_untouched(self):
        plan = plan_of(self.build(), level=0)
        assert plan.opt_report is None
        assert "dead1" in leaf_names(plan)


# ----------------------------------------------------------------------
# constant folding
# ----------------------------------------------------------------------
class TestFold:
    def build(self):
        d = Diagram("m")
        d.add(Constant("c", value=2.0))
        d.add(Gain("g", k=3.0))
        d.add(Bias("b", bias=1.0))
        d.connect("c.out", "g.in")
        d.connect("g.out", "b.in")
        make_live_tail(d, "b.out")
        return d

    def test_interior_removed_boundary_frozen(self):
        plan = plan_of(self.build(), level=1)
        names = leaf_names(plan)
        assert "c" not in names and "g" not in names
        boundary = next(n.leaf for n in plan.nodes if n.leaf.name == "b")
        assert isinstance(boundary, FoldedBlock)
        assert boundary.scalar_values() == [("out", 7.0)]
        assert sorted(plan.opt_report.folded) == ["m.b", "m.c", "m.g"]
        assert plan.opt_report.constants == ["m.b"]

    def test_folded_value_is_bitwise(self):
        d = self.build()
        reference = plan_of(d, level=0)
        reference.evaluate(0.0, np.zeros(reference.state_size))
        expected = d.sub("b").dport("out").read_scalar()
        optimized = plan_of(self.build(), level=1)
        frozen = dict(next(
            n.leaf for n in optimized.nodes if n.leaf.name == "b"
        ).scalar_values())
        assert frozen["out"] == expected

    def test_step_source_not_folded(self):
        d = Diagram("m")
        d.add(Step("s", t_step=1.0))
        d.add(Gain("g", k=3.0))
        d.connect("s.out", "g.in")
        make_live_tail(d, "g.out")
        plan = plan_of(d, level=1)
        assert plan.opt_report.folded == []


# ----------------------------------------------------------------------
# common-subexpression elimination
# ----------------------------------------------------------------------
class TestCSE:
    def build(self):
        d = Diagram("m")
        d.add(Step("s", t_step=0.5))
        d.add(Gain("a", k=2.0))
        d.add(Gain("dup", k=2.0))
        d.add(Sum("mix", signs="++"))
        d.connect("s.out", "a.in")
        d.connect("s.out", "dup.in")
        d.connect("a.out", "mix.in1")
        d.connect("dup.out", "mix.in2")
        make_live_tail(d, "mix.out")
        return d

    def test_duplicate_merged(self):
        # fold can't fire (Step is time-varying), so CSE carries it
        config = OptConfig(level=1, fuse=False)
        plan = plan_of(self.build(), config=config)
        names = leaf_names(plan)
        assert ("a" in names) != ("dup" in names)
        assert len(plan.opt_report.cse_merged) == 1

    def test_merged_run_matches(self):
        reference = plan_of(self.build(), level=0)
        optimized = plan_of(self.build(), level=1)
        x = np.array([0.0])
        for t in (0.0, 0.25, 0.75):
            assert np.array_equal(
                reference.rhs(t, x), optimized.rhs(t, x),
            )


# ----------------------------------------------------------------------
# gain/sum/affine fusion
# ----------------------------------------------------------------------
class TestFusion:
    def build(self, n=6):
        d = Diagram("m")
        d.add(Step("s", t_step=0.5))
        prev = "s.out"
        for index in range(n):
            d.add(Gain(f"g{index}", k=1.0 + index * 0.1))
            d.connect(prev, f"g{index}.in")
            prev = f"g{index}.out"
        make_live_tail(d, prev)
        return d

    def test_chain_collapses_to_one_node(self):
        plan = plan_of(self.build(), level=1)
        fused = [
            n.leaf for n in plan.nodes if isinstance(n.leaf, FusedChain)
        ]
        assert len(fused) == 1
        assert len(fused[0].member_paths) == 6
        assert plan.opt_report.counts()["fuse.ops_fused"] >= 5

    def test_o1_replay_is_bitwise(self):
        reference = plan_of(self.build(), level=0)
        optimized = plan_of(self.build(), level=1)
        x = np.zeros(1)
        for t in (0.0, 0.6, 1.7):
            assert np.array_equal(
                reference.rhs(t, x), optimized.rhs(t, x),
            )

    def test_o2_affine_within_ulp(self):
        reference = plan_of(self.build(), level=0)
        optimized = plan_of(self.build(), level=2)
        fused = next(
            n.leaf for n in optimized.nodes
            if isinstance(n.leaf, FusedChain)
        )
        assert fused.affine is not None
        x = np.zeros(1)
        a = reference.rhs(0.6, x)
        b = optimized.rhs(0.6, x)
        assert b == pytest.approx(a, rel=1e-12)


# ----------------------------------------------------------------------
# pipeline-level contracts
# ----------------------------------------------------------------------
def pid_loop_model():
    """The closed-loop PID rig used across the suite, with a probe."""
    model = HybridModel("pid")
    sp = model.add_streamer(Constant("sp", value=1.0))
    err = model.add_streamer(Sum("err", signs="+-"))
    kp = model.add_streamer(Gain("kp", k=4.0))
    plant = model.add_streamer(Integrator("plant"))
    fb = model.add_streamer(Gain("fb", k=1.0))
    model.add_flow(sp.dport("out"), err.dport("in1"))
    model.add_flow(fb.dport("out"), err.dport("in2"))
    model.add_flow(err.dport("out"), kp.dport("in"))
    model.add_flow(kp.dport("out"), plant.dport("in"))
    model.add_flow(plant.dport("out"), fb.dport("in"))
    model.add_probe("y", plant.dport("out"))
    return model


class TestEndToEnd:
    def test_o1_scheduler_run_is_bitwise(self):
        reference = pid_loop_model()
        reference.run(until=1.0, sync_interval=0.01)
        optimized = pid_loop_model()
        optimized.run(until=1.0, sync_interval=0.01, opt_level=1)
        assert np.array_equal(
            reference.probe("y").states, optimized.probe("y").states,
        )

    def test_o2_scheduler_run_close(self):
        reference = pid_loop_model()
        reference.run(until=1.0, sync_interval=0.01)
        optimized = pid_loop_model()
        optimized.run(until=1.0, sync_interval=0.01, opt_level=2)
        np.testing.assert_allclose(
            reference.probe("y").states,
            optimized.probe("y").states,
            rtol=1e-9,
        )

    def test_fingerprints_distinct_per_level(self):
        prints = set()
        for level in (0, 1, 2):
            model = pid_loop_model()
            scheduler = model.scheduler(
                sync_interval=0.01, opt_level=level,
            )
            scheduler.run(0.01)
            prints.add(scheduler.plan.fingerprint())
        assert len(prints) == 3

    def test_report_carried_on_plan(self):
        model = pid_loop_model()
        scheduler = model.scheduler(sync_interval=0.01, opt_level=1)
        scheduler.run(0.01)
        report = scheduler.plan.opt_report
        assert report is not None
        counts = report.counts()
        assert counts["opt.blocks_removed"] >= 0
        assert set(counts) >= {
            "dce.blocks_removed", "fold.blocks_folded",
            "cse.blocks_merged", "fuse.ops_fused",
            "opt.blocks_removed", "opt.ops_fused",
        }

    def test_thread_views_of_optimized_plan(self):
        model = pid_loop_model()
        scheduler = model.scheduler(sync_interval=0.01, opt_level=1)
        scheduler.run(0.01)
        plan = scheduler.plan
        for thread_index in {n.thread_index for n in plan.nodes}:
            view = plan.thread_plan(thread_index)
            assert view.opt_config is plan.opt_config

    def test_optimizer_direct_api(self):
        d = Diagram("m")
        d.add(Constant("c", value=1.0))
        d.add(Gain("g", k=2.0))
        d.connect("c.out", "g.in")
        make_live_tail(d, "g.out")
        plan = plan_of(d, level=0)
        optimized = PlanOptimizer(OptConfig.from_level(1)).run(plan)
        assert len(optimized.nodes) < len(plan.nodes)
        assert optimized.opt_report.input_nodes == len(plan.nodes)
        assert optimized.opt_report.output_nodes == len(optimized.nodes)


class TestSnapshotResume:
    def test_snapshot_round_trip_on_optimized_plan(self):
        from repro.resilience import SnapshotCodec
        from repro.resilience.codec import (
            decode_snapshot, encode_snapshot,
        )

        reference = pid_loop_model()
        reference.run(until=1.0, sync_interval=0.01, opt_level=1)

        crashed = pid_loop_model()
        scheduler = crashed.scheduler(sync_interval=0.01, opt_level=1)

        class Crash(Exception):
            pass

        def observe(t_now):
            if scheduler.major_steps >= 40:
                raise Crash()

        scheduler.on_major_step = observe
        with pytest.raises(Crash):
            scheduler.run(1.0)

        codec = SnapshotCodec()
        blob = encode_snapshot(codec.capture(scheduler))

        resumed = pid_loop_model()
        fresh = resumed.scheduler(sync_interval=0.01, opt_level=1)
        codec.restore(fresh, decode_snapshot(blob))
        fresh.run(1.0)
        assert np.array_equal(
            reference.probe("y").states, resumed.probe("y").states,
        )

    def test_snapshot_fingerprint_separates_levels(self):
        from repro.resilience import SnapshotCodec

        codec = SnapshotCodec()
        prints = set()
        for level in (0, 1):
            model = pid_loop_model()
            scheduler = model.scheduler(
                sync_interval=0.01, opt_level=level,
            )
            scheduler.run(0.01)
            prints.add(codec.fingerprint(scheduler))
        assert len(prints) == 2
