"""Shared lowering and per-block emitters for code generation.

``lower(diagram)`` compiles a dataflow diagram down to the shared
:class:`~repro.core.plan.ExecutionPlan` IR (the *same* plan the
interpreter executes, so generated code and simulation agree on
evaluation order by construction) and produces a :class:`LoweredModel`:
the plan plus named signals, state layout, and per-node emitted code.

Emitters build *portable expressions* through a :class:`Lang` object, so
one emitter serves the Python, C and vectorised-NumPy backends.  Every
block type of :mod:`repro.dataflow` that can be expressed without dynamic
containers is supported; anything else raises
:class:`UnsupportedBlockError` naming the block, which is the documented
extension point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.network import FlatNetwork
from repro.core.plan import ExecutionPlan
from repro.core.streamer import Streamer
from repro.dataflow.diagram import Diagram


class CodegenError(Exception):
    """Raised on unlowerable models."""


class UnsupportedBlockError(CodegenError):
    """Raised when a block type has no emitter."""


# ----------------------------------------------------------------------
# target-language abstraction
# ----------------------------------------------------------------------
class Lang:
    """Portable expression construction; subclassed per target."""

    name = "abstract"

    def num(self, value: float) -> str:
        return repr(float(value))

    def min(self, a: str, b: str) -> str:
        raise NotImplementedError

    def max(self, a: str, b: str) -> str:
        raise NotImplementedError

    def abs(self, a: str) -> str:
        raise NotImplementedError

    def sin(self, a: str) -> str:
        raise NotImplementedError

    def floor(self, a: str) -> str:
        raise NotImplementedError

    def fmod(self, a: str, b: str) -> str:
        raise NotImplementedError

    def logical_and(self, a: str, b: str) -> str:
        raise NotImplementedError

    def if_expr(self, cond: str, then: str, otherwise: str) -> str:
        raise NotImplementedError


class PyLang(Lang):
    name = "python"

    def min(self, a, b):
        return f"min({a}, {b})"

    def max(self, a, b):
        return f"max({a}, {b})"

    def abs(self, a):
        return f"abs({a})"

    def sin(self, a):
        return f"math.sin({a})"

    def floor(self, a):
        return f"math.floor({a})"

    def fmod(self, a, b):
        return f"math.fmod({a}, {b})"

    def logical_and(self, a, b):
        return f"({a}) and ({b})"

    def if_expr(self, cond, then, otherwise):
        return f"(({then}) if ({cond}) else ({otherwise}))"


class CLang(Lang):
    name = "c"

    def min(self, a, b):
        return f"fmin({a}, {b})"

    def max(self, a, b):
        return f"fmax({a}, {b})"

    def abs(self, a):
        return f"fabs({a})"

    def sin(self, a):
        return f"sin({a})"

    def floor(self, a):
        return f"floor({a})"

    def fmod(self, a, b):
        return f"fmod({a}, {b})"

    def logical_and(self, a, b):
        return f"({a}) && ({b})"

    def if_expr(self, cond, then, otherwise):
        return f"(({cond}) ? ({then}) : ({otherwise}))"


class CBatchLang(CLang):
    """The C dialect of the batch backend's swept-parameter contract.

    Identical to :class:`CLang` (``name`` stays ``"c"`` so sampled
    blocks keep their statement-level sync replicas) except that ``num``
    preserves *symbolic* parameters exactly like :class:`NumpyLang`:
    a :class:`~repro.core.batch.SweepVar` lowers to its ``P[j]`` symbol,
    which the batch kernel resolves against the per-instance parameter
    row instead of a folded literal.
    """

    def num(self, value):
        symbol = getattr(value, "symbol", None)
        if symbol is not None:
            return symbol
        return repr(float(value))


class NumpyLang(Lang):
    """Vectorised expressions over ``(n,)`` instance axes.

    Used by the batch backend (:mod:`repro.core.batch`): every signal is
    an array over instances, so selections become :func:`numpy.where`
    and comparisons element-wise masks.  ``num`` preserves *symbolic*
    parameters (objects carrying a ``symbol`` attribute, e.g. the batch
    backend's swept parameters) instead of folding them to literals.
    """

    name = "numpy"

    def num(self, value):
        symbol = getattr(value, "symbol", None)
        if symbol is not None:
            return symbol
        return repr(float(value))

    def min(self, a, b):
        return f"np.minimum({a}, {b})"

    def max(self, a, b):
        return f"np.maximum({a}, {b})"

    def abs(self, a):
        return f"np.abs({a})"

    def sin(self, a):
        return f"np.sin({a})"

    def floor(self, a):
        return f"np.floor({a})"

    def fmod(self, a, b):
        return f"np.fmod({a}, {b})"

    def logical_and(self, a, b):
        return f"np.logical_and({a}, {b})"

    def if_expr(self, cond, then, otherwise):
        return f"np.where({cond}, {then}, {otherwise})"


# ----------------------------------------------------------------------
# lowered model
# ----------------------------------------------------------------------
@dataclass
class BlockCode:
    """Emitted code fragments for one block."""

    #: assignments computing the block's output signals (topological slot)
    output_lines: List[str] = field(default_factory=list)
    #: one expression per continuous state component (dstate/dt)
    deriv_exprs: List[str] = field(default_factory=list)
    #: held-variable names and initial values (sampled blocks)
    held_vars: List[Tuple[str, float]] = field(default_factory=list)
    #: statements run once per major step, after integration
    sync_lines: List[str] = field(default_factory=list)
    #: statement-level sync replica ``(indent, line)`` rows reproducing
    #: the live block's ``on_sync`` arithmetic exactly (scalar kernel
    #: backends); empty for the vectorised target, which keeps the
    #: branch-free expression form in :attr:`sync_lines`
    sync_stmts: List[Tuple[int, str]] = field(default_factory=list)
    #: held-variable name -> live-block attribute carrying the same
    #: register (lets a kernel refresh its held copies from the
    #: interpreter-owned blocks, e.g. the hybrid scheduler's rhs bridge)
    held_attrs: List[Tuple[str, str]] = field(default_factory=list)


@dataclass
class LoweredModel:
    """Everything a backend needs to emit a complete program."""

    name: str
    #: the compiled IR backends iterate (node order == evaluation order)
    plan: ExecutionPlan
    state_names: List[str]
    initial_state: List[float]
    signal_names: List[str]
    #: per-node emitted code, keyed by :attr:`PlanNode.index`
    code: Dict[int, BlockCode]
    records: List[Tuple[str, str]]  # (label, signal var)

    @property
    def order(self) -> List[Streamer]:
        """The leaves in evaluation order (derived from the plan)."""
        return [node.leaf for node in self.plan.nodes]


def _san(name: str) -> str:
    out = "".join(ch if ch.isalnum() else "_" for ch in name)
    return out if not out[:1].isdigit() else f"b_{out}"


class _Ctx:
    """Naming context handed to emitters (driven by the plan's tables)."""

    def __init__(self, plan: ExecutionPlan, lang: Lang) -> None:
        self.plan = plan
        self.lang = lang
        self._input_of: Dict[Tuple[int, str], str] = {}
        for edge in plan.edges:
            if edge.is_observer:
                continue
            resolved = edge.resolved
            self._input_of[
                (id(resolved.dst_leaf), resolved.dst_port.name)
            ] = self.signal(resolved.src_leaf, resolved.src_port.name)

    @staticmethod
    def signal(leaf: Streamer, port: str) -> str:
        return f"v_{_san(leaf.name)}_{_san(port)}"

    def input(self, leaf: Streamer, port: str) -> str:
        """Signal var feeding an IN port ('0.0' if unconnected)."""
        return self._input_of.get((id(leaf), port), "0.0")

    def state(self, leaf: Streamer, index: int) -> str:
        node = self.plan.node_of(leaf)
        if index >= node.hi - node.lo:
            raise CodegenError(
                f"{leaf.path()}: state index {index} out of range"
            )
        return f"x[{node.lo + index}]"

    def held(self, leaf: Streamer, suffix: str = "held") -> str:
        return f"h_{_san(leaf.name)}_{suffix}"


Emitter = Callable[[Streamer, _Ctx], BlockCode]
_EMITTERS: Dict[str, Emitter] = {}


def register_emitter(class_name: str):
    """Register an emitter for a block class (extension point)."""

    def deco(fn: Emitter) -> Emitter:
        _EMITTERS[class_name] = fn
        return fn

    return deco


# ----------------------------------------------------------------------
# emitters: sources
# ----------------------------------------------------------------------
@register_emitter("Constant")
def _emit_constant(block, ctx):
    out = ctx.signal(block, "out")
    return BlockCode(
        output_lines=[f"{out} = {ctx.lang.num(block.params['value'])}"]
    )


@register_emitter("Step")
def _emit_step(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    expr = lang.if_expr(
        f"t >= {lang.num(p['t_step'])}",
        f"{lang.num(p['offset'])} + {lang.num(p['amplitude'])}",
        lang.num(p["offset"]),
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("Ramp")
def _emit_ramp(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    shifted = f"(t - {lang.num(p['t_start'])})"
    expr = f"{lang.num(p['slope'])} * {lang.max(shifted, '0.0')}"
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("Sine")
def _emit_sine(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    two_pi_f = 2.0 * 3.141592653589793 * p["freq"]
    angle = f"{lang.num(two_pi_f)} * t + {lang.num(p['phase'])}"
    expr = (
        f"{lang.num(p['amplitude'])} * {lang.sin(angle)}"
        f" + {lang.num(p['offset'])}"
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("Pulse")
def _emit_pulse(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    phase = f"{lang.fmod('t', lang.num(p['period']))} / {lang.num(p['period'])}"
    expr = lang.if_expr(
        f"({phase}) < {lang.num(p['duty'])}", lang.num(p["amplitude"]), "0.0"
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("TimeSource")
def _emit_timesource(block, ctx):
    out = ctx.signal(block, "out")
    return BlockCode(
        output_lines=[f"{out} = t * {ctx.lang.num(block.params['scale'])}"]
    )


# ----------------------------------------------------------------------
# emitters: arithmetic
# ----------------------------------------------------------------------
@register_emitter("Gain")
def _emit_gain(block, ctx):
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    return BlockCode(
        output_lines=[f"{out} = {ctx.lang.num(block.params['k'])} * {u}"]
    )


@register_emitter("Bias")
def _emit_bias(block, ctx):
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    return BlockCode(
        output_lines=[f"{out} = {u} + {ctx.lang.num(block.params['bias'])}"]
    )


@register_emitter("Sum")
def _emit_sum(block, ctx):
    out = ctx.signal(block, "out")
    terms = []
    for index, sign in enumerate(block.params["signs"]):
        u = ctx.input(block, f"in{index + 1}")
        terms.append(f"{'+' if sign == '+' else '-'} {u}")
    return BlockCode(output_lines=[f"{out} = {' '.join(terms)}"])


@register_emitter("Product")
def _emit_product(block, ctx):
    out = ctx.signal(block, "out")
    factors = " * ".join(
        ctx.input(block, f"in{i + 1}") for i in range(block.params["n"])
    )
    return BlockCode(output_lines=[f"{out} = {factors}"])


@register_emitter("Abs")
def _emit_abs(block, ctx):
    out = ctx.signal(block, "out")
    return BlockCode(
        output_lines=[f"{out} = {ctx.lang.abs(ctx.input(block, 'in'))}"]
    )


# ----------------------------------------------------------------------
# emitters: nonlinearities
# ----------------------------------------------------------------------
@register_emitter("Saturation")
def _emit_saturation(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    expr = lang.min(
        lang.num(p["upper"]), lang.max(lang.num(p["lower"]), u)
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("DeadZone")
def _emit_deadzone(block, ctx):
    lang = ctx.lang
    w = lang.num(block.params["width"])
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    expr = lang.if_expr(
        f"{u} > {w}", f"{u} - {w}",
        lang.if_expr(f"{u} < -{w}", f"{u} + {w}", "0.0"),
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("Quantizer")
def _emit_quantizer(block, ctx):
    lang = ctx.lang
    step = lang.num(block.params["step"])
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    expr = f"{step} * {lang.floor(f'{u} / {step} + 0.5')}"
    return BlockCode(output_lines=[f"{out} = {expr}"])


# ----------------------------------------------------------------------
# emitters: dynamics
# ----------------------------------------------------------------------
@register_emitter("Integrator")
def _emit_integrator(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    x = ctx.state(block, 0)
    y = x
    deriv = u
    if block.upper is not None:
        y = lang.min(lang.num(block.upper), y)
        deriv = lang.if_expr(
            lang.logical_and(
                f"{x} >= {lang.num(block.upper)}", f"{u} > 0.0"
            ),
            "0.0", deriv,
        )
    if block.lower is not None:
        y = lang.max(lang.num(block.lower), y)
        deriv = lang.if_expr(
            lang.logical_and(
                f"{x} <= {lang.num(block.lower)}", f"{u} < 0.0"
            ),
            "0.0", deriv,
        )
    return BlockCode(
        output_lines=[f"{out} = {y}"], deriv_exprs=[deriv]
    )


@register_emitter("FirstOrderLag")
def _emit_lag(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    x = ctx.state(block, 0)
    return BlockCode(
        output_lines=[f"{out} = {x}"],
        deriv_exprs=[
            f"({lang.num(p['k'])} * {u} - {x}) / {lang.num(p['tau'])}"
        ],
    )


@register_emitter("SecondOrderSystem")
def _emit_pt2(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    x0, x1 = ctx.state(block, 0), ctx.state(block, 1)
    omega2 = lang.num(p["omega"] ** 2)
    damp = lang.num(2.0 * p["zeta"] * p["omega"])
    return BlockCode(
        output_lines=[f"{out} = {x0}"],
        deriv_exprs=[
            x1,
            f"{omega2} * ({lang.num(p['k'])} * {u} - {x0}) - {damp} * {x1}",
        ],
    )


@register_emitter("PID")
def _emit_pid(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    e = ctx.input(block, "in")
    integral, e_filt = ctx.state(block, 0), ctx.state(block, 1)
    de = f"(({e}) - {e_filt}) / {lang.num(p['tf'])}"
    raw = (
        f"{lang.num(p['kp'])} * ({e}) + {lang.num(p['ki'])} * {integral} "
        f"+ {lang.num(p['kd'])} * ({de})"
    )
    saturated = raw
    if block.u_max is not None:
        saturated = lang.min(lang.num(block.u_max), saturated)
    if block.u_min is not None:
        saturated = lang.max(lang.num(block.u_min), saturated)
    d_integral = e
    if block.u_max is not None or block.u_min is not None:
        d_integral = lang.if_expr(
            lang.logical_and(
                f"({raw}) != ({saturated})", f"({raw}) * ({e}) > 0.0"
            ),
            "0.0", e,
        )
    return BlockCode(
        output_lines=[f"{out} = {saturated}"],
        deriv_exprs=[d_integral, de],
    )


@register_emitter("TransferFunction")
def _emit_tf(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    n = block.n
    states = [ctx.state(block, i) for i in range(n)]
    y_terms = [f"{lang.num(block.d)} * {u}"] if block.d else []
    for i, coeff in enumerate(block.c[::-1]):
        if coeff:
            y_terms.append(f"{lang.num(coeff)} * {states[i]}")
    y_expr = " + ".join(y_terms) if y_terms else "0.0"
    derivs = [states[i + 1] for i in range(n - 1)] if n > 1 else []
    last_terms = [u]
    for i, coeff in enumerate(block.a[::-1]):
        if coeff:
            last_terms.append(f"- {lang.num(coeff)} * {states[i]}")
    if n >= 1:
        derivs.append(" ".join(last_terms))
    return BlockCode(output_lines=[f"{out} = {y_expr}"], deriv_exprs=derivs)


@register_emitter("StateSpace")
def _emit_ss(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    n = block.a.shape[0]
    states = [ctx.state(block, i) for i in range(n)]
    y_terms = [
        f"{lang.num(block.c[i])} * {states[i]}"
        for i in range(n) if block.c[i]
    ]
    if block.d:
        y_terms.append(f"{lang.num(block.d)} * {u}")
    derivs = []
    for i in range(n):
        terms = [
            f"{lang.num(block.a[i, j])} * {states[j]}"
            for j in range(n) if block.a[i, j]
        ]
        if block.b[i]:
            terms.append(f"{lang.num(block.b[i])} * {u}")
        derivs.append(" + ".join(terms) if terms else "0.0")
    return BlockCode(
        output_lines=[
            f"{out} = {' + '.join(y_terms) if y_terms else '0.0'}"
        ],
        deriv_exprs=derivs,
    )


# ----------------------------------------------------------------------
# emitters: sampled blocks (held state + sync updates)
# ----------------------------------------------------------------------
def _next_sample_expr(lang: Lang, ts: str) -> str:
    # round t to the nearest grid index before advancing, so a time a few
    # ulps below a grid point does not cause a double sample
    ratio = f"t / {ts} + 0.5"
    return f"({lang.floor(ratio)} + 1.0) * {ts}"


def _sampled_sync_stmts(
    lang: Lang, nxt: str, ts: str, eps: str, body: List[str]
) -> List[Tuple[int, str]]:
    """Statement replica of :meth:`SampledBlock.on_sync` for one block.

    ``body`` holds the sample assignments; the clock walk
    (``while nxt <= t + eps: nxt += ts``) is appended.  Only the scalar
    python/c targets get a replica — the vectorised target keeps the
    branch-free :attr:`BlockCode.sync_lines` form.
    """
    if lang.name == "python":
        stmts: List[Tuple[int, str]] = [(0, f"if t + {eps} >= {nxt}:")]
        stmts.extend((1, line) for line in body)
        stmts.append((1, f"while {nxt} <= t + {eps}:"))
        stmts.append((2, f"{nxt} = {nxt} + {ts}"))
        return stmts
    if lang.name == "c":
        stmts = [(0, f"if (t + {eps} >= {nxt}) {{")]
        stmts.extend((1, f"{line};") for line in body)
        stmts.append((1, f"while ({nxt} <= t + {eps}) {{"))
        stmts.append((2, f"{nxt} = {nxt} + {ts};"))
        stmts.append((1, "}"))
        stmts.append((0, "}"))
        return stmts
    return []


@register_emitter("ZeroOrderHold")
def _emit_zoh(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    held = ctx.held(block)
    nxt = ctx.held(block, "next")
    ts = lang.num(block.params["ts"])
    cond = f"t + 1e-12 >= {nxt}"
    advance = _next_sample_expr(lang, ts)
    eps = lang.num(1e-9 * float(block.params["ts"]))
    return BlockCode(
        output_lines=[f"{out} = {held}"],
        held_vars=[(held, 0.0), (nxt, 0.0)],
        sync_lines=[
            f"{held} = {lang.if_expr(cond, u, held)}",
            f"{nxt} = {lang.if_expr(cond, advance, nxt)}",
        ],
        sync_stmts=_sampled_sync_stmts(
            lang, nxt, ts, eps, [f"{held} = {u}"]
        ),
        held_attrs=[(held, "_held"), (nxt, "_next_sample")],
    )


@register_emitter("UnitDelay")
def _emit_unit_delay(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    held = ctx.held(block)
    store = ctx.held(block, "store")
    nxt = ctx.held(block, "next")
    ts = lang.num(block.params["ts"])
    cond = f"t + 1e-12 >= {nxt}"
    advance = _next_sample_expr(lang, ts)
    eps = lang.num(1e-9 * float(block.params["ts"]))
    return BlockCode(
        output_lines=[f"{out} = {held}"],
        held_vars=[(held, 0.0), (store, block._store), (nxt, 0.0)],
        sync_lines=[
            f"{held} = {lang.if_expr(cond, store, held)}",
            f"{store} = {lang.if_expr(cond, u, store)}",
            f"{nxt} = {lang.if_expr(cond, advance, nxt)}",
        ],
        sync_stmts=_sampled_sync_stmts(
            lang, nxt, ts, eps,
            [f"{held} = {store}", f"{store} = {u}"],
        ),
        held_attrs=[
            (held, "_held"), (store, "_store"), (nxt, "_next_sample"),
        ],
    )


# ----------------------------------------------------------------------
# emitters: optimizer-synthesised leaves (repro.core.opt)
# ----------------------------------------------------------------------
@register_emitter("FoldedBlock")
def _emit_folded(block, ctx):
    # the folded boundary keeps the original block's name, so its frozen
    # outputs land in exactly the signal vars consumers already reference
    return BlockCode(output_lines=[
        f"{ctx.signal(block, name)} = {ctx.lang.num(value)}"
        for name, value in block.scalar_values()
    ])


@register_emitter("FusedChain")
def _emit_fused(block, ctx):
    lang = ctx.lang
    # the incoming edge still names the original head leaf, so the input
    # lookup must key on it rather than on the fused node
    expr = ctx.input(block.head_leaf, block.in_pad.name)
    if block.affine is not None:  # O2: composed a*v + b
        a, b = block.affine
        expr = f"{lang.num(a)} * ({expr}) + {lang.num(b)}"
    else:  # O1: replay each member's op in order
        for spec in block.specs:
            kind = spec[0]
            if kind == "gain":
                expr = f"{lang.num(spec[1])} * ({expr})"
            elif kind == "bias":
                expr = f"({expr}) + {lang.num(spec[1])}"
            else:  # sum over the driven slot plus frozen slots
                terms = []
                for sign, frozen in spec[1]:
                    term = (
                        f"({expr})" if frozen is None else lang.num(frozen)
                    )
                    terms.append(f"{'+' if sign == '+' else '-'} {term}")
                expr = f"({' '.join(terms)})"
    out = ctx.signal(block, block.out_pad.name)
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("Scope")
def _emit_scope(block, ctx):
    return BlockCode()  # recording handled by the backend


@register_emitter("Terminator")
def _emit_terminator(block, ctx):
    return BlockCode()


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def lower(
    diagram: Diagram,
    lang: Lang,
    records: Optional[List[str]] = None,
    opt_level: int = 0,
    opt_config=None,
) -> LoweredModel:
    """Compile ``diagram`` to its ExecutionPlan and emit code for ``lang``.

    ``records`` is a list of ``"block.port"`` paths to record each step;
    defaults to every Scope input and every dangling leaf OUT port.

    ``opt_level`` / ``opt_config`` run the :mod:`repro.core.opt` pass
    pipeline over the plan before emission; explicitly recorded ports are
    protected so their signals survive rewriting.
    """
    diagram.finalise()
    network = FlatNetwork([diagram])
    return lower_network(
        network, lang, records=records,
        opt_level=opt_level, opt_config=opt_config,
        name=diagram.name, port_at=diagram.port_at,
    )


def lower_network(
    network: FlatNetwork,
    lang: Lang,
    records: Optional[List[str]] = None,
    opt_level: int = 0,
    opt_config=None,
    name: str = "network",
    port_at: Optional[Callable[[str], Any]] = None,
) -> LoweredModel:
    """Lower an already-flattened network (the execution-backend path).

    ``port_at`` resolves ``"block.port"`` record paths (a diagram's
    ``port_at`` method); without it only the default Scope records are
    available.
    """
    from repro.core.opt import resolve_config

    config = resolve_config(opt_level, opt_config)
    protect = []
    if config.is_active and records:
        if port_at is None:
            raise CodegenError(
                "explicit records on an optimized plan need a port_at "
                "resolver to protect the recorded pads"
            )
        protect = [port_at(path) for path in records]
    plan = network.plan(opt_config=config, protect=protect)
    return lower_plan(
        plan, lang,
        initial_state=[float(v) for v in network.initial_state()],
        records=records, name=name, port_at=port_at,
    )


def lower_plan(
    plan: ExecutionPlan,
    lang: Lang,
    initial_state: List[float],
    records: Optional[List[str]] = None,
    name: str = "plan",
    port_at: Optional[Callable[[str], Any]] = None,
) -> LoweredModel:
    """Emit code for an already-compiled (possibly optimized or
    thread-partitioned) plan.  The caller owns plan compilation and pad
    protection; this is the entry point the execution backends and the
    hybrid scheduler's kernel bridge use."""
    ctx = _Ctx(plan, lang)
    code: Dict[int, BlockCode] = {}
    for node in plan.nodes:
        emitter = _EMITTERS.get(type(node.leaf).__name__)
        if emitter is None:
            raise UnsupportedBlockError(
                f"no code emitter for block type "
                f"{type(node.leaf).__name__!r} ({node.leaf.path()}); "
                f"supported: {sorted(_EMITTERS)}"
            )
        code[node.index] = emitter(node.leaf, ctx)

    state_names: List[str] = []
    for node in plan.nodes:
        for i in range(node.hi - node.lo):
            state_names.append(f"{_san(node.leaf.name)}_{i}")

    signal_names = sorted({
        ctx.signal(node.leaf, port.name)
        for node in plan.nodes
        for port in node.leaf.dports.values()
        if port.is_out
    })

    record_pairs: List[Tuple[str, str]] = []
    if records:
        if port_at is None:
            raise CodegenError(
                "explicit record paths need a port_at resolver"
            )
        for path in records:
            port = port_at(path)
            if port.is_out:
                record_pairs.append((path, ctx.signal(port.owner, port.name)))
            else:
                record_pairs.append((path, ctx.input(port.owner, port.name)))
    else:
        for node in plan.nodes:
            if type(node.leaf).__name__ == "Scope":
                for port in node.leaf.dports.values():
                    record_pairs.append((
                        f"{node.leaf.name}.{port.name}",
                        ctx.input(node.leaf, port.name),
                    ))

    return LoweredModel(
        name=name,
        plan=plan,
        state_names=state_names,
        initial_state=list(initial_state),
        signal_names=signal_names,
        code=code,
        records=record_pairs,
    )
