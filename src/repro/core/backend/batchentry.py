"""The ``batch`` backend: the vectorised NumPy program as a registry entry.

Adapts :class:`~repro.core.batch.BatchSimulator` (n instances, one
``(n, n_state)`` state matrix) to the uniform :class:`BackendProgram`
surface.  The cursor semantics reuse the simulator's own
``resume_point``/``run_chunked(resume=...)`` machinery, so consecutive
:meth:`run` calls continue bitwise exactly as one long chunked run —
the contract the resilience layer already tests.

The batch backend keeps the *expression-form* sampled-block sync (one
``np.where`` per register), so it makes no bitwise claim for sampled
blocks against the interpreter; continuous-only diagrams are bitwise
(the established batch-vs-sequential contract).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.core.backend.base import (
    BackendError, BackendProgram, BackendUnavailable, CompileRequest,
    ExecutionBackend, ProgramResult, register_backend,
)
from repro.core.batch import BatchError, BatchSimulator, merge_chunks


class BatchProgramAdapter(BackendProgram):
    backend = "batch"

    def __init__(self, simulator: BatchSimulator) -> None:
        self._sim = simulator
        self.h = simulator.h
        self._held0 = copy.deepcopy(simulator.held_state())
        self._t = 0.0
        self._x = simulator.x0.copy()
        self._step = 0
        self._cold = True

    # ------------------------------------------------------------------
    @property
    def plan(self):
        return self._sim.plan

    @property
    def simulator(self) -> BatchSimulator:
        return self._sim

    @property
    def t(self) -> float:
        return self._t

    @property
    def x(self) -> np.ndarray:
        return self._x

    def record_labels(self):
        return [label for label, __ in self._sim.model.records]

    def fingerprint(self) -> str:
        return self._sim.program.fingerprint(extra={
            "backend": self.backend,
            "n": self._sim.n,
            "solver": self._sim.binding.strategy_name,
        })

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._t = 0.0
        self._x = self._sim.x0.copy()
        self._step = 0
        self._cold = True
        self._sim.restore_held_state(copy.deepcopy(self._held0))

    def _resume_arg(self) -> Optional[Dict[str, Any]]:
        if self._cold:
            return None
        return self._sim.resume_point(
            self._t, self._x, self._step, self._step
        )

    def run(
        self,
        t_end: float,
        h: Optional[float] = None,
        record_every: int = 1,
    ) -> ProgramResult:
        chunks = list(self._sim.run_chunked(
            float(t_end), h=h, record_every=record_every,
            resume=self._resume_arg(),
        ))
        result = merge_chunks(chunks, self._sim.n)
        final = chunks[-1]
        self._t = float(final.t_now)
        self._x = np.asarray(final.final_states, dtype=float).copy()
        self._step = int(final.steps)
        self._cold = False
        stats = dict(result.stats)
        stats["backend"] = self.backend
        return ProgramResult(
            t=result.t,
            series=result.series,
            final_state=self._x.copy(),
            stats=stats,
        )

    def step(self, h: Optional[float] = None) -> float:
        hh = self.h if h is None else float(h)
        for chunk in self._sim.run_chunked(
            self._t + hh, h=hh, resume=self._resume_arg()
        ):
            final = chunk
        self._t = float(final.t_now)
        self._x = np.asarray(final.final_states, dtype=float).copy()
        self._step = int(final.steps)
        self._cold = False
        return self._t

    def rhs(self, t: float, x: np.ndarray) -> np.ndarray:
        return np.asarray(
            self._sim._rhs(float(t), np.asarray(x, dtype=float)),
            dtype=float,
        )

    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "t": self._t,
            "step": self._step,
            "cold": self._cold,
            "x": self._x.tolist(),
            "held": {
                name: np.asarray(values, dtype=float).tolist()
                for name, values in self._sim.held_state().items()
            },
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self._t = float(state["t"])
        self._step = int(state["step"])
        self._cold = bool(state.get("cold", False))
        self._x = np.asarray(state["x"], dtype=float)
        held = state.get("held")
        if held:
            self._sim.restore_held_state({
                name: np.asarray(values, dtype=float)
                for name, values in held.items()
            })


class BatchBackend(ExecutionBackend):
    name = "batch"

    def compile(self, request: CompileRequest) -> BatchProgramAdapter:
        if request.diagram is None:
            raise BackendError(
                "the batch backend compiles from a diagram (sweep paths "
                "and record labels resolve against it)"
            )
        try:
            simulator = BatchSimulator(
                diagram=request.diagram,
                n=request.n,
                solver=request.solver,
                h=request.h,
                records=request.records,
                sweeps=request.sweeps,
                x0=request.x0,
                opt_level=request.opt_level,
                opt_config=request.opt_config,
            )
        except BatchError as exc:
            raise BackendUnavailable(str(exc)) from exc
        return BatchProgramAdapter(simulator)


register_backend(BatchBackend())
