"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.channel import Channel, ChannelPolicy
from repro.core.flowtype import DataKind, FlowField, FlowType
from repro.core.timeservice import ContinuousTime, TimeError
from repro.metamodel.elements import Multiplicity
from repro.solvers import RK4, Euler, Heun, integrate
from repro.solvers.events import EventSpec, ZeroCrossingDetector
from repro.solvers.history import Trajectory
from repro.umlrt.signal import Message, Priority

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
field_names = st.lists(
    st.sampled_from("abcdefghij"), min_size=1, max_size=6, unique=True
)
kinds = st.sampled_from(list(DataKind))


@st.composite
def flow_types(draw):
    names = draw(field_names)
    return FlowType("ft", [
        FlowField(name, draw(kinds)) for name in names
    ])


@st.composite
def subtype_pairs(draw):
    """(small, big) where small's fields are a subset of big's."""
    big = draw(flow_types())
    fields = list(big.fields)
    count = draw(st.integers(min_value=1, max_value=len(fields)))
    small = FlowType("small", fields[:count])
    return small, big


# ----------------------------------------------------------------------
# flow types: the W1 relation is a preorder
# ----------------------------------------------------------------------
class TestFlowTypeProperties:
    @given(flow_types())
    def test_subset_reflexive(self, ft):
        assert ft.subset_of(ft)

    @given(subtype_pairs())
    def test_constructed_subsets_validate(self, pair):
        small, big = pair
        assert small.subset_of(big)

    @given(subtype_pairs())
    def test_projection_of_conforming_value(self, pair):
        small, big = pair
        value = big.default_value()
        projected = small.project(value)
        small.validate_value(projected)

    @given(flow_types())
    def test_default_value_conforms(self, ft):
        ft.validate_value(ft.default_value())

    @given(subtype_pairs(), subtype_pairs())
    def test_antisymmetry_on_equal_fields(self, pair_a, pair_b):
        a, __ = pair_a
        b, __ = pair_b
        if a.subset_of(b) and b.subset_of(a):
            assert a == b


# ----------------------------------------------------------------------
# channels: conservation and bounds
# ----------------------------------------------------------------------
class TestChannelProperties:
    @given(
        st.lists(st.integers(), max_size=60),
        st.integers(min_value=1, max_value=8),
        st.sampled_from([ChannelPolicy.OVERWRITE, ChannelPolicy.LATEST]),
    )
    def test_depth_never_exceeds_capacity(self, items, capacity, policy):
        channel = Channel("c", capacity=capacity, policy=policy)
        for item in items:
            channel.push(item)
            assert len(channel) <= channel.capacity

    @given(st.lists(st.integers(), max_size=60),
           st.integers(min_value=1, max_value=8))
    def test_overwrite_keeps_newest_suffix(self, items, capacity):
        channel = Channel("c", capacity=capacity,
                          policy=ChannelPolicy.OVERWRITE)
        for item in items:
            channel.push(item)
        assert channel.drain() == items[-capacity:]

    @given(st.lists(st.integers(), max_size=60))
    def test_conservation(self, items):
        channel = Channel("c", capacity=1000)
        for item in items:
            channel.push(item)
        drained = channel.drain()
        assert channel.pushed == len(items)
        assert channel.popped == len(drained)
        assert channel.dropped == len(items) - len(drained)


# ----------------------------------------------------------------------
# messages: total order
# ----------------------------------------------------------------------
class TestMessageProperties:
    @given(st.lists(
        st.tuples(st.sampled_from(list(Priority)),
                  st.floats(min_value=0, max_value=100)),
        min_size=2, max_size=30,
    ))
    def test_sort_respects_priority_then_time(self, specs):
        messages = [Message("m", priority=p, timestamp=t)
                    for p, t in specs]
        ordered = sorted(messages, key=lambda m: m.sort_key())
        for first, second in zip(ordered, ordered[1:]):
            assert first.priority >= second.priority
            if first.priority == second.priority:
                assert first.timestamp <= second.timestamp


# ----------------------------------------------------------------------
# Time stereotype: monotonicity (W11)
# ----------------------------------------------------------------------
class TestTimeProperties:
    @given(st.lists(st.floats(min_value=0, max_value=10,
                              allow_nan=False), max_size=30))
    def test_cumulative_advance_is_monotone(self, deltas):
        time = ContinuousTime()
        time.audit_enabled = True
        for delta in deltas:
            time.advance_by(delta)
        assert time.is_monotone()
        assert time.now == pytest.approx(sum(deltas), rel=1e-9, abs=1e-9)

    @given(st.floats(min_value=0.001, max_value=100),
           st.floats(min_value=0.001, max_value=100))
    def test_any_backwards_move_rejected(self, start, decrement):
        time = ContinuousTime()
        time.advance_to(start)
        with pytest.raises(TimeError):
            time.advance_to(start - decrement)


# ----------------------------------------------------------------------
# multiplicity parse/print round trip
# ----------------------------------------------------------------------
class TestMultiplicityProperties:
    @given(st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=50))
    def test_round_trip(self, lower, extra):
        m = Multiplicity(lower, lower + extra)
        assert Multiplicity.parse(str(m)) == m

    @given(st.integers(min_value=0, max_value=50))
    def test_unbounded_round_trip(self, lower):
        m = Multiplicity(lower, None)
        assert Multiplicity.parse(str(m)) == m


# ----------------------------------------------------------------------
# solvers: linear exactness and contraction invariants
# ----------------------------------------------------------------------
class TestSolverProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=-5, max_value=5),
           st.floats(min_value=-3, max_value=3))
    def test_constant_rhs_exact_for_all_solvers(self, rate, y0):
        for solver in (Euler(), Heun(), RK4()):
            result = integrate(
                lambda t, y: np.array([rate]), [y0], 0.0, 1.0, solver,
                h=0.125,
            )
            assert result.y_final[0] == pytest.approx(
                y0 + rate, rel=1e-9, abs=1e-9
            )

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.1, max_value=3.0),
           st.floats(min_value=0.1, max_value=2.0))
    def test_decay_is_contractive(self, lam, y0):
        """|y| never grows along stable decay with a stable step."""
        h = min(0.1, 1.0 / lam)  # h*lam <= 1: RK4 region
        result = integrate(
            lambda t, y: -lam * y, [y0], 0.0, 2.0, RK4(), h=h
        )
        values = result.trajectory.states[:, 0]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_zero_crossing_localisation(self, crossing_point):
        """A linear guard crossing anywhere in (0,1) is localised there."""
        spec = EventSpec("x", lambda t, y: t - crossing_point)
        detector = ZeroCrossingDetector([spec], t_tol=1e-10)
        detector.reset(0.0, np.zeros(1))
        events = detector.check_step(0.0, np.zeros(1), 1.0, np.zeros(1))
        assert len(events) == 1
        assert events[0].t == pytest.approx(crossing_point, abs=1e-8)


# ----------------------------------------------------------------------
# trajectories: interpolation stays within the convex hull
# ----------------------------------------------------------------------
class TestTrajectoryProperties:
    @given(st.lists(
        st.floats(min_value=-100, max_value=100), min_size=2, max_size=30,
    ), st.floats(min_value=0.0, max_value=1.0))
    def test_sample_within_bounds(self, values, alpha):
        trajectory = Trajectory()
        for index, value in enumerate(values):
            trajectory.append(float(index), [value])
        t = alpha * (len(values) - 1)
        sampled = trajectory.sample(t)[0]
        assert min(values) - 1e-9 <= sampled <= max(values) + 1e-9

    @given(st.lists(
        st.floats(min_value=-100, max_value=100), min_size=2, max_size=30,
    ))
    def test_sample_hits_knots_exactly(self, values):
        trajectory = Trajectory()
        for index, value in enumerate(values):
            trajectory.append(float(index), [value])
        for index, value in enumerate(values):
            assert trajectory.sample(float(index))[0] == pytest.approx(
                value, rel=1e-12, abs=1e-12
            )
