"""Live job migration: SIGKILL a worker mid-run, resume elsewhere,
finish bitwise-identically to an uninterrupted run."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster.pool import ClusterConfig, WorkerPool
from repro.cluster.requests import ClusterJobRequest
from repro.service import telemetry


def cruise_request(**params):
    merged = {
        "t_end": 3.0, "sync_interval": 0.01, "checkpoint_every_steps": 40,
    }
    merged.update(params)
    return ClusterJobRequest(
        kind="single_run", model="cruise", params=merged,
    )


def assert_bitwise(a, b):
    assert set(a.probes) == set(b.probes)
    for name in a.probes:
        assert np.array_equal(a.probes[name].times, b.probes[name].times)
        assert np.array_equal(a.probes[name].states, b.probes[name].states)
    assert a.t_final == b.t_final


def wait_for_checkpoint(pool, handle, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if handle.worker is not None and pool.store.checkpoints(handle.id):
            return
        time.sleep(0.01)
    raise AssertionError("job never spooled a checkpoint")


class TestMigration:
    def test_sigkill_migrates_bitwise(self, tmp_path):
        with WorkerPool(
            tmp_path / "ref", ClusterConfig(workers=1),
        ) as pool:
            reference = pool.submit(cruise_request()).result(timeout=120)

        with WorkerPool(
            tmp_path / "live", ClusterConfig(workers=2),
        ) as pool:
            handle = pool.submit(cruise_request())
            wait_for_checkpoint(pool, handle)
            victim = handle.worker
            pool.kill_worker(victim)
            result = handle.result(timeout=120)

            assert handle.migrations == 1
            assert handle.worker != victim  # resumed on the other worker
            assert handle.attempts == 2
            events = handle.channel.drain()
            kinds = [event.kind for event in events]
            assert telemetry.MIGRATED in kinds
            resumed = [e for e in events if e.kind == telemetry.RESUMED]
            assert resumed, "migrated attempt cold-started"
            assert resumed[0].payload["attempt"] == 2
            counters = pool.metrics.snapshot()["counters"]
            assert counters["cluster.migrations"] == 1
            assert counters["cluster.worker_deaths"] == 1
            assert counters["jobs.resumed"] == 1
            # the dead worker's spool was harvested into the CAS index
            meta = pool.store.read_meta(handle.id)
            assert meta.get("fingerprint")
            assert handle.id in pool.store.jobs_for(meta["fingerprint"])

        assert_bitwise(reference, result)

    def test_migration_budget_exhausts(self, tmp_path):
        with WorkerPool(
            tmp_path,
            ClusterConfig(workers=1, max_migrations=0),
        ) as pool:
            handle = pool.submit(cruise_request(t_end=30.0))
            wait_for_checkpoint(pool, handle)
            pool.kill_worker(handle.worker)
            assert handle.wait(timeout=60)
            assert handle.state.value == "failed"
            assert "migration budget" in handle.error

    def test_respawn_keeps_capacity(self, tmp_path):
        with WorkerPool(tmp_path, ClusterConfig(workers=2)) as pool:
            handle = pool.submit(cruise_request())
            wait_for_checkpoint(pool, handle)
            pool.kill_worker(handle.worker)
            handle.result(timeout=120)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status = pool.status()
                if all(w["alive"] for w in status["workers"]):
                    break
                time.sleep(0.05)
            assert all(w["alive"] for w in pool.status()["workers"])
            # the respawned worker still takes jobs
            again = pool.submit(ClusterJobRequest(
                kind="single_run", model="lag", params={"t_end": 0.2},
                checkpoint=False,
            ))
            again.result(timeout=60)
