"""Checkpoint manager: periodic, atomic, bounded snapshot spooling.

A :class:`CheckpointManager` owns one *spool directory* and the policy of
when to write into it.  Attached to a scheduler it rides the existing
``on_major_step`` observer hook — checkpointing is purely passive, so an
observed run stays numerically identical to an unobserved one — and
writes a snapshot whenever the configured interval (major steps,
simulated time or wall time) has elapsed.

Durability contract:

* every write goes to a ``*.tmp`` sibling first and is published with an
  atomic ``os.replace`` — a crash mid-write can never leave a truncated
  file under a valid checkpoint name;
* retention is bounded (``keep`` newest checkpoints; older ones are
  pruned after each successful write);
* :meth:`load_latest` walks the spool newest-first and CRC-verifies each
  candidate, silently skipping corrupt or foreign files — a torn disk or
  an injected corruption costs one checkpoint interval, never the run.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.resilience.codec import (
    Snapshot, SnapshotCodec, SnapshotError, decode_snapshot,
    encode_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hybrid import HybridScheduler
    from repro.service.telemetry import MetricsRegistry

#: checkpoint file suffix inside a spool directory
SUFFIX = ".ckpt"


class CheckpointError(SnapshotError):
    """Raised on checkpoint-manager misconfiguration."""


class CheckpointManager:
    """Spool-directory checkpointing with bounded retention.

    Parameters
    ----------
    spool_dir:
        Directory holding the checkpoints (created if missing).
    every_steps:
        Write every N major steps (None: disabled).
    every_sim_time:
        Write every ``dt`` of simulated time (None: disabled).
    every_wall_time:
        Write every ``dt`` wall-clock seconds (None: disabled).
    keep:
        Newest checkpoints retained; older ones are pruned.
    codec:
        Snapshot codec (a default one if omitted).
    metrics:
        Optional :class:`~repro.service.telemetry.MetricsRegistry`;
        save counts, sizes and durations are recorded under
        ``checkpoint.*`` names.
    """

    def __init__(
        self,
        spool_dir,
        every_steps: Optional[int] = 100,
        every_sim_time: Optional[float] = None,
        every_wall_time: Optional[float] = None,
        keep: int = 3,
        codec: Optional[SnapshotCodec] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1: {keep}")
        if every_steps is not None and every_steps < 1:
            raise CheckpointError(f"every_steps must be >= 1: {every_steps}")
        if every_sim_time is not None and every_sim_time <= 0:
            raise CheckpointError(
                f"every_sim_time must be positive: {every_sim_time}"
            )
        if every_wall_time is not None and every_wall_time <= 0:
            raise CheckpointError(
                f"every_wall_time must be positive: {every_wall_time}"
            )
        if every_steps is None and every_sim_time is None \
                and every_wall_time is None:
            raise CheckpointError(
                "at least one checkpoint interval must be set"
            )
        self.spool = Path(spool_dir)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.every_steps = every_steps
        self.every_sim_time = every_sim_time
        self.every_wall_time = every_wall_time
        self.keep = keep
        self.codec = codec if codec is not None else SnapshotCodec()
        self.metrics = metrics
        self.saves = 0
        self.bytes_written = 0
        self.corrupt_skipped = 0
        self.last_path: Optional[Path] = None
        self._last_step: Optional[int] = None
        self._last_sim_t: Optional[float] = None
        self._last_wall = time.monotonic()

    # ------------------------------------------------------------------
    # periodic capture
    # ------------------------------------------------------------------
    def attach(self, scheduler: "HybridScheduler") -> None:
        """Chain onto the scheduler's ``on_major_step`` observer."""
        inner = scheduler.on_major_step

        def observe(t_now: float) -> None:
            if inner is not None:
                inner(t_now)
            self.maybe_save(scheduler)

        scheduler.on_major_step = observe

    def due(self, scheduler: "HybridScheduler") -> bool:
        """True if any configured interval has elapsed since last save."""
        if self.every_steps is not None:
            last = self._last_step
            if last is None:
                if scheduler.major_steps >= self.every_steps:
                    return True
            elif scheduler.major_steps - last >= self.every_steps:
                return True
        if self.every_sim_time is not None:
            t = scheduler.model.time.raw
            last_t = self._last_sim_t
            if last_t is None:
                last_t = 0.0
            if t - last_t >= self.every_sim_time - 1e-12:
                return True
        if self.every_wall_time is not None:
            if time.monotonic() - self._last_wall >= self.every_wall_time:
                return True
        return False

    def maybe_save(self, scheduler: "HybridScheduler") -> Optional[Path]:
        """Save a checkpoint if one is due; returns the path if written."""
        if not self.due(scheduler):
            return None
        return self.save(scheduler)

    def save(self, scheduler: "HybridScheduler") -> Path:
        """Capture and atomically write a checkpoint now."""
        started = time.perf_counter()
        snapshot = self.codec.capture(scheduler)
        path = self.write(snapshot)
        self._last_step = scheduler.major_steps
        self._last_sim_t = scheduler.model.time.raw
        self._last_wall = time.monotonic()
        if self.metrics is not None:
            self.metrics.counter("checkpoint.saves").inc()
            self.metrics.histogram("checkpoint.save_seconds").observe(
                time.perf_counter() - started
            )
        return path

    def note_restore(self, scheduler: "HybridScheduler") -> None:
        """Restart the interval clocks after a restore, so the first
        post-resume checkpoint lands one full interval later instead of
        immediately re-saving the state that was just loaded."""
        self._last_step = scheduler.major_steps
        self._last_sim_t = scheduler.model.time.raw
        self._last_wall = time.monotonic()

    def write(self, snapshot: Snapshot) -> Path:
        """Atomically publish an already-captured snapshot."""
        data = encode_snapshot(snapshot)
        path = self.spool / f"ckpt-{snapshot.step:012d}{SUFFIX}"
        tmp = path.with_suffix(SUFFIX + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        self.saves += 1
        self.bytes_written += len(data)
        self.last_path = path
        if self.metrics is not None:
            self.metrics.histogram("checkpoint.bytes").observe(len(data))
        self.prune()
        return path

    # ------------------------------------------------------------------
    # spool inspection and recovery
    # ------------------------------------------------------------------
    def checkpoints(self) -> List[Path]:
        """Checkpoint files oldest-first (tmp files excluded)."""
        return sorted(self.spool.glob(f"ckpt-*{SUFFIX}"))

    def prune(self) -> int:
        """Delete all but the ``keep`` newest checkpoints."""
        files = self.checkpoints()
        removed = 0
        for path in files[:-self.keep] if len(files) > self.keep else []:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def load(self, path) -> Snapshot:
        """Decode one checkpoint file (raises on corruption)."""
        return decode_snapshot(Path(path).read_bytes())

    def load_latest(self) -> Optional[Tuple[Path, Snapshot]]:
        """The newest checkpoint that passes integrity checks, or None.

        Corrupt candidates are skipped (counted in
        :attr:`corrupt_skipped`), so a torn or injected-corrupt newest
        file falls back to the previous interval instead of failing the
        resume.
        """
        for path in reversed(self.checkpoints()):
            try:
                snapshot = self.load(path)
            except SnapshotError:
                self.corrupt_skipped += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "checkpoint.corrupt_skipped"
                    ).inc()
                continue
            return path, snapshot
        return None
