"""Experiment F2 — Figure 2: abstract syntax of streamers, executable.

Builds the paper's Figure-2 structure (top streamer, three sub-streamers,
boundary DPorts, an SPort, internal flows and a relay), validates it
against the W-rules, renders the structure in the paper's notation, and
measures one hybrid major step over it.
"""

import pytest

from repro.core.model import HybridModel
from repro.core.network import FlatNetwork
from repro.metamodel import figure2_streamer, render_streamer_structure


def test_figure2_structure_and_flattening(benchmark, report, bench_json):
    def build():
        top = figure2_streamer()
        network = FlatNetwork([top])
        return top, network

    top, network = benchmark(build)
    stats = network.stats()
    assert stats["leaves"] == 3
    assert stats["edges"] == 2   # sub1->sub2, relay->sub3
    assert len(network.observer_edges) == 1  # relay -> boundary dout
    assert stats["states"] == 1  # sub3 integrates

    report("F2: Figure 2 (abstract syntax of streamers)", [
        render_streamer_structure(top),
        "",
        f"flattened: {stats}",
        "W-rules: relay generates exactly two similar flows (W2): ok",
    ])
    bench_json("f2", {
        "leaves": stats["leaves"],
        "edges": stats["edges"],
        "states": stats["states"],
    })


def test_figure2_simulation_step(benchmark):
    """One 10 ms major step of the Figure-2 model under the scheduler."""
    model = HybridModel("fig2")
    top = figure2_streamer()
    model.add_streamer(top)
    model.add_probe("out", top.dport("dout"))
    scheduler = model.scheduler(sync_interval=0.01)
    scheduler.initialise()
    state = {"t": 0.0}

    def one_major_step():
        state["t"] += 0.01
        scheduler.run(state["t"])

    benchmark(one_major_step)
    assert scheduler.major_steps > 0


def test_figure2_sport_parameter_path(benchmark, report):
    """The Figure-2 SPort semantics: 'a solver ... receiving signal from
    SPorts ... modifying parameters'.  Full round trip per major step."""
    from repro.metamodel.structure import FIGURE2_PROTOCOL
    from repro.umlrt.capsule import Capsule
    from repro.umlrt.statemachine import StateMachine

    class GainDriver(Capsule):
        def __init__(self, name="driver"):
            self.acks = 0
            super().__init__(name)

        def build_structure(self):
            self.create_port("cmd", FIGURE2_PROTOCOL.conjugate())

        def build_behaviour(self):
            sm = StateMachine("d")
            sm.add_state("s")
            sm.initial("s")
            sm.add_transition(
                "s", trigger=("cmd", "status"), internal=True,
                action=lambda c, m: setattr(c, "acks", c.acks + 1),
            )
            return sm

    model = HybridModel("fig2rt")
    top = figure2_streamer()
    model.add_streamer(top)
    driver = model.add_capsule(GainDriver())
    model.connect_sport(driver.port("cmd"), top.sport("sctrl"))
    scheduler = model.scheduler(sync_interval=0.01)
    scheduler.initialise()
    state = {"t": 0.0, "k": 1.0}

    def set_gain_round_trip():
        state["k"] = 3.0 if state["k"] == 1.0 else 1.0
        driver.send("cmd", "setGain", state["k"])
        state["t"] += 0.01
        scheduler.run(state["t"])

    benchmark(set_gain_round_trip)
    assert top.sub("sub2").params["k"] == state["k"]
    assert driver.acks > 0
    report("F2: SPort parameter round trip", [
        f"acks received by capsule: {driver.acks}",
        f"final sub2 gain: {top.sub('sub2').params['k']}",
    ])
