"""Cubic Hermite dense output and its effect on event localisation."""

import math

import numpy as np
import pytest

from repro.solvers.events import EventSpec, ZeroCrossingDetector
from repro.solvers.interpolate import CubicHermite


class TestCubicHermite:
    def test_matches_endpoints(self):
        interp = CubicHermite(
            0.0, np.array([1.0]), np.array([0.0]),
            1.0, np.array([2.0]), np.array([3.0]),
        )
        assert interp(0.0)[0] == pytest.approx(1.0)
        assert interp(1.0)[0] == pytest.approx(2.0)

    def test_matches_endpoint_derivatives(self):
        interp = CubicHermite(
            0.0, np.array([1.0]), np.array([0.5]),
            2.0, np.array([2.0]), np.array([-1.0]),
        )
        assert interp.derivative(0.0)[0] == pytest.approx(0.5)
        assert interp.derivative(2.0)[0] == pytest.approx(-1.0)

    def test_exact_on_cubics(self):
        """Hermite is exact for polynomials up to degree 3."""
        def p(t):
            return t ** 3 - 2.0 * t ** 2 + t + 1.0

        def dp(t):
            return 3.0 * t ** 2 - 4.0 * t + 1.0

        interp = CubicHermite(
            0.0, np.array([p(0.0)]), np.array([dp(0.0)]),
            2.0, np.array([p(2.0)]), np.array([dp(2.0)]),
        )
        for t in (0.3, 0.9, 1.4, 1.9):
            assert interp(t)[0] == pytest.approx(p(t), abs=1e-12)

    def test_clamps_outside_segment(self):
        interp = CubicHermite(
            0.0, np.array([1.0]), np.array([0.0]),
            1.0, np.array([2.0]), np.array([0.0]),
        )
        assert interp(-5.0)[0] == interp(0.0)[0]
        assert interp(9.0)[0] == interp(1.0)[0]

    def test_degenerate_interval_rejected(self):
        with pytest.raises(ValueError):
            CubicHermite(1.0, np.zeros(1), np.zeros(1),
                         1.0, np.zeros(1), np.zeros(1))


class TestDenseEventLocalisation:
    def test_hermite_beats_secant_on_curved_trajectory(self):
        """For y = sin(t) over a wide step, the sin crossing at pi is
        localised far better with dense output."""
        # asymmetric around pi: a symmetric interval would make the
        # secant accidentally exact on the odd function sin
        t0, t1 = math.pi - 0.8, math.pi + 0.5
        y0 = np.array([math.sin(t0)])
        y1 = np.array([math.sin(t1)])
        f0 = np.array([math.cos(t0)])
        f1 = np.array([math.cos(t1)])
        spec = EventSpec("zero", lambda t, y: float(y[0]))

        detector = ZeroCrossingDetector([spec])
        detector.reset(t0, y0)
        secant = detector.check_step(t0, y0, t1, y1)[0].t

        detector = ZeroCrossingDetector([spec])
        detector.reset(t0, y0)
        dense = detector.check_step(
            t0, y0, t1, y1,
            make_interpolator=lambda: CubicHermite(t0, y0, f0, t1, y1, f1),
        )[0].t

        secant_error = abs(secant - math.pi)
        dense_error = abs(dense - math.pi)
        # cubic vs linear over a 1.3-wide step: ~27x better here
        assert dense_error < secant_error / 20.0
        assert dense_error < 1e-3

    def test_hybrid_scheduler_dense_flag(self):
        """End-to-end: falling-ball impact with coarse sync intervals is
        localised markedly better with dense events on."""
        from repro.core.flowtype import SCALAR
        from repro.core.model import HybridModel
        from repro.core.streamer import Streamer

        class Ball(Streamer):
            state_size = 2
            zero_crossing_names = ("ground",)

            def __init__(self, name):
                super().__init__(name)
                self.add_out("h", SCALAR)
                self.impact = None

            def initial_state(self):
                return np.array([10.0, 0.0])

            def derivatives(self, t, state):
                return np.array([state[1], -9.81])

            def compute_outputs(self, t, state):
                self.out_scalar("h", state[0])

            def zero_crossings(self, t, state):
                return (state[0],)

            def on_zero_crossing(self, name, t, direction):
                if self.impact is None:
                    self.impact = t

        exact = math.sqrt(2.0 * 10.0 / 9.81)
        errors = {}
        for dense in (False, True):
            model = HybridModel(f"ball{dense}")
            ball = model.add_streamer(Ball("ball"))
            model.run(until=2.0, sync_interval=0.25, dense_events=dense)
            errors[dense] = abs(ball.impact - exact)
        assert errors[True] < errors[False] / 10.0
        assert errors[True] < 1e-5
