"""Failure injection: the system must fail loudly and diagnosably."""

import numpy as np
import pytest

from tests.conftest import ConstLeaf, Echo, GainLeaf, IntegratorLeaf, PING

from repro.core.channel import ChannelError, ChannelPolicy
from repro.core.flowtype import SCALAR
from repro.core.model import HybridModel
from repro.core.streamer import Streamer
from repro.solvers.base import SolverError
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.statemachine import StateMachine

FLOOD = Protocol.define("Flood", outgoing=("burst",), incoming=())


class TestNumericalFailures:
    def test_stiff_plant_on_explicit_solver_raises(self):
        class Stiff(Streamer):
            state_size = 1

            def __init__(self, name):
                super().__init__(name)
                self.add_out("y", SCALAR)

            def initial_state(self):
                return np.array([1.0])

            def derivatives(self, t, state):
                return np.array([-1e6 * state[0]])

            def compute_outputs(self, t, state):
                self.out_scalar("y", state[0])

        model = HybridModel("stiff")
        model.default_thread.h = 0.01  # way outside Euler stability
        model.default_thread.binding.rebind("euler")
        model.add_streamer(Stiff("plant"))
        with np.errstate(over="ignore"), pytest.raises(
            SolverError, match="non-finite"
        ):
            model.run(until=1.0, sync_interval=0.1)

    def test_nan_producing_streamer_detected(self):
        class Broken(Streamer):
            state_size = 1

            def __init__(self, name):
                super().__init__(name)
                self.add_out("y", SCALAR)

            def derivatives(self, t, state):
                return np.array([float("nan")])

            def compute_outputs(self, t, state):
                self.out_scalar("y", state[0])

        model = HybridModel("nan")
        model.add_streamer(Broken("bad"))
        with pytest.raises(SolverError, match="non-finite"):
            model.run(until=0.1, sync_interval=0.05)

    def test_wrong_derivative_shape_names_the_leaf(self):
        class WrongShape(IntegratorLeaf):
            def derivatives(self, t, state):
                return np.zeros(3)

        model = HybridModel("shape")
        model.add_streamer(WrongShape("culprit"))
        from repro.core.network import NetworkError

        with pytest.raises(NetworkError, match="culprit"):
            model.run(until=0.1, sync_interval=0.05)


class TestChannelOverflow:
    class Flooder(Capsule):
        """Sends a burst of messages to its streamer every timeout."""

        def build_structure(self):
            self.create_port("out", FLOOD.base())

        def build_behaviour(self):
            def flood(capsule, message):
                for __ in range(10):
                    capsule.send("out", "burst")

            sm = StateMachine("flooder")
            sm.add_state("s")
            sm.initial("s")
            sm.add_transition("s", trigger=("timer", "timeout"),
                              internal=True, action=flood)
            return sm

        def on_start(self):
            self.inform_every(0.01)

    class Sink(ConstLeaf):
        def __init__(self, name):
            super().__init__(name, 0.0)
            self.add_sport("in_", FLOOD.conjugate())
            self.received = 0

        def handle_signal(self, sport_name, message):
            self.received += 1

    def build(self, policy):
        model = HybridModel("flood")
        flooder = model.add_capsule(self.Flooder("flooder"))
        sink = model.add_streamer(self.Sink("sink"))
        model.connect_sport(
            flooder.port("out"), sink.sport("in_"),
            capacity=4, policy=policy,
        )
        return model, sink

    def test_block_policy_raises_on_overflow(self):
        model, __ = self.build(ChannelPolicy.BLOCK)
        with pytest.raises(ChannelError, match="full"):
            model.run(until=0.5, sync_interval=0.1)

    def test_overwrite_policy_drops_quietly_but_counts(self):
        model, sink = self.build(ChannelPolicy.OVERWRITE)
        model.run(until=0.5, sync_interval=0.1)
        bridge = model.bridges[0]
        assert bridge.to_streamer.dropped > 0
        assert sink.received > 0  # newest messages still arrive

    def test_latest_policy_keeps_only_newest(self):
        model, sink = self.build(ChannelPolicy.LATEST)
        model.run(until=0.5, sync_interval=0.1)
        # one message per sync point at most
        assert sink.received <= 6


class TestStructuralFailures:
    def test_algebraic_loop_reported_before_run(self):
        model = HybridModel("loop")
        a = model.add_streamer(GainLeaf("a"))
        b = model.add_streamer(GainLeaf("b"))
        model.add_flow(a.dport("y"), b.dport("u"))
        model.add_flow(b.dport("y"), a.dport("u"))
        from repro.core.validation import ValidationError

        with pytest.raises(ValidationError) as excinfo:
            model.run(until=1.0)
        assert "W12" in str(excinfo.value)

    def test_destroyed_capsule_messages_counted_not_crashed(self):
        from repro.umlrt.capsule import PartKind
        from repro.umlrt.runtime import RTSystem

        class Host(Capsule):
            def build_structure(self):
                self.create_part("opt", Echo, kind=PartKind.OPTIONAL)

        rts = RTSystem("t")
        host = rts.add_top(Host("host"))
        from tests.conftest import Pinger

        pinger = rts.add_top(Pinger("pinger", pings=0))
        rts.start()
        echo = rts.frame.incarnate(host, "opt")
        pinger.connect(pinger.port("p"), echo.port("p"))
        pinger.send("p", "ping")
        rts.frame.destroy(host, "opt")  # message still queued
        rts.run()
        # the queued ping was dropped as stale, counted, no crash
        assert rts.default_controller.stale_dropped == 1
        assert pinger.pongs == 0

    def test_sending_on_disconnected_port_raises(self):
        from repro.umlrt.port import PortError
        from repro.umlrt.runtime import RTSystem
        from tests.conftest import Pinger

        rts = RTSystem("t")
        pinger = rts.add_top(Pinger("pinger", pings=0))
        rts.start()
        with pytest.raises(PortError, match="not wired"):
            pinger.send("p", "ping")


class TestRealThreadFailurePropagation:
    def test_solver_error_crosses_thread_boundary(self):
        class Exploder(Streamer):
            state_size = 1

            def __init__(self, name):
                super().__init__(name)
                self.add_out("y", SCALAR)

            def derivatives(self, t, state):
                return np.array([float("inf")])

            def compute_outputs(self, t, state):
                self.out_scalar("y", state[0])

        model = HybridModel("explode")
        model.add_streamer(Exploder("boom"))
        with pytest.raises(SolverError):
            model.run(until=0.1, sync_interval=0.05, real_threads=True)
