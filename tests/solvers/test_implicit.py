"""Implicit solvers: stiff stability, Newton behaviour, order."""

import math

import numpy as np
import pytest

from repro.solvers import BackwardEuler, Euler, SolverError, Trapezoidal, integrate


def stiff_decay(t, y):
    return -1000.0 * y


def test_backward_euler_stable_on_stiff_problem():
    """h = 0.1 with lambda = -1000: explicit Euler explodes, BE decays."""
    result = integrate(stiff_decay, [1.0], 0.0, 1.0, BackwardEuler(), h=0.1)
    assert abs(result.y_final[0]) < 1e-3


def test_explicit_euler_unstable_on_same_problem():
    result = integrate(stiff_decay, [1.0], 0.0, 1.0, Euler(), h=0.1)
    # |1 + h*lambda| = 99 per step: the solution explodes instead of
    # decaying (true solution ~ 0 after t = 1)
    assert abs(result.y_final[0]) > 1e10


def test_trapezoidal_stable_on_stiff_problem():
    result = integrate(stiff_decay, [1.0], 0.0, 1.0, Trapezoidal(), h=0.1)
    assert abs(result.y_final[0]) < 1.0  # A-stable: bounded


def test_backward_euler_order_one():
    errors = []
    for h in (0.02, 0.01):
        result = integrate(lambda t, y: -y, [1.0], 0.0, 1.0,
                           BackwardEuler(), h=h)
        errors.append(abs(result.y_final[0] - math.exp(-1.0)))
    ratio = errors[0] / errors[1]
    assert 1.5 < ratio < 2.5


def test_trapezoidal_order_two():
    errors = []
    for h in (0.04, 0.02):
        result = integrate(lambda t, y: -y, [1.0], 0.0, 1.0,
                           Trapezoidal(), h=h)
        errors.append(abs(result.y_final[0] - math.exp(-1.0)))
    ratio = errors[0] / errors[1]
    assert 3.0 < ratio < 5.0


def test_nonlinear_newton_convergence():
    """Riccati-type nonlinearity: y' = -y^2, y(0)=1 -> y(t) = 1/(1+t)."""
    result = integrate(lambda t, y: -y * y, [1.0], 0.0, 2.0,
                       Trapezoidal(), h=0.01)
    assert result.y_final[0] == pytest.approx(1.0 / 3.0, rel=1e-4)
    assert isinstance(result.steps, int)


def test_newton_iteration_count_tracked():
    solver = BackwardEuler()
    integrate(lambda t, y: -y * y, [1.0], 0.0, 0.5, solver, h=0.05)
    assert solver.newton_iterations > 0


def test_vector_stiff_system():
    """Two-timescale linear system integrates stably at coarse h."""
    a = np.array([[-1000.0, 0.0], [1.0, -0.5]])

    def rhs(t, y):
        return a @ y

    result = integrate(rhs, [1.0, 0.0], 0.0, 2.0, BackwardEuler(), h=0.05)
    assert abs(result.y_final[0]) < 1e-6
    assert np.all(np.isfinite(result.y_final))


def test_implicit_flags():
    assert BackwardEuler().implicit and Trapezoidal().implicit
    assert BackwardEuler.order == 1 and Trapezoidal.order == 2
