"""Class-diagram rendering and the live Figure-1 package.

Figure 1 of the paper is the design-pattern heart of the extension: the
**State** pattern on the capsule side (a Capsule holds State objects and
delegates behaviour) and the **Strategy** pattern on the streamer side (a
Streamer holds a Strategy — the solver — with concrete strategies A/B/C
interchangeable), with a ``Capsule 1 -- * Streamer`` containment
association between the two halves.

:func:`figure1_package` builds that diagram *from the live library*: each
classifier is checked against the actual implementation class (does
``Capsule`` really hold states? is ``SolverBinding`` really swappable?),
so the figure cannot drift from the code.  :func:`render_class_diagram`
draws any package as ASCII boxes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.metamodel.elements import (
    Association,
    AssociationEnd,
    Attribute,
    Classifier,
    Multiplicity,
    Operation,
    Package,
)

#: the library classes realising each Figure-1 classifier
FIGURE1_IMPLEMENTATIONS: Dict[str, str] = {
    "Capsule": "repro.umlrt.capsule.Capsule",
    "State": "repro.umlrt.statemachine.State",
    "Streamer": "repro.core.streamer.Streamer",
    "Strategy": "repro.core.solverbinding.SolverBinding",
    "ConcreteStrategyA": "repro.solvers.fixed.Euler",
    "ConcreteStrategyB": "repro.solvers.fixed.RK4",
    "ConcreteStrategyC": "repro.solvers.adaptive.DormandPrince45",
}


def figure1_package() -> Package:
    """Build the Figure-1 class diagram as a metamodel package."""
    pkg = Package("Figure1")

    state = Classifier("State", stereotypes=("state",))
    state.add_operation(Operation("AlgorithmInterface"))
    pkg.add_class(state)

    strategy = Classifier("Strategy", abstract=True,
                          stereotypes=("strategy",))
    strategy.add_operation(Operation("AlgorithmInterface", abstract=True))
    pkg.add_class(strategy)

    for suffix in ("A", "B", "C"):
        concrete = Classifier(f"ConcreteStrategy{suffix}")
        concrete.add_operation(Operation("AlgorithmInterface"))
        pkg.add_class(concrete)
        # generalizations added after all classes exist

    capsule = Classifier("Capsule", stereotypes=("capsule",))
    capsule.add_attribute(
        Attribute("state", "State", "-", Multiplicity(0, None))
    )
    pkg.add_class(capsule)

    streamer = Classifier("Streamer", stereotypes=("streamer",))
    streamer.add_attribute(
        Attribute("strategy", "Strategy", "-", Multiplicity(0, None))
    )
    pkg.add_class(streamer)

    for suffix in ("A", "B", "C"):
        pkg.add_generalization(f"ConcreteStrategy{suffix}", "Strategy")

    pkg.add_association(Association(
        "capsuleStates",
        AssociationEnd("Capsule", multiplicity=Multiplicity(1, 1)),
        AssociationEnd("State", role="state",
                       multiplicity=Multiplicity(0, None)),
    ))
    pkg.add_association(Association(
        "streamerStrategies",
        AssociationEnd("Streamer", multiplicity=Multiplicity(1, 1)),
        AssociationEnd("Strategy", role="strategy",
                       multiplicity=Multiplicity(0, None)),
    ))
    pkg.add_association(Association(
        "capsuleStreamers",
        AssociationEnd("Capsule", multiplicity=Multiplicity(1, 1),
                       aggregation="composite"),
        AssociationEnd("Streamer", multiplicity=Multiplicity(0, None)),
    ))
    return pkg


def _box(classifier: Classifier) -> List[str]:
    """Render one classifier as a UML box (list of lines)."""
    header = classifier.name
    if classifier.abstract:
        header = f"/{header}/"
    stereo = (
        "«" + ", ".join(classifier.stereotypes) + "»"
        if classifier.stereotypes
        else ""
    )
    attrs = [a.render() for a in classifier.attributes]
    ops = [o.render() for o in classifier.operations]
    body_lines = ([stereo] if stereo else []) + [header]
    width = max(
        (len(line) for line in body_lines + attrs + ops), default=4
    )
    top = "+" + "-" * (width + 2) + "+"
    out = [top]
    for line in body_lines:
        out.append(f"| {line.center(width)} |")
    out.append(top)
    for line in attrs:
        out.append(f"| {line.ljust(width)} |")
    if attrs:
        out.append(top)
    for line in ops:
        out.append(f"| {line.ljust(width)} |")
    out.append(top)
    return out


def render_class_diagram(package: Package) -> str:
    """Render a package as ASCII: boxes, then relations as arrow lines."""
    lines: List[str] = [f"package {package.name}", ""]
    for classifier in package.classifiers.values():
        lines.extend(_box(classifier))
        lines.append("")
    for generalization in package.generalizations:
        lines.append(
            f"  {generalization.child} --|> {generalization.parent}"
        )
    for association in package.associations:
        e1, e2 = association.end1, association.end2
        role = f" ({e2.role})" if e2.role else ""
        diamond = "◆" if e1.aggregation == "composite" else ""
        lines.append(
            f"  {e1.classifier} {diamond}[{e1.multiplicity}] --- "
            f"[{e2.multiplicity}]{role} {e2.classifier}"
        )
    return "\n".join(lines)


def check_figure1_against_library() -> List[str]:
    """Verify that every Figure-1 classifier maps to a real library class
    with the behaviour the figure claims.  Returns a list of problems
    (empty = the figure is faithfully implemented)."""
    import importlib

    problems: List[str] = []
    for classifier, dotted in FIGURE1_IMPLEMENTATIONS.items():
        module_name, __, class_name = dotted.rpartition(".")
        try:
            module = importlib.import_module(module_name)
            cls = getattr(module, class_name)
        except (ImportError, AttributeError) as exc:
            problems.append(f"{classifier}: cannot import {dotted}: {exc}")
            continue
        if classifier == "Capsule" and not hasattr(cls, "build_behaviour"):
            problems.append("Capsule lacks a behaviour hook")
        if classifier == "Strategy" and not hasattr(cls, "rebind"):
            problems.append("Strategy binding lacks rebind (hot swap)")
        if classifier.startswith("ConcreteStrategy") and not hasattr(
            cls, "step"
        ):
            problems.append(f"{classifier} ({dotted}) lacks step()")
    return problems
