"""Cluster job requests: plain, picklable, HTTP-shippable descriptions.

A cluster cannot ship closures: a remote client names a *model* — either
a name registered with :func:`register_model` (the built-ins live in
:mod:`repro.cluster.models`) or an importable ``"package.module:callable"``
path — plus keyword arguments, and the worker rebuilds the factory on
its side of the process boundary.  Everything else on a
:class:`ClusterJobRequest` is the submission surface of the matching
:class:`~repro.service.jobs.JobSpec` (deadline, retries, solver, sweep
axes, opt level, …), whitelisted field-by-field so a malformed request
fails admission with a clear error instead of a worker-side TypeError.

``kind`` selects the work: ``single_run`` and ``batch`` map onto the
service job specs (with their checkpoint spool pointed into the shared
:class:`~repro.cluster.store.ArtifactStore`, which is what makes live
migration possible), and ``scenario`` runs one
:class:`~repro.scenarios.spec.ScenarioSpec` seed through its campaign
oracle — the hook that lets a differential campaign target a cluster.
"""

from __future__ import annotations

import functools
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.service.jobs import BatchJob, JobError, JobSpec, SingleRunJob

#: request kinds the cluster accepts
KINDS = ("single_run", "batch", "scenario")


class ClusterError(JobError):
    """Base class for cluster-level failures."""


class ClusterRejected(ClusterError):
    """Admission control shed this request (queue full, client over
    quota, or the deadline is infeasible given the predicted wait)."""

    def __init__(self, reason: str, message: str) -> None:
        self.reason = reason
        super().__init__(message)


# ----------------------------------------------------------------------
# the model registry
# ----------------------------------------------------------------------
_MODELS: Dict[str, Callable[..., Any]] = {}


def register_model(name: str) -> Callable[[Callable], Callable]:
    """Register a model/diagram factory under a cluster-visible name."""

    def decorator(factory: Callable) -> Callable:
        _MODELS[name] = factory
        return factory

    return decorator


def registered_models() -> Dict[str, Callable[..., Any]]:
    from repro.cluster import models as _builtin  # noqa: F401  (registers)

    return dict(_MODELS)


def resolve_model(ref: str) -> Callable[..., Any]:
    """A factory for ``ref``: a registered name or ``module:callable``."""
    from repro.cluster import models as _builtin  # noqa: F401  (registers)

    factory = _MODELS.get(ref)
    if factory is not None:
        return factory
    if ":" in ref:
        module_name, __, attr = ref.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ClusterError(
                f"cannot import model module {module_name!r}: {exc}"
            ) from exc
        factory = getattr(module, attr, None)
        if callable(factory):
            return factory
        raise ClusterError(
            f"{module_name!r} has no callable {attr!r}"
        )
    raise ClusterError(
        f"unknown model {ref!r}; registered: {sorted(_MODELS)} "
        "(or use an importable 'module:callable' path)"
    )


# ----------------------------------------------------------------------
# the request
# ----------------------------------------------------------------------
#: request params forwarded verbatim onto the matching spec
_SINGLE_RUN_FIELDS = (
    "t_end", "sync_interval", "stream_slices", "validate", "run_options",
    "checkpoint_every_steps", "checkpoint_keep", "opt_level", "backend",
    "realtime_factor",
)
_BATCH_FIELDS = (
    "n", "t_end", "solver", "h", "records", "sweeps", "record_every",
    "chunk_steps", "checkpoint_keep", "opt_level", "backend", "shards",
)
_SCENARIO_FIELDS = ("seed", "t_end", "h", "backends")


@dataclass
class ClusterJobRequest:
    """One unit of cluster work, as it travels over the wire.

    Plain data end to end: JSON over HTTP, pickle over the worker feed
    queues.  ``params`` carries the kind-specific knobs (see the
    ``_*_FIELDS`` whitelists); ``model_args`` is applied to the model
    factory with :func:`functools.partial`, so a parameter sweep over
    one registered model is fifty requests differing only there.
    """

    kind: str = "single_run"
    #: registered model name or ``module:callable`` import path
    #: (unused by ``kind="scenario"``, which is a pure function of seed)
    model: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    model_args: Dict[str, Any] = field(default_factory=dict)
    #: admission-control identity for per-client fairness
    client: str = "anonymous"
    #: wall-clock budget in seconds, from cluster submission
    deadline: Optional[float] = None
    #: worker-local retry budget for TransientJobError (migrations on
    #: worker death are budgeted separately by the pool)
    retries: int = 0
    #: spool periodic checkpoints into the shared store (enables
    #: resume-on-migration; ``single_run``/``batch`` only)
    checkpoint: bool = True
    name: str = ""

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ClusterError(
                f"unknown job kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.kind != "scenario" and not self.model:
            raise ClusterError(f"{self.kind} request needs a model")
        if self.kind == "scenario" and "seed" not in self.params:
            raise ClusterError("scenario request needs params['seed']")
        allowed = {
            "single_run": _SINGLE_RUN_FIELDS,
            "batch": _BATCH_FIELDS,
            "scenario": _SCENARIO_FIELDS,
        }[self.kind]
        unknown = sorted(set(self.params) - set(allowed))
        if unknown:
            raise ClusterError(
                f"unknown {self.kind} params {unknown}; allowed: "
                f"{sorted(allowed)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "model": self.model,
            "params": dict(self.params),
            "model_args": dict(self.model_args),
            "client": self.client,
            "deadline": self.deadline,
            "retries": self.retries,
            "checkpoint": self.checkpoint,
            "name": self.name,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ClusterJobRequest":
        if not isinstance(data, dict):
            raise ClusterError(
                f"request body must be a JSON object, got {type(data).__name__}"
            )
        known = {
            "kind", "model", "params", "model_args", "client", "deadline",
            "retries", "checkpoint", "name",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ClusterError(f"unknown request fields {unknown}")
        request = ClusterJobRequest(
            kind=str(data.get("kind", "single_run")),
            model=str(data.get("model", "")),
            params=dict(data.get("params") or {}),
            model_args=dict(data.get("model_args") or {}),
            client=str(data.get("client", "anonymous")),
            deadline=(
                None if data.get("deadline") is None
                else float(data["deadline"])
            ),
            retries=int(data.get("retries", 0)),
            checkpoint=bool(data.get("checkpoint", True)),
            name=str(data.get("name", "")),
        )
        request.validate()
        return request


# ----------------------------------------------------------------------
# request -> spec (worker side)
# ----------------------------------------------------------------------
@dataclass
class ScenarioClusterJob(JobSpec):
    """Run one scenario seed through its campaign family oracle."""

    seed: int = 0
    t_end: float = 0.25
    h: Optional[float] = None
    backends: Optional[Any] = None

    kind = "scenario"

    def execute(self, ctx) -> Any:
        ctx.checkpoint()
        from repro.scenarios.campaign import CampaignConfig, execute_scenario
        from repro.scenarios.spec import ScenarioSpec

        config_kwargs: Dict[str, Any] = {"t_end": self.t_end}
        if self.h is not None:
            config_kwargs["h"] = self.h
        if self.backends is not None:
            config_kwargs["backends"] = list(self.backends)
        return execute_scenario(
            ScenarioSpec.from_seed(int(self.seed)),
            CampaignConfig(**config_kwargs),
        )


def build_spec(
    request: ClusterJobRequest,
    job_id: str,
    spool_dir: Optional[str] = None,
) -> JobSpec:
    """Materialise the worker-side job spec for one request.

    ``spool_dir`` (the job's directory inside the shared store) arms the
    spec's periodic checkpointing; it is what a migrated re-dispatch
    resumes from on a different worker.
    """
    request.validate()
    params = dict(request.params)
    name = request.name or f"{request.kind}:{request.model or 'scenario'}"
    common = dict(
        name=name, deadline=request.deadline, retries=request.retries,
    )
    if request.kind == "scenario":
        return ScenarioClusterJob(**common, **params)
    factory = resolve_model(request.model)
    if request.model_args:
        factory = functools.partial(factory, **request.model_args)
    checkpoint_dir = (
        str(spool_dir) if (request.checkpoint and spool_dir) else None
    )
    if request.kind == "single_run":
        return SingleRunJob(
            model_factory=factory, checkpoint_dir=checkpoint_dir,
            **common, **params,
        )
    return BatchJob(
        diagram_factory=factory, checkpoint_dir=checkpoint_dir,
        **common, **params,
    )
