"""The simulation service layer: the runtime between library and system.

:mod:`repro.core` gives one process a compiled
:class:`~repro.core.plan.ExecutionPlan` and backends to run it; this
package turns that into a *concurrent, cache-backed job service* — the
substrate the ROADMAP's "heavy traffic" north star builds on:

* :mod:`repro.service.cache` — a thread-safe, LRU-bounded,
  content-addressed :class:`PlanCache` keyed by plan fingerprints:
  structurally identical requests compile once and share the artefact.
* :mod:`repro.service.jobs` — job specs (single hybrid runs, vectorised
  batch sweeps, codegen), handles with blocking results and telemetry
  streams, and the cooperative cancellation/deadline protocol.
* :mod:`repro.service.engine` — the bounded worker pool: per-job
  deadlines, cancellation, retry-with-backoff for transient failures,
  and queue shedding (:class:`ServiceOverloaded`) under overload.
* :mod:`repro.service.telemetry` — per-job event streams over the
  paper's :class:`~repro.core.channel.Channel` plus a
  :class:`MetricsRegistry` of counters/gauges/latency histograms.

:class:`SimulationService` is the facade gluing them together::

    from repro import BatchJob, SimulationService

    with SimulationService(workers=4) as svc:
        handle = svc.submit(BatchJob(
            diagram_factory=make_loop, n=200, t_end=2.0,
            sweeps={"pid.kp": gains},
        ))
        for event in handle.stream():      # partial trajectories
            ...
        result = handle.result()           # merged BatchResult
        print(svc.metrics_snapshot())      # cache hit-rate, p95, ...
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.service.cache import CacheError, PlanCache
from repro.service.engine import JobEngine
from repro.service.jobs import (
    BatchJob,
    CodegenJob,
    JobCancelledError,
    JobContext,
    JobError,
    JobHandle,
    JobSpec,
    JobState,
    JobTimeoutError,
    ServiceOverloaded,
    SingleRunJob,
    SingleRunResult,
    TransientJobError,
)
from repro.service.telemetry import (
    Counter,
    EventEmitter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryEvent,
)


class SimulationService:
    """One-stop facade: a plan cache, a job engine and shared metrics.

    Construction wires the three together (the engine hands itself to
    job contexts as ``service`` so jobs reach the cache); ``close`` —
    or leaving the ``with`` block — shuts the workers down.
    """

    def __init__(
        self,
        workers: int = 4,
        queue_limit: int = 64,
        cache_capacity: int = 128,
        executor: str = "thread",
    ) -> None:
        self.metrics = MetricsRegistry()
        self.cache = PlanCache(
            capacity=cache_capacity, metrics=self.metrics,
        )
        self.engine = JobEngine(
            workers=workers,
            queue_limit=queue_limit,
            metrics=self.metrics,
            service=self,
            executor=executor,
        )

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Enqueue any job spec; sheds with ServiceOverloaded when full."""
        return self.engine.submit(spec)

    def submit_single_run(self, model_factory, t_end, **options) -> JobHandle:
        """Convenience: submit a :class:`SingleRunJob`."""
        return self.submit(SingleRunJob(
            model_factory=model_factory, t_end=t_end, **options,
        ))

    def submit_batch(self, diagram_factory, n, t_end, **options) -> JobHandle:
        """Convenience: submit a :class:`BatchJob`."""
        return self.submit(BatchJob(
            diagram_factory=diagram_factory, n=n, t_end=t_end, **options,
        ))

    def submit_codegen(self, diagram_factory, **options) -> JobHandle:
        """Convenience: submit a :class:`CodegenJob`."""
        return self.submit(CodegenJob(
            diagram_factory=diagram_factory, **options,
        ))

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """Everything observable in one nested dict: the registry's
        counters/gauges/histograms plus cache stats and live queue
        depth."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.stats()
        snapshot["queue"] = {
            "depth": self.engine.queue_depth,
            "limit": self.engine.queue_limit,
            "workers": self.engine.workers,
        }
        return snapshot

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every queued job to finish."""
        return self.engine.drain(timeout)

    def close(self, wait: bool = True) -> None:
        self.engine.shutdown(wait=wait)

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationService({self.engine!r}, cache={self.cache!r})"
        )


__all__ = [
    "BatchJob",
    "CacheError",
    "CodegenJob",
    "Counter",
    "EventEmitter",
    "Gauge",
    "Histogram",
    "JobCancelledError",
    "JobContext",
    "JobEngine",
    "JobError",
    "JobHandle",
    "JobSpec",
    "JobState",
    "JobTimeoutError",
    "MetricsRegistry",
    "PlanCache",
    "ServiceOverloaded",
    "SimulationService",
    "SingleRunJob",
    "SingleRunResult",
    "TelemetryEvent",
    "TransientJobError",
]
