"""State-machine code generation (Rose-RT style skeletons).

Capsule behaviour is defined with Python callables (guards, actions), so
unlike the dataflow generators this one emits *skeletons*: the complete
static structure — states, the flattened transition table, entry/exit
chains, initial drilling — with actions as overridable hooks:

* Python backend: a table-driven ``class <Name>StateMachine`` whose
  ``on_enter_<state>`` / ``on_exit_<state>`` / ``action_<src>__<dst>``
  methods the user overrides;
* C backend: a state enum, a flattened transition table and a
  ``dispatch`` function calling ``extern`` action hooks.

The flattening is computed from the live machine: for every leaf state
and trigger, the fired transition (inner shadows outer), the exact exit
chain up to the LCA, the entry chain down, and the final leaf after
following initial transitions.  Dynamic features that cannot be
statically flattened — guards, choice points, history — raise
:class:`SMGenError` naming the offending element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.codegen.common import CodegenError
from repro.umlrt.statemachine import State, StateMachine


class SMGenError(CodegenError):
    """Raised for machines with features the generator cannot flatten."""


@dataclass(frozen=True)
class FlatTransition:
    """One row of the flattened transition table."""

    source: str                 # leaf state path
    port: Optional[str]         # None = any port
    signal: str
    exits: Tuple[str, ...]      # state paths, innermost first
    action: str                 # canonical action hook name
    entries: Tuple[str, ...]    # state paths, outermost first
    target: str                 # final leaf after initial drilling


def flatten_machine(machine: StateMachine) -> List[FlatTransition]:
    """Compute the static transition table of a hierarchical machine."""
    _reject_dynamic_features(machine)
    leaves = [
        machine.state(path) for path in machine.all_states()
        if not machine.state(path).is_composite
    ]
    rows: List[FlatTransition] = []
    for leaf in leaves:
        taken: set = set()
        node: Optional[State] = leaf
        while node is not None and node.parent is not None:
            for transition in node.transitions:
                for port, signal in transition.triggers:
                    key = (port, signal)
                    shadowed = key in taken or (None, signal) in taken
                    if shadowed:
                        continue
                    taken.add(key)
                    rows.append(_flatten_one(
                        machine, leaf, node, transition, port, signal
                    ))
            node = node.parent
    return rows


def _reject_dynamic_features(machine: StateMachine) -> None:
    if machine.choice_points:
        raise SMGenError(
            f"machine {machine.name!r}: choice points "
            f"{sorted(machine.choice_points)} cannot be statically "
            "flattened"
        )
    for path in machine.all_states():
        state = machine.state(path)
        if state.history is not None:
            raise SMGenError(
                f"machine {machine.name!r}: state {path!r} uses history"
            )
        for transition in state.transitions:
            if transition.guard is not None:
                raise SMGenError(
                    f"machine {machine.name!r}: transition from {path!r} "
                    "has a guard"
                )


def _flatten_one(machine, leaf, source_holder, transition, port, signal):
    if transition.internal:
        return FlatTransition(
            source=leaf.path(), port=port, signal=signal,
            exits=(), entries=(),
            action=_action_name(leaf.path(), leaf.path()),
            target=leaf.path(),
        )
    target = machine.state(transition.target)
    lca = machine._lowest_common_ancestor(leaf, target)
    exits: List[str] = []
    node = leaf
    while node is not None and node is not lca:
        exits.append(node.path())
        node = node.parent
    entries: List[str] = []
    node = target
    while node is not None and node is not lca and node.parent is not None:
        entries.append(node.path())
        node = node.parent
    entries.reverse()
    # drill through initial transitions to the final leaf
    final = target
    while final.is_composite:
        if final.initial_target is None:
            raise SMGenError(
                f"composite {final.path()!r} has no initial transition"
            )
        final = machine.state(final.initial_target)
        entries.append(final.path())
    return FlatTransition(
        source=leaf.path(), port=port, signal=signal,
        exits=tuple(exits),
        action=_action_name(leaf.path(), final.path()),
        entries=tuple(entries),
        target=final.path(),
    )


def _san(text: str) -> str:
    return text.replace(".", "_")


def _action_name(source: str, target: str) -> str:
    return f"action_{_san(source)}__{_san(target)}"


def _initial_chain(machine: StateMachine) -> Tuple[List[str], str]:
    if machine.root.initial_target is None:
        raise SMGenError(f"machine {machine.name!r} has no initial state")
    state = machine.state(machine.root.initial_target)
    chain = [s.path() for s in reversed([state] + state.ancestors())]
    while state.is_composite:
        if state.initial_target is None:
            raise SMGenError(
                f"composite {state.path()!r} has no initial transition"
            )
        state = machine.state(state.initial_target)
        chain.append(state.path())
    return chain, state.path()


# ----------------------------------------------------------------------
# Python backend
# ----------------------------------------------------------------------
def generate_statemachine_python(machine: StateMachine) -> str:
    """Generate a standalone table-driven Python state machine class."""
    rows = flatten_machine(machine)
    initial_entries, initial_leaf = _initial_chain(machine)
    class_name = f"{_san(machine.name).title().replace('_', '')}StateMachine"
    hooks = sorted({row.action for row in rows})
    states = sorted({row.source for row in rows}
                    | {row.target for row in rows} | {initial_leaf})

    out: List[str] = []
    out.append('"""Auto-generated by repro.codegen.smgen -- do not edit.')
    out.append("")
    out.append(f"Source machine: {machine.name}")
    out.append('Override on_enter_*/on_exit_*/action_* hooks as needed."""')
    out.append("")
    out.append("")
    out.append(f"class {class_name}:")
    out.append(f"    STATES = {states!r}")
    out.append(f"    INITIAL = {initial_leaf!r}")
    out.append("")
    out.append("    #: (state, port, signal) -> (exits, action, entries,"
               " target); port None = any")
    out.append("    TRANSITIONS = {")
    for row in rows:
        key = (row.source, row.port, row.signal)
        value = (row.exits, row.action, row.entries, row.target)
        out.append(f"        {key!r}: {value!r},")
    out.append("    }")
    out.append("")
    out.append("    def __init__(self):")
    out.append("        self.state = None")
    out.append("        self.dropped = 0")
    out.append("")
    out.append("    def start(self):")
    for path in initial_entries:
        out.append(f"        self._hook('on_enter_{_san(path)}')")
    out.append(f"        self.state = {initial_leaf!r}")
    out.append("")
    out.append("    def dispatch(self, port, signal, data=None):")
    out.append("        key = (self.state, port, signal)")
    out.append("        row = self.TRANSITIONS.get(key)")
    out.append("        if row is None:")
    out.append("            row = self.TRANSITIONS.get("
               "(self.state, None, signal))")
    out.append("        if row is None:")
    out.append("            self.dropped += 1")
    out.append("            return False")
    out.append("        exits, action, entries, target = row")
    out.append("        for path in exits:")
    out.append("            self._hook('on_exit_' + path.replace('.', '_'))")
    out.append("        self._hook(action, data)")
    out.append("        for path in entries:")
    out.append("            self._hook('on_enter_' + path.replace('.', '_'))")
    out.append("        self.state = target")
    out.append("        return True")
    out.append("")
    out.append("    def _hook(self, name, data=None):")
    out.append("        handler = getattr(self, name, None)")
    out.append("        if handler is not None:")
    out.append("            handler() if data is None else handler(data)")
    out.append("")
    out.append("    # --- override points "
               "--------------------------------------")
    for hook in hooks:
        out.append(f"    def {hook}(self, data=None):")
        out.append("        pass")
        out.append("")
    return "\n".join(out)


# ----------------------------------------------------------------------
# C backend
# ----------------------------------------------------------------------
def generate_statemachine_c(machine: StateMachine) -> str:
    """Generate a C skeleton: enum, transition table, dispatch()."""
    rows = flatten_machine(machine)
    __, initial_leaf = _initial_chain(machine)
    states = sorted({row.source for row in rows}
                    | {row.target for row in rows} | {initial_leaf})
    state_enum = {path: f"STATE_{_san(path).upper()}" for path in states}
    hooks = sorted({row.action for row in rows})
    signals = sorted({row.signal for row in rows})
    signal_enum = {sig: f"SIG_{sig.upper()}" for sig in signals}

    out: List[str] = []
    out.append(f"/* Auto-generated by repro.codegen.smgen -- do not edit.")
    out.append(f" * Source machine: {machine.name}")
    out.append(" * Provide the extern action hooks in user code. */")
    out.append("#include <stddef.h>")
    out.append("")
    out.append("typedef enum {")
    for path in states:
        out.append(f"    {state_enum[path]},")
    out.append("} sm_state_t;")
    out.append("")
    out.append("typedef enum {")
    for sig in signals:
        out.append(f"    {signal_enum[sig]},")
    out.append("} sm_signal_t;")
    out.append("")
    for hook in hooks:
        out.append(f"extern void {hook}(void *ctx);")
    out.append("")
    out.append(f"static sm_state_t sm_state = {state_enum[initial_leaf]};")
    out.append("")
    out.append("int sm_dispatch(sm_signal_t sig, void *ctx)")
    out.append("{")
    out.append("    switch (sm_state) {")
    by_source: Dict[str, List[FlatTransition]] = {}
    for row in rows:
        by_source.setdefault(row.source, []).append(row)
    for source in sorted(by_source):
        out.append(f"    case {state_enum[source]}:")
        out.append("        switch (sig) {")
        emitted = set()
        for row in by_source[source]:
            if row.signal in emitted:
                continue  # port-specific rows collapse in the C skeleton
            emitted.add(row.signal)
            out.append(f"        case {signal_enum[row.signal]}:")
            out.append(f"            {row.action}(ctx);")
            out.append(f"            sm_state = {state_enum[row.target]};")
            out.append("            return 1;")
        out.append("        default:")
        out.append("            return 0;")
        out.append("        }")
    out.append("    default:")
    out.append("        return 0;")
    out.append("    }")
    out.append("}")
    return "\n".join(out) + "\n"
