"""HybridModel: the top-level container and main public entry point.

A hybrid model owns the two worlds and their meeting points:

* a UML-RT runtime (:class:`repro.umlrt.runtime.RTSystem`) with the
  capsules and their controllers (event-driven world);
* top-level streamers partitioned onto streamer threads (continuous
  world) plus model-level flows, relays and capsule relay-DPorts;
* SPort bridges connecting capsule ports to streamer SPorts over bounded
  channels;
* the continuous :class:`~repro.core.timeservice.ContinuousTime` clock;
* probes recording trajectories during simulation.

Typical usage (see also :class:`repro.core.builder.ModelBuilder` and the
``examples/`` directory)::

    model = HybridModel("cruise")
    model.add_capsule(supervisor)
    plant = model.add_streamer(CarDynamics("car"))
    model.connect_sport(supervisor.port("cmd"), plant.sport("ctrl"))
    model.add_probe("speed", plant.dport("v"))
    model.run(until=30.0, sync_interval=0.01)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.channel import ChannelPolicy
from repro.core.dport import Direction, DPort
from repro.core.flow import Flow, Relay
from repro.core.flowtype import FlowType
from repro.core.hybrid import HybridScheduler
from repro.core.sport import SPort, SPortBridge
from repro.core.streamer import Streamer
from repro.core.thread import StreamerThread
from repro.core.timeservice import ContinuousTime
from repro.solvers.history import Trajectory
from repro.umlrt.capsule import Capsule
from repro.umlrt.controller import Controller
from repro.umlrt.port import Port
from repro.umlrt.runtime import RTSystem


class ModelError(Exception):
    """Raised on ill-formed model construction."""


class Probe:
    """A named scalar recorder attached to a DPort or a callable."""

    def __init__(self, name: str, source: Union[DPort, Callable[[], float]]):
        self.name = name
        #: the probed DPort or callable; the static checker reads this
        #: to treat probed pads as live (STR002/STR003)
        self.source = source
        if isinstance(source, DPort):
            self._read = source.read_scalar
        elif callable(source):
            self._read = source
        else:
            raise ModelError(
                f"probe {name!r}: source must be a DPort or callable"
            )
        self.trajectory = Trajectory(labels=[name])

    def record(self, t: float) -> None:
        self.trajectory.append(t, float(self._read()))


class HybridModel:
    """A complete hybrid real-time control system model."""

    def __init__(self, name: str = "model", t0: float = 0.0) -> None:
        self.name = name
        self.rts = RTSystem(f"{name}.rts")
        self.time = ContinuousTime(t0)
        self.streamers: List[Streamer] = []
        self.threads: List[StreamerThread] = []
        self.default_thread = self.create_thread("streamers")
        self.flows: List[Flow] = []
        self.relays: Dict[str, Relay] = {}
        self.bridges: List[SPortBridge] = []
        self.capsule_dports: Dict[Tuple[str, str], DPort] = {}
        self.probes: Dict[str, Probe] = {}
        self._scheduler: Optional[HybridScheduler] = None

    # ------------------------------------------------------------------
    # discrete world
    # ------------------------------------------------------------------
    def create_controller(self, name: str) -> Controller:
        return self.rts.create_controller(name)

    def add_capsule(
        self, capsule: Capsule, controller: Optional[Controller] = None
    ) -> Capsule:
        """Register a top-level capsule (its fixed structure is built now)."""
        return self.rts.add_top(capsule, controller)

    # ------------------------------------------------------------------
    # continuous world
    # ------------------------------------------------------------------
    def create_thread(
        self, name: str, solver: Any = "rk4", h: float = 1e-3, **kwargs: Any
    ) -> StreamerThread:
        if any(thread.name == name for thread in self.threads):
            raise ModelError(f"duplicate streamer thread {name!r}")
        thread = StreamerThread(name, solver, h, **kwargs)
        self.threads.append(thread)
        return thread

    def add_streamer(
        self, streamer: Streamer, thread: Optional[StreamerThread] = None
    ) -> Streamer:
        """Register a top-level streamer on a thread (default thread if
        omitted)."""
        if streamer.parent is not None:
            raise ModelError(
                f"{streamer.path()} is nested; add only top-level streamers"
            )
        if any(existing.name == streamer.name for existing in self.streamers):
            raise ModelError(f"duplicate top streamer {streamer.name!r}")
        self.streamers.append(streamer)
        (thread or self.default_thread).assign(streamer)
        return streamer

    def add_flow(self, source: DPort, target: DPort) -> Flow:
        """A model-level flow (between top streamers, relays or capsule
        relay DPorts)."""
        flow = Flow(source, target)
        self.flows.append(flow)
        return flow

    def add_relay(self, name: str, flow_type: FlowType) -> Relay:
        if name in self.relays:
            raise ModelError(f"duplicate relay {name!r}")
        relay = Relay(name, flow_type)
        self.relays[name] = relay
        return relay

    def add_capsule_dport(
        self,
        capsule: Capsule,
        name: str,
        direction: Direction,
        flow_type: FlowType,
    ) -> DPort:
        """A relay-only DPort on a capsule (paper §2: "in capsules, DPorts
        are only used as relay ports; no data will be processed")."""
        key = (capsule.instance_name, name)
        if key in self.capsule_dports:
            raise ModelError(
                f"duplicate DPort {name!r} on capsule "
                f"{capsule.instance_name}"
            )
        port = DPort(name, direction, flow_type, owner=capsule,
                     relay_only=True)
        self.capsule_dports[key] = port
        return port

    # ------------------------------------------------------------------
    # the capsule <-> streamer boundary
    # ------------------------------------------------------------------
    def connect_sport(
        self,
        capsule_port: Port,
        sport: SPort,
        capacity: int = 64,
        policy: ChannelPolicy = ChannelPolicy.OVERWRITE,
        controller: Optional[Controller] = None,
    ) -> SPortBridge:
        """Bridge a capsule port and a streamer SPort over a channel (W7)."""
        if sport.connected:
            raise ModelError(
                f"SPort {sport.qualified_name} is already connected"
            )
        owner_capsule = capsule_port.owner
        if owner_capsule is None or owner_capsule.runtime is not self.rts:
            raise ModelError(
                f"capsule port {capsule_port.qualified_name} does not "
                "belong to this model; add the capsule first"
            )
        bridge = SPortBridge(
            f"__bridge_{len(self.bridges)}_{sport.qualified_name}",
            sport,
            channel_capacity=capacity,
            channel_policy=policy,
        )
        self.rts.add_top(
            bridge, controller or owner_capsule.controller
        )
        owner_capsule.connect(capsule_port, bridge.port("boundary"))
        self.bridges.append(bridge)
        return bridge

    def all_sports(self) -> Iterator[Tuple[Streamer, SPort]]:
        """All (streamer, SPort) pairs in the model, depth-first."""

        def walk(streamer: Streamer) -> Iterator[Tuple[Streamer, SPort]]:
            if not isinstance(streamer, Streamer):
                return  # tolerate W6-violating trees; validation reports
            for sport in streamer.sports.values():
                yield streamer, sport
            for sub in streamer.subs.values():
                yield from walk(sub)

        for top in self.streamers:
            yield from walk(top)

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def add_probe(
        self, name: str, source: Union[DPort, Callable[[], float]]
    ) -> Probe:
        if name in self.probes:
            raise ModelError(f"duplicate probe {name!r}")
        probe = Probe(name, source)
        self.probes[name] = probe
        return probe

    def record(self, t: float) -> None:
        for probe in self.probes.values():
            probe.record(t)

    def probe(self, name: str) -> Trajectory:
        try:
            return self.probes[name].trajectory
        except KeyError:
            raise ModelError(f"unknown probe {name!r}") from None

    # ------------------------------------------------------------------
    # validation and execution
    # ------------------------------------------------------------------
    def validate(self, strict: bool = True):
        """Run the W-rules; returns violations (raises if strict)."""
        from repro.core.validation import validate_model

        return validate_model(self, strict=strict)

    def scheduler(
        self,
        sync_interval: float = 0.01,
        event_restart: bool = True,
        real_threads: bool = False,
        dense_events: bool = True,
        opt_level: int = 0,
        opt_config=None,
        backend: Optional[str] = None,
    ) -> HybridScheduler:
        """Create (or return the existing) hybrid scheduler.

        ``opt_level`` / ``opt_config`` select the plan-optimizer
        pipeline (:mod:`repro.core.opt`) the scheduler compiles under;
        probed pads are protected automatically.  ``backend`` requests
        an execution backend (:mod:`repro.core.backend`) for the
        continuous phase; ineligible models fall back to the plan
        interpreter (see ``scheduler.backend_info``).
        """
        if self._scheduler is None:
            self._scheduler = HybridScheduler(
                self,
                sync_interval=sync_interval,
                event_restart=event_restart,
                real_threads=real_threads,
                dense_events=dense_events,
                opt_level=opt_level,
                opt_config=opt_config,
                backend=backend,
            )
        return self._scheduler

    def run(
        self,
        until: float,
        sync_interval: float = 0.01,
        event_restart: bool = True,
        real_threads: bool = False,
        dense_events: bool = True,
        validate: bool = True,
        opt_level: int = 0,
        opt_config=None,
        backend: Optional[str] = None,
    ) -> HybridScheduler:
        """Validate, build and simulate to continuous time ``until``."""
        if validate and self._scheduler is None:
            self.validate(strict=True)
        scheduler = self.scheduler(
            sync_interval=sync_interval,
            event_restart=event_restart,
            real_threads=real_threads,
            dense_events=dense_events,
            opt_level=opt_level,
            opt_config=opt_config,
            backend=backend,
        )
        scheduler.run(until)
        return scheduler

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "capsules": self.rts.capsule_count(),
            "controllers": len(self.rts.controllers),
            "streamer_threads": len(self.threads),
            "top_streamers": len(self.streamers),
            "bridges": len(self.bridges),
            "probes": len(self.probes),
        }
        if self._scheduler is not None:
            out.update(self._scheduler.stats())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HybridModel({self.name!r}, capsules="
            f"{self.rts.capsule_count()}, streamers={len(self.streamers)})"
        )
