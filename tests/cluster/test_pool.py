"""WorkerPool scheduling: requests, results, cancel, admission."""

from __future__ import annotations

import time

import pytest

from repro.cluster.pool import ClusterConfig, WorkerPool
from repro.cluster.requests import (
    ClusterError, ClusterJobRequest, ClusterRejected,
)
from repro.service import telemetry
from repro.service.jobs import JobCancelledError, JobError


def lag_request(**overrides):
    base = dict(
        kind="single_run", model="lag",
        params={"t_end": 0.3}, checkpoint=False,
    )
    base.update(overrides)
    return ClusterJobRequest(**base)


class TestRequests:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ClusterError, match="unknown job kind"):
            ClusterJobRequest(kind="nope", model="lag").validate()

    def test_unknown_param_rejected(self):
        with pytest.raises(ClusterError, match="unknown single_run params"):
            lag_request(params={"t_end": 1.0, "bogus": 2}).validate()

    def test_missing_model_rejected(self):
        with pytest.raises(ClusterError, match="needs a model"):
            ClusterJobRequest(kind="batch").validate()

    def test_dict_roundtrip(self):
        request = lag_request(client="c1", deadline=5.0, name="r")
        clone = ClusterJobRequest.from_dict(request.to_dict())
        assert clone == request

    def test_from_dict_unknown_field(self):
        with pytest.raises(ClusterError, match="unknown request fields"):
            ClusterJobRequest.from_dict({"kind": "single_run", "moo": 1})


class TestExecution:
    def test_single_run_roundtrip(self, pool2):
        handle = pool2.submit(lag_request())
        result = handle.result(timeout=60)
        assert result.t_final == pytest.approx(0.3)
        assert "y" in result.probes
        assert handle.state.value == "done"

    def test_realtime_pacing_floors_wall_time(self, pool2):
        """SIL pacing: wall ≥ sim/factor, trajectory bitwise free-run."""
        import numpy as np

        free = pool2.submit(lag_request()).result(timeout=60)
        started = time.monotonic()
        paced = pool2.submit(lag_request(
            params={"t_end": 0.3, "realtime_factor": 1.0},
        )).result(timeout=60)
        elapsed = time.monotonic() - started
        assert elapsed >= 0.25, f"pacing did not slow the run: {elapsed}"
        assert np.array_equal(
            free.probes["y"].states, paced.probes["y"].states,
        )
        assert np.array_equal(
            free.probes["y"].times, paced.probes["y"].times,
        )

    def test_batch_roundtrip(self, pool2):
        handle = pool2.submit(ClusterJobRequest(
            kind="batch", model="pendulum",
            params={"n": 4, "t_end": 0.2, "h": 1e-3},
            checkpoint=False,
        ))
        result = handle.result(timeout=60)
        assert result.n == 4

    def test_scenario_roundtrip(self, pool2):
        handle = pool2.submit(ClusterJobRequest(
            kind="scenario", params={"seed": 12345, "t_end": 0.05},
            checkpoint=False,
        ))
        outcome = handle.result(timeout=120)
        assert outcome.seed == 12345
        assert outcome.ok, outcome.detail

    def test_bad_model_fails_cleanly(self, pool2):
        handle = pool2.submit(lag_request(model="no-such-model"))
        with pytest.raises(JobError, match="unknown model"):
            handle.result(timeout=60)
        assert handle.state.value == "failed"

    def test_jobs_spread_over_workers(self, pool2):
        handles = [pool2.submit(lag_request()) for __ in range(8)]
        for handle in handles:
            handle.result(timeout=60)
        status = pool2.status()
        done_per_worker = [w["jobs_done"] for w in status["workers"]]
        assert all(count > 0 for count in done_per_worker)

    def test_worker_events_forwarded(self, pool2):
        handle = pool2.submit(lag_request(
            params={"t_end": 0.3, "sync_interval": 0.05},
        ))
        handle.result(timeout=60)
        kinds = {event.kind for event in handle.channel.drain()}
        assert telemetry.PROGRESS in kinds
        assert telemetry.BACKEND in kinds

    def test_worker_metrics_merged(self, pool2):
        before = (
            pool2.metrics.snapshot()["counters"]
            .get("backend.used.interpreter", 0)
        )
        pool2.submit(lag_request()).result(timeout=60)
        after = (
            pool2.metrics.snapshot()["counters"]
            .get("backend.used.interpreter", 0)
        )
        assert after == before + 1

    def test_cancel_running_job(self, pool2):
        handle = pool2.submit(ClusterJobRequest(
            kind="single_run", model="cruise",
            params={"t_end": 60.0, "sync_interval": 0.01},
            checkpoint=False,
        ))
        deadline = time.monotonic() + 30
        while handle.worker is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool2.cancel(handle.id)
        with pytest.raises(JobCancelledError):
            handle.result(timeout=60)

    def test_deadline_timeout(self, pool2):
        handle = pool2.submit(ClusterJobRequest(
            kind="single_run", model="cruise",
            params={"t_end": 60.0, "sync_interval": 0.01},
            deadline=0.3, checkpoint=False,
        ))
        assert handle.wait(timeout=60)
        assert handle.state.value == "timeout"


class TestAdmissionControl:
    def test_queue_limit_sheds(self, tmp_path):
        with WorkerPool(
            tmp_path, ClusterConfig(workers=1, queue_limit=2),
        ) as pool:
            submitted = []
            with pytest.raises(ClusterRejected) as excinfo:
                for __ in range(30):
                    submitted.append(pool.submit(ClusterJobRequest(
                        kind="single_run", model="cruise",
                        params={"t_end": 30.0}, checkpoint=False,
                    )))
            assert excinfo.value.reason == "queue_full"
            counters = pool.metrics.snapshot()["counters"]
            assert counters["cluster.rejected.queue_full"] >= 1

    def test_per_client_quota(self, tmp_path):
        with WorkerPool(
            tmp_path,
            ClusterConfig(workers=1, queue_limit=0, per_client_limit=2),
        ) as pool:
            for __ in range(2):
                pool.submit(ClusterJobRequest(
                    kind="single_run", model="cruise",
                    params={"t_end": 30.0}, client="greedy",
                    checkpoint=False,
                ))
            with pytest.raises(ClusterRejected) as excinfo:
                pool.submit(ClusterJobRequest(
                    kind="single_run", model="cruise",
                    params={"t_end": 30.0}, client="greedy",
                    checkpoint=False,
                ))
            assert excinfo.value.reason == "client_quota"
            # a different client still gets in
            other = pool.submit(lag_request(client="modest"))
            other.result(timeout=60)

    def test_deadline_infeasible_rejected(self, tmp_path):
        with WorkerPool(tmp_path, ClusterConfig(workers=1)) as pool:
            # seed the cost model as if jobs took 10s each; a 0.1s
            # deadline behind a queue is then predictably hopeless
            pool.admission.cost_model.observe("single_run", 10.0)
            assert pool._ema_wall == 10.0
            pool.submit(ClusterJobRequest(
                kind="single_run", model="cruise",
                params={"t_end": 30.0}, checkpoint=False,
            ))
            with pytest.raises(ClusterRejected) as excinfo:
                pool.submit(lag_request(deadline=0.1))
            assert excinfo.value.reason == "deadline_infeasible"
