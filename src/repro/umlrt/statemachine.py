"""Hierarchical state machines with run-to-completion semantics.

This module implements the behavioural formalism of UML-RT capsules:
statecharts with composite states, entry/exit actions, guarded transitions
triggered by ``(port, signal)`` pairs, initial transitions, shallow and deep
history, and choice points.

Execution follows UML-RT's **run-to-completion** (RTC) rule: one message is
consumed, at most one compound transition fires, and all its actions run to
completion before the next message is dispatched.  It is exactly this rule
that makes time-continuous behaviour infeasible inside capsule actions and
motivates the paper's streamer extension (see :mod:`repro.core`).

The machine is defined declaratively::

    sm = StateMachine("heater")
    off = sm.add_state("off")
    on = sm.add_state("on")
    sm.initial("off")
    sm.add_transition("off", "on", trigger=("ctrl", "enable"))
    sm.add_transition("on", "off", trigger=("ctrl", "disable"))

Actions and guards are callables ``(capsule, message) -> ...`` so the same
machine class can drive many capsule instances.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.umlrt.signal import Message

Action = Callable[[Any, Optional[Message]], None]
Guard = Callable[[Any, Optional[Message]], bool]
Trigger = Tuple[Optional[str], str]  # (port name or None = any port, signal)


class StateMachineError(Exception):
    """Raised for ill-formed machines or illegal runtime operations."""


class State:
    """A state, possibly composite (with substates) and/or with history.

    Parameters
    ----------
    name:
        State name, unique among siblings.
    parent:
        Enclosing composite state, or ``None`` for the implicit root.
    entry / exit:
        Optional actions run when the state is entered / left.
    history:
        ``None`` (no history), ``"shallow"`` (re-enter last direct substate)
        or ``"deep"`` (re-enter last innermost configuration).
    """

    def __init__(
        self,
        name: str,
        parent: Optional["State"] = None,
        entry: Optional[Action] = None,
        exit: Optional[Action] = None,
        history: Optional[str] = None,
        defer: Sequence[str] = (),
    ) -> None:
        if history not in (None, "shallow", "deep"):
            raise StateMachineError(f"invalid history mode: {history!r}")
        self.name = name
        self.parent = parent
        self.entry = entry
        self.exit = exit
        self.history = history
        #: signal names deferred while this state is active (ROOM
        #: defer/recall): matching messages are parked and re-dispatched
        #: after the next state change
        self.defer = frozenset(defer)
        self.substates: Dict[str, "State"] = {}
        self.initial_target: Optional[str] = None
        self.initial_action: Optional[Action] = None
        self.transitions: List["Transition"] = []
        self._last_active: Optional[str] = None  # direct substate name

    # -- structure ------------------------------------------------------
    def add_substate(self, state: "State") -> "State":
        if state.name in self.substates:
            raise StateMachineError(
                f"duplicate substate {state.name!r} in {self.path()}"
            )
        state.parent = self
        self.substates[state.name] = state
        return state

    @property
    def is_composite(self) -> bool:
        return bool(self.substates)

    def path(self) -> str:
        """Dotted path from the root, e.g. ``"running.heating"``."""
        parts: List[str] = []
        node: Optional[State] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return ".".join(reversed(parts)) or "<root>"

    def ancestors(self) -> List["State"]:
        """Chain from this state up to (and excluding) the root."""
        chain: List[State] = []
        node = self.parent
        while node is not None and node.parent is not None:
            chain.append(node)
            node = node.parent
        return chain

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"State({self.path()})"


class ChoicePoint:
    """A dynamic branch point: guards are evaluated when it is reached."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.branches: List[Tuple[Optional[Guard], str, Optional[Action]]] = []

    def add_branch(
        self,
        target: str,
        guard: Optional[Guard] = None,
        action: Optional[Action] = None,
    ) -> "ChoicePoint":
        """Add a branch; a ``None`` guard is the *else* branch."""
        self.branches.append((guard, target, action))
        return self

    def select(self, capsule: Any, message: Optional[Message]) -> Tuple[str, Optional[Action]]:
        else_branch: Optional[Tuple[str, Optional[Action]]] = None
        for guard, target, action in self.branches:
            if guard is None:
                else_branch = (target, action)
            elif guard(capsule, message):
                return target, action
        if else_branch is None:
            raise StateMachineError(
                f"choice point {self.name!r}: no branch enabled and no else"
            )
        return else_branch


class Transition:
    """A transition between states (or into a choice point).

    ``triggers`` is a sequence of ``(port, signal)`` pairs; a ``None`` port
    matches a signal arriving on any port.  ``internal=True`` transitions
    execute their action without exiting/entering any state.
    """

    def __init__(
        self,
        source: str,
        target: Optional[str],
        triggers: Sequence[Trigger] = (),
        guard: Optional[Guard] = None,
        action: Optional[Action] = None,
        internal: bool = False,
    ) -> None:
        if internal and target is not None and target != source:
            raise StateMachineError(
                "internal transitions may not change state"
            )
        if not internal and target is None:
            raise StateMachineError("external transitions need a target")
        self.source = source
        self.target = target if not internal else source
        self.triggers = list(triggers)
        self.guard = guard
        self.action = action
        self.internal = internal

    def matches(self, message: Message) -> bool:
        port_name = message.port.name if message.port is not None else None
        for trig_port, trig_signal in self.triggers:
            if trig_signal != message.signal:
                continue
            if trig_port is None or trig_port == port_name:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "internal " if self.internal else ""
        return f"Transition({kind}{self.source} -> {self.target})"


class StateMachine:
    """A hierarchical state machine executed under RTC semantics.

    One machine object holds the static structure; the *current
    configuration* (active leaf state, history slots) also lives here, so
    create one machine per capsule instance (capsules do this via their
    ``build_behaviour`` hook).
    """

    def __init__(self, name: str = "sm") -> None:
        self.name = name
        self.root = State("<root>")
        self.choice_points: Dict[str, ChoicePoint] = {}
        self._states: Dict[str, State] = {}
        self.active: Optional[State] = None
        self.started = False
        #: ordered trace of (kind, detail) events, for tests and debugging
        self.trace: List[Tuple[str, str]] = []
        self.trace_enabled = False
        self.rtc_steps = 0
        self.dropped_messages = 0
        self.deferred_messages = 0
        self._deferred: List[Message] = []
        self._recalled: List[Message] = []

    # ------------------------------------------------------------------
    # construction API
    # ------------------------------------------------------------------
    def add_state(
        self,
        path: str,
        entry: Optional[Action] = None,
        exit: Optional[Action] = None,
        history: Optional[str] = None,
        defer: Sequence[str] = (),
    ) -> State:
        """Add a state at dotted ``path``; parents must already exist."""
        if path in self._states:
            raise StateMachineError(f"duplicate state {path!r}")
        if "." in path:
            parent_path, name = path.rsplit(".", 1)
            parent = self.state(parent_path)
        else:
            parent, name = self.root, path
        state = State(name, entry=entry, exit=exit, history=history,
                      defer=defer)
        parent.add_substate(state)
        self._states[path] = state
        return state

    def add_choice(self, name: str) -> ChoicePoint:
        if name in self.choice_points or name in self._states:
            raise StateMachineError(f"duplicate choice point {name!r}")
        point = ChoicePoint(name)
        self.choice_points[name] = point
        return point

    def state(self, path: str) -> State:
        try:
            return self._states[path]
        except KeyError:
            raise StateMachineError(f"unknown state {path!r}") from None

    def initial(
        self,
        target: str,
        composite: Optional[str] = None,
        action: Optional[Action] = None,
    ) -> None:
        """Set the initial transition of the root (or of ``composite``)."""
        holder = self.root if composite is None else self.state(composite)
        self.state(target)  # validate early
        holder.initial_target = target
        holder.initial_action = action

    def add_transition(
        self,
        source: str,
        target: Optional[str] = None,
        trigger: Optional[Union[Trigger, Sequence[Trigger]]] = None,
        guard: Optional[Guard] = None,
        action: Optional[Action] = None,
        internal: bool = False,
    ) -> Transition:
        """Declare a transition from state ``source``.

        ``trigger`` may be one ``(port, signal)`` pair, a plain signal name
        (matching any port), or a sequence of pairs.
        """
        triggers: List[Trigger]
        if trigger is None:
            triggers = []
        elif isinstance(trigger, str):
            triggers = [(None, trigger)]
        elif isinstance(trigger, tuple) and len(trigger) == 2 and all(
            isinstance(item, (str, type(None))) for item in trigger
        ):
            triggers = [trigger]  # type: ignore[list-item]
        else:
            triggers = list(trigger)  # type: ignore[arg-type]
        source_state = self.state(source)
        if target is not None and target not in self._states and (
            target not in self.choice_points
        ):
            raise StateMachineError(f"unknown transition target {target!r}")
        transition = Transition(
            source, target, triggers, guard, action, internal
        )
        source_state.transitions.append(transition)
        return transition

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self, capsule: Any) -> None:
        """Enter the initial configuration (runs entry actions)."""
        if self.started:
            raise StateMachineError("state machine already started")
        if self.root.initial_target is None:
            raise StateMachineError(
                f"machine {self.name!r} has no initial transition"
            )
        self.started = True
        if self.root.initial_action is not None:
            self.root.initial_action(capsule, None)
        self._enter_target(self.root.initial_target, capsule, None)

    def dispatch(self, capsule: Any, message: Message) -> bool:
        """One RTC step: consume ``message``, fire at most one transition.

        Returns True if a transition fired; unhandled messages are counted
        in :attr:`dropped_messages` and dropped, matching UML-RT semantics.
        """
        if not self.started or self.active is None:
            raise StateMachineError("dispatch before start()")
        self.rtc_steps += 1
        state: Optional[State] = self.active
        while state is not None and state.parent is not None:
            for transition in state.transitions:
                if not transition.matches(message):
                    continue
                if transition.guard is not None and not transition.guard(
                    capsule, message
                ):
                    continue
                self._fire(state, transition, capsule, message)
                if not transition.internal and self._deferred:
                    # state changed: recall parked messages (ROOM defer)
                    self._recalled.extend(self._deferred)
                    self._deferred.clear()
                return True
            if message.signal in state.defer:
                # inner transitions beat deferral; outer ones do not
                self._deferred.append(message)
                self.deferred_messages += 1
                self._note("defer", message.signal)
                return False
            state = state.parent
        self.dropped_messages += 1
        self._note("drop", message.signal)
        return False

    def take_recalled(self) -> List[Message]:
        """Messages recalled by the last state change (caller re-enqueues)."""
        recalled, self._recalled = self._recalled, []
        return recalled

    @property
    def active_path(self) -> Optional[str]:
        return self.active.path() if self.active is not None else None

    # ------------------------------------------------------------------
    # checkpointing hooks (resilience layer)
    # ------------------------------------------------------------------
    def snapshot_config(self) -> dict:
        """Extract the runtime configuration (not the static structure).

        Captures the active leaf path, every history slot, the RTC
        counters and the deferred/recalled message queues (messages are
        returned live; the snapshot codec encodes them).  Entry/exit
        actions are *not* replayed on restore — the configuration is
        overlaid directly, which is exactly right for resuming a
        checkpoint: those actions' side effects are restored from the
        same snapshot elsewhere.
        """
        history = {
            path: state._last_active
            for path, state in self._states.items()
            if state._last_active is not None
        }
        if self.root._last_active is not None:
            history["<root>"] = self.root._last_active
        return {
            "active": self.active_path,
            "started": self.started,
            "history": history,
            "rtc_steps": self.rtc_steps,
            "dropped_messages": self.dropped_messages,
            "deferred_messages": self.deferred_messages,
            "deferred": list(self._deferred),
            "recalled": list(self._recalled),
        }

    def restore_config(self, config: dict) -> None:
        """Overlay a configuration captured by :meth:`snapshot_config`.

        The machine must have the same static structure (states by
        path); unknown paths raise :class:`StateMachineError`.
        """
        active = config.get("active")
        self.active = None if active is None else self.state(active)
        self.started = bool(config.get("started", False))
        for path, state in self._states.items():
            state._last_active = None
        self.root._last_active = None
        for path, last in (config.get("history") or {}).items():
            holder = self.root if path == "<root>" else self.state(path)
            holder._last_active = last
        self.rtc_steps = int(config.get("rtc_steps", 0))
        self.dropped_messages = int(config.get("dropped_messages", 0))
        self.deferred_messages = int(config.get("deferred_messages", 0))
        self._deferred = list(config.get("deferred", ()))
        self._recalled = list(config.get("recalled", ()))

    def in_state(self, path: str) -> bool:
        """True if ``path`` is the active leaf or one of its ancestors."""
        if self.active is None:
            return False
        if self.active.path() == path:
            return True
        return any(anc.path() == path for anc in self.active.ancestors())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _note(self, kind: str, detail: str) -> None:
        if self.trace_enabled:
            self.trace.append((kind, detail))

    def _fire(
        self,
        source_state: State,
        transition: Transition,
        capsule: Any,
        message: Optional[Message],
    ) -> None:
        if transition.internal:
            self._note("internal", source_state.path())
            if transition.action is not None:
                transition.action(capsule, message)
            return
        assert transition.target is not None
        target_name, pending_actions = self._resolve_choices(
            transition.target, capsule, message
        )
        target = self.state(target_name)
        lca = self._lowest_common_ancestor(source_state, target)
        self._exit_until(lca, capsule, message)
        self._note("fire", f"{source_state.path()} -> {target.path()}")
        if transition.action is not None:
            transition.action(capsule, message)
        for extra in pending_actions:
            extra(capsule, message)
        self._enter_from(lca, target, capsule, message)

    def _resolve_choices(
        self, target: str, capsule: Any, message: Optional[Message]
    ) -> Tuple[str, List[Action]]:
        """Follow chained choice points to a concrete state target."""
        actions: List[Action] = []
        seen: List[str] = []
        while target in self.choice_points:
            if target in seen:
                raise StateMachineError(
                    f"choice point cycle through {target!r}"
                )
            seen.append(target)
            target, action = self.choice_points[target].select(
                capsule, message
            )
            if action is not None:
                actions.append(action)
        if target not in self._states:
            raise StateMachineError(f"unknown choice target {target!r}")
        return target, actions

    @staticmethod
    def _lowest_common_ancestor(a: State, b: State) -> State:
        """Deepest *proper* common ancestor of ``a`` and ``b``.

        For a self-transition this is the parent (so the state exits and
        re-enters, running its exit/entry actions, per UML-RT semantics).
        """

        def chain(state: State) -> List[State]:
            out = [state]
            node = state.parent
            while node is not None:
                out.append(node)
                node = node.parent
            return out

        a_chain = chain(a)
        b_ids = {id(s) for s in chain(b)}
        for candidate in a_chain:
            if (
                id(candidate) in b_ids
                and candidate is not a
                and candidate is not b
            ):
                return candidate
        return a_chain[-1]  # the root

    def _exit_until(
        self, boundary: State, capsule: Any, message: Optional[Message]
    ) -> None:
        """Exit from the active leaf up to (excluding) ``boundary``."""
        node = self.active
        while node is not None and node is not boundary:
            if node.parent is not None:
                node.parent._last_active = node.name
            if node.exit is not None:
                node.exit(capsule, message)
            self._note("exit", node.path())
            node = node.parent
        self.active = None

    def _enter_from(
        self,
        boundary: State,
        target: State,
        capsule: Any,
        message: Optional[Message],
    ) -> None:
        """Enter from ``boundary`` down into ``target``, then drill to a leaf."""
        chain: List[State] = []
        node: Optional[State] = target
        while node is not None and node is not boundary:
            chain.append(node)
            node = node.parent
        for state in reversed(chain):
            if state.entry is not None:
                state.entry(capsule, message)
            self._note("enter", state.path())
        self._drill_down(target, capsule, message)

    def _enter_target(
        self, target_name: str, capsule: Any, message: Optional[Message]
    ) -> None:
        target, actions = self._resolve_choices(target_name, capsule, message)
        for action in actions:
            action(capsule, message)
        state = self.state(target)
        chain = [state] + state.ancestors()
        for node in reversed(chain):
            if node.entry is not None:
                node.entry(capsule, message)
            self._note("enter", node.path())
        self._drill_down(state, capsule, message)

    def _drill_down(
        self, state: State, capsule: Any, message: Optional[Message]
    ) -> None:
        """From a composite state, follow history/initial to a leaf."""
        node = state
        deep = False
        while node.is_composite:
            next_name: Optional[str] = None
            if (node.history is not None or deep) and node._last_active:
                next_name = node._last_active
                deep = deep or node.history == "deep"
            elif node.initial_target is not None:
                # composite initial targets are paths relative to root
                if node.initial_action is not None:
                    node.initial_action(capsule, message)
                target = self.state(node.initial_target)
                if target.parent is not node:
                    raise StateMachineError(
                        f"initial target {node.initial_target!r} is not a "
                        f"direct substate of {node.path()}"
                    )
                next_name = target.name
            else:
                raise StateMachineError(
                    f"composite state {node.path()} entered without initial "
                    "transition or history"
                )
            child = node.substates[next_name]
            if child.entry is not None:
                child.entry(capsule, message)
            self._note("enter", child.path())
            node = child
        self.active = node

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def all_states(self) -> List[str]:
        return sorted(self._states)

    def transition_count(self) -> int:
        return sum(len(s.transitions) for s in self._states.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StateMachine({self.name!r}, states={len(self._states)}, "
            f"active={self.active_path})"
        )


def add_timeout_transition(
    machine: StateMachine,
    source: str,
    delay: float,
    target: str,
    action: Optional[Action] = None,
) -> Transition:
    """Add a state-scoped timeout: ``source --(after delay)--> target``.

    The classic UML-RT idiom made convenient: entering ``source`` starts
    a one-shot timer (on the capsule's implicit ``timer`` port), leaving
    ``source`` for any reason cancels it, and the timeout message — and
    only *this* state's timeout, distinguished by a marker in the message
    payload — fires the transition.  Composes with user entry/exit
    actions already set on the state.
    """
    state = machine.state(source)
    marker = f"__state_timeout__:{machine.name}:{source}"
    handles_attr = f"_timeout_handles_{id(machine)}"

    previous_entry = state.entry
    previous_exit = state.exit

    def entry(capsule: Any, message: Optional[Message]) -> None:
        if previous_entry is not None:
            previous_entry(capsule, message)
        handles = getattr(capsule, handles_attr, None)
        if handles is None:
            handles = {}
            setattr(capsule, handles_attr, handles)
        handles[source] = capsule.inform_in(delay, data=marker)

    def exit(capsule: Any, message: Optional[Message]) -> None:
        handles = getattr(capsule, handles_attr, {})
        handle = handles.pop(source, None)
        if handle is not None:
            handle.cancel()
        if previous_exit is not None:
            previous_exit(capsule, message)

    def is_this_timeout(capsule: Any, message: Optional[Message]) -> bool:
        return (
            message is not None
            and isinstance(message.data, tuple)
            and message.data[0] == marker
        )

    state.entry = entry
    state.exit = exit
    return machine.add_transition(
        source, target, trigger=("timer", "timeout"),
        guard=is_this_timeout, action=action,
    )
