"""A synchronous stdlib HTTP client for the cluster front-end.

One :class:`http.client.HTTPConnection` per call (the server closes
connections after each response), JSON in/out, and a line iterator over
the chunked NDJSON event stream.  This is what the CLI, the smoke
harness and the S11 benchmark speak; anything else that can POST JSON
works just as well.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional
from urllib.parse import urlsplit

from repro.cluster.requests import ClusterError, ClusterJobRequest, ClusterRejected


class ClusterClientError(ClusterError):
    """An HTTP-level failure talking to the cluster."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ClusterClient:
    """Talk to a :class:`~repro.cluster.http.ClusterHTTPServer`."""

    def __init__(self, base_url: str, timeout: float = 120.0) -> None:
        split = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if split.scheme not in ("", "http"):
            raise ClusterError(f"only http:// is supported: {base_url}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout,
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            try:
                decoded = json.loads(data.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"error": data[:200].decode("latin-1")}
            if response.status >= 400:
                message = decoded.get("error", "unknown error")
                if response.status == 429:
                    raise ClusterRejected(
                        decoded.get("reason", "rejected"), message,
                    )
                raise ClusterClientError(response.status, message)
            return decoded
        finally:
            connection.close()

    # ------------------------------------------------------------------
    def healthz(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (OSError, ClusterError):
            return False

    def wait_ready(self, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthz():
                return
            time.sleep(0.05)
        raise ClusterError(
            f"cluster at {self.host}:{self.port} not ready "
            f"after {timeout:g}s"
        )

    def status(self) -> Dict[str, Any]:
        return self._request("GET", "/status")

    def models(self) -> list:
        return self._request("GET", "/models")["models"]

    def submit(self, request: ClusterJobRequest) -> str:
        """Submit; returns the job id (raises ClusterRejected on shed)."""
        return self._request("POST", "/jobs", body=request.to_dict())["id"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> bool:
        return bool(
            self._request("POST", f"/jobs/{job_id}/cancel")["cancelled"]
        )

    def result(
        self, job_id: str, timeout: float = 60.0
    ) -> Dict[str, Any]:
        """Block server-side for the result summary; raises on FAILED."""
        status = self._request(
            "GET", f"/jobs/{job_id}/result?timeout={timeout:g}",
            timeout=timeout + self.timeout,
        )
        if status.get("state") != "done":
            raise ClusterError(
                f"job {job_id} finished {status.get('state')}: "
                f"{status.get('error')}"
            )
        return status

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield NDJSON telemetry events until the job's stream ends."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout,
        )
        try:
            connection.request("GET", f"/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                raise ClusterClientError(
                    response.status, data[:200].decode("latin-1"),
                )
            buffer = b""
            while True:
                piece = response.read1(65536)
                if not piece:
                    break
                buffer += piece
                while b"\n" in buffer:
                    line, __, buffer = buffer.partition(b"\n")
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()
