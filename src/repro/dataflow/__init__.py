"""A Simulink-like block library built on streamers.

The paper positions its extension as subsuming the Simulink half of the
usual UML+Simulink tool pair.  This package provides that modelling
surface: every block *is* a leaf streamer (:class:`repro.core.streamer.
Streamer`), so diagrams built here drop straight into a
:class:`~repro.core.model.HybridModel`, get validated by the W-rules, and
are integrated by any solver strategy.

Module map:

* :mod:`repro.dataflow.sources` — Constant, Step, Ramp, Sine, Pulse,
  WhiteNoise, TimeSource;
* :mod:`repro.dataflow.math_blocks` — Gain, Bias, Sum, Product, Abs,
  Saturate-free arithmetic;
* :mod:`repro.dataflow.dynamics` — Integrator, FirstOrderLag,
  SecondOrderSystem, TransferFunction, StateSpace, PID;
* :mod:`repro.dataflow.nonlinear` — Saturation, DeadZone,
  RelayHysteresis, Quantizer, LookupTable1D;
* :mod:`repro.dataflow.discrete` — ZeroOrderHold, UnitDelay,
  DiscreteTransferFunction, DiscretePID, MovingAverage;
* :mod:`repro.dataflow.sinks` — Scope, Terminator;
* :mod:`repro.dataflow.diagram` — Diagram, a composite-streamer wrapper
  with name-based wiring.
"""

from repro.dataflow.block import Block, BlockError
from repro.dataflow.sources import (
    Constant,
    Pulse,
    Ramp,
    Sine,
    Step,
    TimeSource,
    WhiteNoise,
)
from repro.dataflow.math_blocks import Abs, Bias, Gain, Product, Sum
from repro.dataflow.dynamics import (
    PID,
    FirstOrderLag,
    Integrator,
    SecondOrderSystem,
    StateSpace,
    TransferFunction,
)
from repro.dataflow.nonlinear import (
    DeadZone,
    LookupTable1D,
    Quantizer,
    RelayHysteresis,
    Saturation,
)
from repro.dataflow.discrete import (
    DiscretePID,
    DiscreteTransferFunction,
    MovingAverage,
    UnitDelay,
    ZeroOrderHold,
)
from repro.dataflow.ode import OdeBlock
from repro.dataflow.routing import (
    FilteredDerivative,
    RateLimiter,
    Switch,
    TransportDelay,
)
from repro.dataflow.sinks import Scope, Terminator
from repro.dataflow.diagram import Diagram

__all__ = [
    "Abs",
    "Bias",
    "Block",
    "BlockError",
    "Constant",
    "DeadZone",
    "Diagram",
    "DiscretePID",
    "DiscreteTransferFunction",
    "FilteredDerivative",
    "FirstOrderLag",
    "Gain",
    "Integrator",
    "LookupTable1D",
    "MovingAverage",
    "OdeBlock",
    "PID",
    "Product",
    "Pulse",
    "Quantizer",
    "Ramp",
    "RateLimiter",
    "RelayHysteresis",
    "Saturation",
    "Scope",
    "SecondOrderSystem",
    "Sine",
    "StateSpace",
    "Step",
    "Sum",
    "Switch",
    "Terminator",
    "TimeSource",
    "TransferFunction",
    "TransportDelay",
    "UnitDelay",
    "WhiteNoise",
    "ZeroOrderHold",
]
