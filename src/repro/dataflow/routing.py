"""Signal routing and rate-shaping blocks.

Additions beyond the paper's minimal set, covering the remaining
primitives real control diagrams need:

* :class:`Switch` — select between two inputs on a threshold control;
* :class:`RateLimiter` — bound the slew rate of a signal (sampled);
* :class:`TransportDelay` — pure time delay via an interpolating history
  buffer (the classic dead-time element);
* :class:`FilteredDerivative` — band-limited differentiator
  ``s / (tf*s + 1)`` as a proper 1-state block.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

import numpy as np

from repro.dataflow.block import Block, BlockError
from repro.dataflow.discrete import SampledBlock


class Switch(Block):
    """``out = in1 if ctrl >= threshold else in2``.

    Ports: ``in1``, ``in2`` (data) and ``ctrl`` (the deciding signal).
    Publishes a zero-crossing guard at the threshold so the discrete
    world can observe switching instants.
    """

    direct_feedthrough = True
    zero_crossing_names = ("switch",)

    def __init__(self, name: str, threshold: float = 0.0) -> None:
        super().__init__(name, inputs=("in1", "in2", "ctrl"),
                         threshold=float(threshold))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        chosen = (
            "in1"
            if self.in_scalar("ctrl") >= self.params["threshold"]
            else "in2"
        )
        self.out_scalar("out", self.in_scalar(chosen))

    def zero_crossings(self, t: float, state: np.ndarray):
        return (self.in_scalar("ctrl") - self.params["threshold"],)


class RateLimiter(SampledBlock):
    """Limit the slew rate to ``rising``/``falling`` units per second.

    Sampled semantics (period ``ts``): each sample moves the output
    toward the input by at most ``rate * ts``.
    """

    def __init__(
        self,
        name: str,
        rising: float = 1.0,
        falling: float = -1.0,
        ts: float = 0.01,
        y0: float = 0.0,
    ) -> None:
        if rising <= 0 or falling >= 0:
            raise BlockError(
                f"rate limiter {name!r}: need rising > 0 and falling < 0"
            )
        super().__init__(name, ts, rising=float(rising),
                         falling=float(falling))
        self._held = float(y0)

    def sample(self, t: float, u: float) -> float:
        ts = self.params["ts"]
        step_up = self.params["rising"] * ts
        step_down = self.params["falling"] * ts
        delta = u - self._held
        if delta > step_up:
            delta = step_up
        elif delta < step_down:
            delta = step_down
        return self._held + delta


class TransportDelay(Block):
    """Pure dead time: ``out(t) = in(t - delay)``.

    Implemented with an interpolating ring buffer filled at sync points,
    so accuracy is bounded by the scheduler's sync interval (the buffer
    is the discretised memory a real dead-time element carries).  Before
    ``delay`` has elapsed, the output is ``initial``.
    """

    direct_feedthrough = False

    def __init__(
        self, name: str, delay: float = 1.0, initial: float = 0.0
    ) -> None:
        if delay <= 0:
            raise BlockError(
                f"transport delay {name!r}: non-positive delay {delay}"
            )
        super().__init__(name, inputs=("in",), delay=float(delay),
                         initial=float(initial))
        self._history: Deque[Tuple[float, float]] = deque()
        self._out_value = float(initial)

    def on_sync(self, t: float) -> None:
        self._history.append((t, self.in_scalar("in")))
        target = t - self.params["delay"]
        self._out_value = self._lookup(target)
        # drop history older than needed (keep one sample before target)
        while len(self._history) > 2 and self._history[1][0] <= target:
            self._history.popleft()

    def _lookup(self, target: float) -> float:
        if not self._history or target < self._history[0][0]:
            return self.params["initial"]
        previous = self._history[0]
        for sample in self._history:
            if sample[0] >= target:
                t0, v0 = previous
                t1, v1 = sample
                if t1 == t0:
                    return v1
                alpha = (target - t0) / (t1 - t0)
                return (1.0 - alpha) * v0 + alpha * v1
            previous = sample
        return self._history[-1][1]

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", self._out_value)


class FilteredDerivative(Block):
    """Band-limited differentiator ``y = s·u / (tf·s + 1)``.

    Realised with one state ``x`` (the filtered input):
    ``tf·x' = u - x``, ``y = (u - x) / tf``.  Direct feedthrough.
    """

    state_size = 1
    direct_feedthrough = True

    def __init__(self, name: str, tf: float = 0.01) -> None:
        if tf <= 0:
            raise BlockError(
                f"derivative {name!r}: non-positive filter tf {tf}"
            )
        super().__init__(name, inputs=("in",), tf=float(tf))

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        u = self.in_scalar("in")
        return np.array([(u - state[0]) / self.params["tf"]])

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        u = self.in_scalar("in")
        self.out_scalar("out", (u - state[0]) / self.params["tf"])
