"""OdeBlock: custom plants from equation strings.

The paper calls control systems "algorithms dense"; most plants are a
handful of ODEs.  ``OdeBlock`` lets users state them directly instead of
subclassing :class:`~repro.core.streamer.Streamer`::

    pendulum = OdeBlock(
        "pendulum",
        states={"theta": 0.1, "omega": 0.0},
        inputs=("torque",),
        equations={
            "theta": "omega",
            "omega": "-(g / L) * sin(theta) - c * omega + torque",
        },
        outputs={"angle": "theta"},
        params={"g": 9.81, "L": 0.5, "c": 0.2},
    )

Expressions are compiled once with a restricted namespace: state names,
input-port names, parameter names, ``t`` and the ``math`` functions —
no builtins, so a model file cannot smuggle arbitrary code through an
equation string.  Parameters are runtime-tunable through the standard
``set_<param>`` signal protocol of :class:`~repro.dataflow.block.Block`.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.dataflow.block import Block, BlockError

#: functions exposed to equation expressions
_MATH_NAMES = {
    name: getattr(math, name)
    for name in (
        "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
        "sinh", "cosh", "tanh", "exp", "log", "log10", "sqrt",
        "floor", "ceil", "fabs", "fmod", "pi", "e",
    )
}
_MATH_NAMES["abs"] = abs
_MATH_NAMES["min"] = min
_MATH_NAMES["max"] = max


class OdeBlock(Block):
    """A leaf streamer defined by textual state equations.

    Parameters
    ----------
    states:
        Ordered mapping of state name -> initial value.
    inputs:
        Names of scalar IN DPorts, readable in expressions.
    equations:
        One expression per state: the derivative ``d<state>/dt``.
    outputs:
        Mapping of OUT DPort name -> expression (over states, inputs,
        params and ``t``).
    params:
        Tunable parameters (become ``self.params`` entries).
    """

    def __init__(
        self,
        name: str,
        states: Mapping[str, float],
        equations: Mapping[str, str],
        outputs: Mapping[str, str],
        inputs: Sequence[str] = (),
        params: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not states:
            raise BlockError(f"ode block {name!r}: needs at least 1 state")
        if set(equations) != set(states):
            raise BlockError(
                f"ode block {name!r}: equations must cover exactly the "
                f"states; got {sorted(equations)} vs {sorted(states)}"
            )
        if not outputs:
            raise BlockError(f"ode block {name!r}: needs >= 1 output")
        params = dict(params or {})
        reserved = set(_MATH_NAMES) | {"t"}
        for group_name, group in (("state", states), ("input", inputs),
                                  ("param", params)):
            for identifier in group:
                if not str(identifier).isidentifier():
                    raise BlockError(
                        f"ode block {name!r}: invalid {group_name} name "
                        f"{identifier!r}"
                    )
                if identifier in reserved:
                    raise BlockError(
                        f"ode block {name!r}: {group_name} name "
                        f"{identifier!r} shadows a builtin"
                    )
        names = list(states) + list(inputs) + list(params)
        if len(set(names)) != len(names):
            raise BlockError(
                f"ode block {name!r}: duplicate identifier across "
                "states/inputs/params"
            )

        super().__init__(name, inputs=list(inputs),
                         outputs=list(outputs), **params)
        self._state_names = list(states)
        self._initial = np.array(
            [float(states[s]) for s in self._state_names]
        )
        self._input_names = list(inputs)
        self._deriv_code = {
            state: self._compile(name, state, expr)
            for state, expr in equations.items()
        }
        self._output_code = {
            port: self._compile(name, port, expr)
            for port, expr in outputs.items()
        }
        # feedthrough iff any output expression mentions an input name
        self.direct_feedthrough = any(
            self._mentions_input(expr) for expr in outputs.values()
        )

    # Block declares state via a class attribute; OdeBlock's is dynamic
    @property
    def state_size(self) -> int:  # type: ignore[override]
        return len(self._state_names)

    @staticmethod
    def _compile(block_name: str, label: str, expression: str):
        try:
            return compile(expression, f"<{block_name}.{label}>", "eval")
        except SyntaxError as exc:
            raise BlockError(
                f"ode block {block_name!r}: bad expression for "
                f"{label!r}: {exc}"
            ) from exc

    def _mentions_input(self, expression: str) -> bool:
        import ast

        tree = ast.parse(expression, mode="eval")
        mentioned = {
            node.id for node in ast.walk(tree)
            if isinstance(node, ast.Name)
        }
        return bool(mentioned & set(self._input_names))

    # ------------------------------------------------------------------
    def _namespace(self, t: float, state: np.ndarray) -> Dict[str, float]:
        namespace = dict(_MATH_NAMES)
        namespace["t"] = t
        for index, name in enumerate(self._state_names):
            namespace[name] = float(state[index])
        for name in self._input_names:
            namespace[name] = self.in_scalar(name)
        namespace.update(self.params)
        return namespace

    def initial_state(self) -> np.ndarray:
        return self._initial.copy()

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        namespace = self._namespace(t, state)
        return np.array([
            float(eval(self._deriv_code[name],  # noqa: S307 - sandboxed
                       {"__builtins__": {}}, namespace))
            for name in self._state_names
        ])

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        namespace = self._namespace(t, state)
        for port, code in self._output_code.items():
            self.out_scalar(port, float(
                eval(code, {"__builtins__": {}}, namespace)  # noqa: S307
            ))
