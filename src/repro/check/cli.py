"""``python -m repro.check`` — lint model files from the command line.

Each argument is a Python file (an example, a model module).  The file
is imported, its zero-argument model builders are discovered by naming
convention — module-level callables named ``build_*``, ``make_*`` or
``design_*`` whose parameters all have defaults — and every model,
diagram, plan or state machine they return is run through
:func:`repro.check.run_checks`.  Files that define no builder are
skipped with a note (demo scripts whose work happens in ``main()``).

Exit status: 0 when no finding reaches the ``--fail-on`` threshold,
1 when one does (including files that fail to import or build, reported
as ``CHK000`` errors), 2 for usage errors.
"""

from __future__ import annotations

import argparse
import importlib.util
import inspect
import json
import os
import sys
from typing import Any, List, Optional, Tuple

from repro.check.diagnostics import Diagnostic, severity_rank
from repro.check.registry import CheckConfig, meets_threshold
from repro.check.runner import CheckResult, run_checks

#: module-level callables with these prefixes are treated as builders
BUILDER_PREFIXES = ("build_", "make_", "design_")

#: pseudo-code for files that could not be imported or built
LOAD_ERROR_CODE = "CHK000"


def _load_module(path: str, index: int):
    name = f"_repro_check_target_{index}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path!r}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    # let the file import siblings (examples import each other's builders)
    directory = os.path.dirname(os.path.abspath(path))
    added = directory not in sys.path
    if added:
        sys.path.insert(0, directory)
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(name, None)
        raise
    finally:
        if added and directory in sys.path:
            sys.path.remove(directory)
    return module


def _is_builder(name: str, obj: Any, module_name: str) -> bool:
    if not callable(obj) or not name.startswith(BUILDER_PREFIXES):
        return False
    if getattr(obj, "__module__", None) != module_name:
        return False  # imported helper, not this file's builder
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.default is inspect.Parameter.empty:
            return False
    return True


def _checkable(obj: Any) -> bool:
    from repro.core.model import HybridModel
    from repro.core.plan import ExecutionPlan
    from repro.core.streamer import Streamer
    from repro.umlrt.statemachine import StateMachine

    return isinstance(
        obj, (HybridModel, Streamer, ExecutionPlan, StateMachine)
    )


def check_file(
    path: str, config: CheckConfig, index: int = 0
) -> List[Tuple[str, CheckResult, Any]]:
    """Lint every builder of one file; returns (builder, result, target)
    triples (``target`` is ``None`` for import/build failures).

    Import or build failures come back as a single synthetic
    ``CHK000`` error result so the CLI can keep going and still exit
    non-zero.
    """
    try:
        module = _load_module(path, index)
    except BaseException as exc:
        return [(
            "<import>",
            CheckResult([Diagnostic(
                LOAD_ERROR_CODE, "error", path,
                f"failed to import: {type(exc).__name__}: {exc}",
            )], subject=path),
            None,
        )]

    results: List[Tuple[str, CheckResult, Any]] = []
    for name, obj in vars(module).items():
        if not _is_builder(name, obj, module.__name__):
            continue
        try:
            target = obj()
        except BaseException as exc:
            results.append((name, CheckResult([Diagnostic(
                LOAD_ERROR_CODE, "error", f"{path}:{name}",
                f"builder raised: {type(exc).__name__}: {exc}",
            )], subject=f"{path}:{name}"), None))
            continue
        if not _checkable(target):
            continue
        results.append((name, run_checks(target, config=config), target))
    return results


def _opt_report(target: Any, level: int):
    """Run the plan-optimizer pipeline over the target's plan for
    ``--explain``; ``None`` when the target has no compilable plan (or
    optimization is off)."""
    if level <= 0 or target is None:
        return None
    from repro.core.dport import DPort
    from repro.core.model import HybridModel
    from repro.core.network import FlatNetwork
    from repro.core.opt import OptConfig, PlanOptimizer
    from repro.core.plan import ExecutionPlan
    from repro.core.streamer import Streamer

    config = OptConfig.from_level(level)
    protect: List[Any] = []
    try:
        if isinstance(target, ExecutionPlan):
            plan = target
        elif isinstance(target, HybridModel):
            if not target.streamers:
                return None
            protect = [
                probe.source for probe in target.probes.values()
                if isinstance(getattr(probe, "source", None), DPort)
            ]
            plan = FlatNetwork(
                target.streamers, target.flows, strict=False,
            ).plan()
        elif isinstance(target, Streamer):
            if hasattr(target, "finalise") and not getattr(
                target, "_finalised", True
            ):
                target.finalise()
            plan = FlatNetwork([target], strict=False).plan()
        else:
            return None
        return PlanOptimizer(config).run(plan, protect=protect).opt_report
    except Exception:
        return None  # --explain is advisory; never fail the lint over it


def _sched_report(target: Any, config: CheckConfig):
    """Full schedulability report for ``--explain-sched``; ``None`` for
    targets that are not hybrid models (plans, statemachines) or whose
    analysis fails — the flag is advisory, never fatal."""
    from repro.core.model import HybridModel

    if not isinstance(target, HybridModel):
        return None
    from repro.analysis.schedulability import sched_report

    try:
        return sched_report(target, config.sync_interval)
    except Exception as exc:
        return {"error": f"{type(exc).__name__}: {exc}"}


def _print_sched(label: str, report: dict) -> None:
    if "error" in report:
        print(f"  sched: analysis failed ({report['error']})")
        return
    if report.get("empty"):
        print("  sched: no derivable task set (empty model)")
        return
    verdict = "schedulable" if report["schedulable"] else "INFEASIBLE"
    utilisation = report["utilisation"]["utilisation"]
    print(
        f"  sched: {verdict} at sync {report['sync_interval']:g}s "
        f"(utilisation {utilisation:.3f}, "
        f"{len(report['tasks'])} task(s))"
    )
    for name, entry in sorted(report["rta"].items()):
        flag = "ok" if entry["schedulable"] else "MISS"
        print(
            f"    {name:<28} R={entry['response_time']:.3e} "
            f"D={entry['deadline']:.3e} B={entry['blocking']:.3e} "
            f"[{flag}]"
        )
    minimum = report.get("min_feasible_sync_interval")
    if minimum is not None:
        print(
            f"    min feasible sync interval {minimum:.3g}s "
            f"(headroom {report['sync_headroom'] * 100.0:.0f}%)"
        )
    sens = report.get("sensitivity") or {}
    scale = sens.get("wcet_scale_max")
    if scale is not None:
        print(f"    WCET scaling margin ×{scale:.3g} before infeasibility")
    if report.get("blocking_only_failure"):
        print(
            "    minor-step mapping: blocking ALONE breaks the set "
            "(plain RTA passes)"
        )
    if report.get("shared_state"):
        for fact in report["shared_state"]:
            threads = ", ".join(fact["threads"])
            print(f"    shared {fact['resource']} across: {threads}")


def _opt_note(diagnostic: Diagnostic, report) -> Optional[str]:
    """What the optimizer would do about one finding, if anything."""
    if report is None:
        return None
    level = f"O{report.config.level}"
    if diagnostic.code == "STR002":
        if diagnostic.subject in set(report.dce_removed):
            return f"optimizer: eliminated at {level} (dce pass)"
    if diagnostic.code == "STR004":
        members = list((diagnostic.details or {}).get("members", []))
        folded = set(report.folded)
        if members and all(member in folded for member in members):
            return (
                f"optimizer: folded to constant(s) at {level} (fold pass)"
            )
    return None


def _list_rules() -> str:
    from repro.check import default_registry

    lines = []
    for rule in default_registry().rules():
        lines.append(
            f"{rule.code:<9} {rule.severity:<8} [{rule.category}] "
            f"{rule.title}"
        )
        if rule.rationale:
            lines.append(f"          {rule.rationale}")
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Statically check model files without executing them.",
    )
    parser.add_argument(
        "files", nargs="*", help="Python files defining model builders",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout rendering (default: text)",
    )
    parser.add_argument(
        "--fail-on", choices=("info", "warning", "error"),
        default="error", dest="fail_on",
        help="lowest severity that causes a non-zero exit "
             "(default: error)",
    )
    parser.add_argument(
        "--json-output", metavar="PATH",
        help="also write the JSON report to PATH (CI artefact)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--disable", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--suppress", action="append", default=[], metavar="CODE[:GLOB]",
        help="suppress a code, optionally only on subjects matching "
             "a glob (repeatable)",
    )
    parser.add_argument(
        "--sync-interval", type=float, default=0.01, dest="sync_interval",
        help="sync interval assumed by the schedulability lint "
             "(default: 0.01)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only the per-file summary lines",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="annotate findings the plan optimizer would auto-resolve "
             "(dead blocks eliminated, constant subgraphs folded) and "
             "print its rewrite report per target",
    )
    parser.add_argument(
        "--explain-sched", action="store_true", dest="explain_sched",
        help="print the full schedulability report per hybrid-model "
             "target (derived task set, exact RTA with blocking, "
             "sensitivity) and embed it in the JSON report",
    )
    parser.add_argument(
        "--opt-level", type=int, default=1, dest="opt_level",
        help="optimizer level --explain simulates (default: 1)",
    )
    parser.add_argument(
        "--no-opt", action="store_true", dest="no_opt",
        help="disable optimizer annotations (forces level 0)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", dest="list_rules",
        help="list every registered rule and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.files:
        print("error: no files to check", file=sys.stderr)
        return 2

    config = CheckConfig(
        select=(
            set(args.select.split(",")) if args.select else None
        ),
        disable=set(args.disable.split(",")) if args.disable else set(),
        suppress=set(args.suppress),
        sync_interval=args.sync_interval,
    )

    explain_level = 0 if args.no_opt else args.opt_level
    report: dict = {"version": 1, "fail_on": args.fail_on, "targets": []}
    totals = {"errors": 0, "warnings": 0, "infos": 0}
    failed = False
    for index, path in enumerate(args.files):
        results = check_file(path, config, index)
        if not results:
            if args.format == "text" and not args.quiet:
                print(f"{path}: no model builders found, skipped")
            continue
        for builder, result, target in results:
            opt_report = (
                _opt_report(target, explain_level) if args.explain else None
            )
            entry = result.to_json()
            entry["file"] = path
            entry["builder"] = builder
            if opt_report is not None:
                entry["opt"] = opt_report.as_dict()
            sched = (
                _sched_report(target, config) if args.explain_sched
                else None
            )
            if sched is not None:
                entry["sched"] = sched
            report["targets"].append(entry)
            totals["errors"] += len(result.errors)
            totals["warnings"] += len(result.warnings)
            totals["infos"] += len(result.infos)
            if not result.ok(args.fail_on):
                failed = True
            if args.format == "text":
                _print_text(path, builder, result, args, opt_report)
                if sched is not None and not args.quiet:
                    _print_sched(f"{path}:{builder}", sched)
    report["summary"] = dict(totals, targets=len(report["targets"]))

    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    if args.json_output:
        with open(args.json_output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if failed else 0


def _print_text(
    path: str, builder: str, result: CheckResult, args, opt_report=None,
) -> None:
    label = f"{path}:{builder}"
    if not result.diagnostics:
        print(f"{label}: clean")
    else:
        if not args.quiet:
            for diagnostic in sorted(
                result.diagnostics,
                key=lambda d: (
                    -severity_rank(d.severity), d.code, d.subject,
                ),
            ):
                marker = (
                    "!" if meets_threshold(
                        diagnostic.severity, args.fail_on,
                    ) else " "
                )
                print(f"{marker} {label}: {diagnostic}")
                note = _opt_note(diagnostic, opt_report)
                if note is not None:
                    print(f"      {note}")
        print(
            f"{label}: {len(result.errors)} error(s), "
            f"{len(result.warnings)} warning(s), "
            f"{len(result.infos)} info(s)"
        )
    if opt_report is not None and not args.quiet:
        for line in opt_report.describe().splitlines():
            print(f"  {line}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
