"""UML-RT runtime substrate.

This package is a from-scratch implementation of the UML-RT (ROOM) service
library concepts that the DATE'05 paper extends:

* **Signals and messages** (:mod:`repro.umlrt.signal`) — typed, prioritised
  asynchronous messages.
* **Protocols** (:mod:`repro.umlrt.protocol`) — named contracts listing the
  signals a port may send and receive, with base/conjugate roles.
* **Ports** (:mod:`repro.umlrt.port`) — the only communication interface of a
  capsule; end ports deliver to the owning capsule's message queue, relay
  ports forward to an inner part.
* **Hierarchical state machines** (:mod:`repro.umlrt.statemachine`) — the
  behaviour of a capsule, executed under run-to-completion semantics.
* **Capsules** (:mod:`repro.umlrt.capsule`) — active objects composed of
  ports, sub-capsule parts and a state machine.
* **Controllers** (:mod:`repro.umlrt.controller`) — logical threads, each
  running an event loop over a priority message queue.
* **Timing service** (:mod:`repro.umlrt.timing`) — one-shot and periodic
  timers delivered as timeout messages.
* **Frame service** (:mod:`repro.umlrt.frame`) — dynamic incarnation and
  destruction of optional capsule parts.
* **Runtime system** (:mod:`repro.umlrt.runtime`) — a deterministic
  discrete-event executor coordinating all controllers on a logical clock.

The paper's extension (:mod:`repro.core`) plugs *streamers* into this
substrate: capsules stay event-driven here, while continuous behaviour runs
on separate streamer threads and talks to capsules through SPorts.
"""

from repro.umlrt.signal import Message, Priority, Signal
from repro.umlrt.protocol import Protocol, ProtocolRole
from repro.umlrt.port import Port, PortKind
from repro.umlrt.statemachine import (
    ChoicePoint,
    State,
    StateMachine,
    Transition,
    add_timeout_transition,
)
from repro.umlrt.capsule import Capsule, CapsulePart, PartKind
from repro.umlrt.connector import Connector
from repro.umlrt.controller import Controller
from repro.umlrt.timing import TimerHandle, TimingService
from repro.umlrt.frame import FrameService
from repro.umlrt.runtime import RTRuntimeError, RTSystem


def __getattr__(name: str):
    # deprecated alias for RTRuntimeError; warns on use, not import
    if name == "RuntimeError_":
        import warnings

        warnings.warn(
            "repro.umlrt.RuntimeError_ is deprecated; use "
            "RTRuntimeError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return RTRuntimeError
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "Capsule",
    "CapsulePart",
    "ChoicePoint",
    "Connector",
    "Controller",
    "FrameService",
    "Message",
    "PartKind",
    "Port",
    "PortKind",
    "Priority",
    "Protocol",
    "ProtocolRole",
    "RTRuntimeError",
    "RTSystem",
    "Signal",
    "State",
    "StateMachine",
    "TimerHandle",
    "TimingService",
    "Transition",
    "add_timeout_transition",
]
