"""Profiles: named stereotype sets applied to metamodel elements.

A :class:`Profile` bundles stereotype definitions and applies them to
:class:`~repro.metamodel.elements.Classifier` objects with base-metaclass
checking (a ``Port``-based stereotype cannot be applied to a class, etc.).
The two built-in profiles mirror :mod:`repro.metamodel.stereotypes`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.metamodel.elements import Classifier
from repro.metamodel.stereotypes import (
    EXTENSION_PROFILE,
    UMLRT_PROFILE,
    StereotypeDef,
)


class ProfileError(Exception):
    """Raised on illegal stereotype application."""


#: which element kinds may carry which base metaclass
_CLASS_LIKE = {"Class", "DataType", "StateMachine", "Collaboration"}


class Profile:
    """A named set of stereotypes."""

    def __init__(self, name: str, stereotypes: Iterable[StereotypeDef]) -> None:
        self.name = name
        self.stereotypes: Dict[str, StereotypeDef] = {}
        for stereotype in stereotypes:
            if stereotype.name in self.stereotypes:
                raise ProfileError(
                    f"duplicate stereotype {stereotype.name!r} in profile "
                    f"{name!r}"
                )
            self.stereotypes[stereotype.name] = stereotype

    def get(self, name: str) -> StereotypeDef:
        try:
            return self.stereotypes[name]
        except KeyError:
            raise ProfileError(
                f"profile {self.name!r} has no stereotype {name!r}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.stereotypes))

    def apply(self, classifier: Classifier, stereotype_name: str) -> None:
        """Apply a class-like stereotype to a classifier."""
        stereotype = self.get(stereotype_name)
        if stereotype.base_metaclass not in _CLASS_LIKE:
            raise ProfileError(
                f"stereotype {stereotype_name!r} extends "
                f"{stereotype.base_metaclass}, not a class-like element"
            )
        if stereotype_name not in classifier.stereotypes:
            classifier.stereotypes.append(stereotype_name)

    def applied_to(self, classifier: Classifier) -> List[StereotypeDef]:
        return [
            self.stereotypes[name]
            for name in classifier.stereotypes
            if name in self.stereotypes
        ]


def umlrt_profile() -> Profile:
    """The UML-RT profile as a Profile object."""
    return Profile("UML-RT", UMLRT_PROFILE)


def extension_profile() -> Profile:
    """The paper's extension profile as a Profile object."""
    return Profile("Extension", EXTENSION_PROFILE)
