"""Record (multi-field) flow types end to end in a simulation.

Scalar flows dominate the test suite; these tests exercise the record
path: typed sensor bundles flowing between streamers, W1 subset wiring
and the merge semantics of partial records during a live run.
"""

import numpy as np
import pytest

from repro.core.dport import Direction
from repro.core.flowtype import DataKind, FlowType
from repro.core.model import HybridModel
from repro.core.streamer import Streamer

IMU_FULL = FlowType.record("imu", {
    "ax": DataKind.FLOAT,
    "gyro": DataKind.FLOAT,
    "valid": DataKind.BOOL,
})
IMU_ACCEL_ONLY = FlowType.record("accel", {"ax": DataKind.FLOAT})


class ImuSource(Streamer):
    """Produces the full IMU record."""

    def __init__(self, name="imu"):
        super().__init__(name)
        self.add_out("data", IMU_FULL)

    def compute_outputs(self, t, state):
        self.dport("data").write({
            "ax": float(np.sin(t)),
            "gyro": 0.5 * t,
            "valid": True,
        })


class AccelSource(Streamer):
    """Produces only the acceleration field (subset record)."""

    def __init__(self, name="accel"):
        super().__init__(name)
        self.add_out("data", IMU_ACCEL_ONLY)

    def compute_outputs(self, t, state):
        self.dport("data").write({"ax": 2.0 * t})


class Fusion(Streamer):
    """Consumes the full record; integrates ax."""

    state_size = 1
    direct_feedthrough = False

    def __init__(self, name="fusion"):
        super().__init__(name)
        self.add_in("data", IMU_FULL)
        self.add_out("vx", FlowType.scalar())
        self.last_record = None

    def derivatives(self, t, state):
        record = self.dport("data").read()
        self.last_record = record
        return np.array([float(record["ax"])])

    def compute_outputs(self, t, state):
        self.out_scalar("vx", state[0])


class TestRecordFlowsInSimulation:
    def test_full_record_flows(self, model):
        imu = model.add_streamer(ImuSource())
        fusion = model.add_streamer(Fusion())
        model.add_flow(imu.dport("data"), fusion.dport("data"))
        model.add_probe("vx", fusion.dport("vx"))
        model.run(until=np.pi, sync_interval=0.01)
        # vx = integral of sin = 1 - cos(pi) = 2
        assert model.probe("vx").y_final[0] == pytest.approx(2.0, abs=1e-3)
        assert fusion.last_record["valid"] is True
        assert fusion.last_record["gyro"] == pytest.approx(
            0.5 * np.pi, abs=0.01
        )

    def test_subset_record_drives_superset_port(self, model):
        """W1: the accel-only producer may drive the full-IMU consumer;
        unprovided fields keep their defaults."""
        accel = model.add_streamer(AccelSource())
        fusion = model.add_streamer(Fusion())
        model.add_flow(accel.dport("data"), fusion.dport("data"))
        model.add_probe("vx", fusion.dport("vx"))
        model.run(until=1.0, sync_interval=0.01)
        # vx = integral of 2t = 1
        assert model.probe("vx").y_final[0] == pytest.approx(1.0, abs=1e-3)
        # fields the subset producer never wrote stay at defaults
        assert fusion.last_record["valid"] is False
        assert fusion.last_record["gyro"] == 0.0

    def test_superset_cannot_drive_subset(self, model):
        from repro.core.flow import FlowError

        imu = model.add_streamer(ImuSource())
        narrow = Streamer("narrow")
        narrow.add_in("data", IMU_ACCEL_ONLY)
        model.add_streamer(narrow)
        with pytest.raises(FlowError, match="W1"):
            model.add_flow(imu.dport("data"), narrow.dport("data"))

    def test_record_relay_duplication(self, model):
        imu = model.add_streamer(ImuSource())
        a = model.add_streamer(Fusion("fa"))
        b = model.add_streamer(Fusion("fb"))
        relay = model.add_relay("split", IMU_FULL)
        model.add_flow(imu.dport("data"), relay.input)
        model.add_flow(relay.out_a, a.dport("data"))
        model.add_flow(relay.out_b, b.dport("data"))
        model.add_probe("va", a.dport("vx"))
        model.add_probe("vb", b.dport("vx"))
        model.run(until=1.0, sync_interval=0.01)
        assert model.probe("va").y_final[0] == \
            model.probe("vb").y_final[0]
