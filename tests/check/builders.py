"""Builders for the static-checker tests.

Each builder returns a target seeded with exactly the defect one rule
exists to catch (or its repaired twin), so the tests can assert precise
codes, subjects and details rather than just "something fired".
"""

from __future__ import annotations

from repro.core.flowtype import SCALAR, DataKind, FlowType
from repro.core.model import HybridModel
from repro.core.streamer import Streamer
from repro.dataflow import Bias, Constant, Gain, Integrator, Step
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.statemachine import StateMachine

#: record flow types for the STR005 narrowing tests
POS = FlowType.record("pos", {"x": DataKind.FLOAT})
POSVEL = FlowType.record(
    "posvel", {"x": DataKind.FLOAT, "v": DataKind.FLOAT}
)

#: protocol for the SM003 trigger tests; the conjugate role receives
#: exactly {"cmd"}
CHK = Protocol.define("Chk", outgoing=("cmd",), incoming=("ack",))


class RecordSource(Streamer):
    """Emits a record flow type on OUT ``out``."""

    def __init__(self, name: str, flow_type: FlowType) -> None:
        super().__init__(name)
        self.add_out("out", flow_type)


class RecordSink(Streamer):
    """Absorbs a record flow type on IN ``in`` (no outputs: a sink)."""

    direct_feedthrough = True

    def __init__(self, name: str, flow_type: FlowType) -> None:
        super().__init__(name)
        self.add_in("in", flow_type)


class TwoOut(Streamer):
    """One IN, two OUTs — for never-read-output (STR003) tests."""

    direct_feedthrough = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.add_in("u", SCALAR)
        self.add_out("a", SCALAR)
        self.add_out("b", SCALAR)

    def compute_outputs(self, t, state):
        value = self.in_scalar("u")
        self.out_scalar("a", value)
        self.out_scalar("b", -value)


# ----------------------------------------------------------------------
# plan-rule builders
# ----------------------------------------------------------------------
def loop_model() -> HybridModel:
    """Gain <-> Bias: a delay-free algebraic loop (STR001 positive)."""
    model = HybridModel("loop")
    a = model.add_streamer(Gain("a", k=0.5))
    b = model.add_streamer(Bias("b", bias=1.0))
    model.add_flow(a.dport("out"), b.dport("in"))
    model.add_flow(b.dport("out"), a.dport("in"))
    return model


def feedback_model() -> HybridModel:
    """The same loop broken by an integrator (STR001 negative)."""
    model = HybridModel("feedback")
    gain = model.add_streamer(Gain("a", k=0.5))
    integ = model.add_streamer(Integrator("i"))
    model.add_flow(gain.dport("out"), integ.dport("in"))
    model.add_flow(integ.dport("out"), gain.dport("in"))
    model.add_probe("y", integ.dport("out"))
    return model


def dead_chain_model(n: int = 3) -> HybridModel:
    """Constant -> Gain -> ... -> Gain with an unread tail, plus a live
    probed branch (STR002 positive; autofix must cascade the removal)."""
    model = HybridModel("dead")
    prev = model.add_streamer(Constant("c0", value=1.0))
    for index in range(n):
        gain = model.add_streamer(Gain(f"g{index}", k=2.0))
        model.add_flow(prev.dport("out"), gain.dport("in"))
        prev = gain
    live = model.add_streamer(Step("live"))
    model.add_probe("y", live.dport("out"))
    return model


def never_read_model(probe_b: bool = False) -> HybridModel:
    """A TwoOut block whose ``b`` output dangles (STR003 positive);
    ``probe_b=True`` probes it instead (negative)."""
    model = HybridModel("tails")
    src = model.add_streamer(Step("src"))
    split = model.add_streamer(TwoOut("split"))
    model.add_flow(src.dport("out"), split.dport("u"))
    model.add_probe("a", split.dport("a"))
    if probe_b:
        model.add_probe("b", split.dport("b"))
    return model


def foldable_model(constant_fed: bool = True) -> HybridModel:
    """Constant -> Gain -> Bias, probed at the end (STR004 positive);
    ``constant_fed=False`` drives it from a Step instead (negative)."""
    model = HybridModel("fold")
    source = Constant("src", value=2.0) if constant_fed else Step("src")
    model.add_streamer(source)
    gain = model.add_streamer(Gain("g", k=3.0))
    bias = model.add_streamer(Bias("b", bias=1.0))
    model.add_flow(source.dport("out"), gain.dport("in"))
    model.add_flow(gain.dport("out"), bias.dport("in"))
    model.add_probe("y", bias.dport("out"))
    return model


def narrowing_model(narrow: bool = True) -> HybridModel:
    """A POS source driving a POSVEL sink (STR005 positive); with
    ``narrow=False`` both ends use POSVEL (negative)."""
    model = HybridModel("narrow")
    source = model.add_streamer(
        RecordSource("src", POS if narrow else POSVEL)
    )
    sink = model.add_streamer(RecordSink("sink", POSVEL))
    model.add_flow(source.dport("out"), sink.dport("in"))
    return model


# ----------------------------------------------------------------------
# state-machine builders
# ----------------------------------------------------------------------
def sm_with_orphan() -> StateMachine:
    sm = StateMachine("m")
    sm.add_state("a")
    sm.add_state("b")
    sm.add_state("orphan")
    sm.add_state("orphan.child")
    sm.initial("a")
    sm.add_transition("a", "b", trigger="go")
    sm.add_transition("b", "a", trigger="back")
    return sm


def sm_shadowed() -> StateMachine:
    """Two unguarded transitions on the same trigger: the second can
    never fire (SM002 definite, fixable)."""
    sm = StateMachine("m")
    for name in ("idle", "x", "y"):
        sm.add_state(name)
    sm.initial("idle")
    sm.add_transition("idle", "x", trigger=("p", "go"))
    sm.add_transition("idle", "y", trigger=("p", "go"))
    sm.add_transition("x", "idle", trigger="reset")
    sm.add_transition("y", "idle", trigger="reset")
    return sm


def sm_both_guarded() -> StateMachine:
    sm = StateMachine("m")
    for name in ("idle", "x", "y"):
        sm.add_state(name)
    sm.initial("idle")
    sm.add_transition(
        "idle", "x", trigger="go", guard=lambda c, m: True
    )
    sm.add_transition(
        "idle", "y", trigger="go", guard=lambda c, m: False
    )
    sm.add_transition("x", "idle", trigger="reset")
    sm.add_transition("y", "idle", trigger="reset")
    return sm


def sm_fallback() -> StateMachine:
    """Guarded transition then unguarded else-branch: deterministic,
    must NOT be reported by SM002."""
    sm = StateMachine("m")
    for name in ("idle", "x", "y"):
        sm.add_state(name)
    sm.initial("idle")
    sm.add_transition(
        "idle", "x", trigger="go", guard=lambda c, m: True
    )
    sm.add_transition("idle", "y", trigger="go")
    sm.add_transition("x", "idle", trigger="reset")
    sm.add_transition("y", "idle", trigger="reset")
    return sm


def sm_guarded_choice() -> StateMachine:
    """A choice point with every branch guarded (SM005 positive)."""
    sm = StateMachine("m")
    sm.add_state("a")
    sm.add_state("b")
    sm.initial("a")
    choice = sm.add_choice("pick")
    choice.add_branch("b", guard=lambda c, m: False)
    sm.add_transition("a", "pick", trigger="go")
    sm.add_transition("b", "a", trigger="back")
    return sm


class TriggerCapsule(Capsule):
    """Capsule whose machine references a signal/port per constructor."""

    def __init__(
        self, instance_name: str = "ctl",
        port: str = "p", signal: str = "cmd",
    ) -> None:
        self._trigger = (port, signal)
        super().__init__(instance_name)

    def build_structure(self):
        self.create_port("p", CHK.conjugate())

    def build_behaviour(self):
        sm = StateMachine("ctl_sm")
        sm.add_state("idle")
        sm.add_state("busy")
        sm.initial("idle")
        sm.add_transition("idle", "busy", trigger=self._trigger)
        sm.add_transition("busy", "idle", trigger=self._trigger)
        return sm


class TimerCapsule(Capsule):
    """State arms a timer on entry; cancels on exit iff ``cancels``."""

    def __init__(
        self, instance_name: str = "tmr", cancels: bool = False
    ) -> None:
        self._cancels = cancels
        super().__init__(instance_name)

    def build_structure(self):
        self.create_port("p", CHK.conjugate())

    def build_behaviour(self):
        def arm(capsule, message):
            capsule._pending = capsule.inform_in(1.0)

        def cancel(capsule, message):
            handle = getattr(capsule, "_pending", None)
            if handle is not None:
                handle.cancel()

        sm = StateMachine("tmr_sm")
        sm.add_state(
            "wait", entry=arm, exit=cancel if self._cancels else None,
        )
        sm.add_state("done")
        sm.initial("wait")
        sm.add_transition("wait", "done", trigger=("p", "cmd"))
        sm.add_transition("done", "wait", trigger=("p", "cmd"))
        return sm


def capsule_model(capsule: Capsule) -> HybridModel:
    model = HybridModel("cap")
    model.add_capsule(capsule)
    return model


# ----------------------------------------------------------------------
# thread / sched builders
# ----------------------------------------------------------------------
def cross_thread_model(same_thread: bool = False) -> HybridModel:
    """A Step on one thread feeding a feedthrough Gain on another
    (THR001 positive); ``same_thread=True`` is the negative twin."""
    model = HybridModel("xt")
    fast = model.create_thread("fast", h=1e-3)
    src = model.add_streamer(Step("src"))
    gain = model.add_streamer(
        Gain("g", k=2.0), thread=None if same_thread else fast,
    )
    model.add_flow(src.dport("out"), gain.dport("in"))
    model.add_probe("y", gain.dport("out"))
    return model


def shared_state_model(share: bool = True) -> HybridModel:
    """Two leaves on different threads sharing one params dict
    (THR002 positive); ``share=False`` gives each its own (negative)."""
    model = HybridModel("shared")
    fast = model.create_thread("fast", h=1e-3)
    a = Gain("a", k=2.0)
    b = Gain("b", k=2.0)
    if share:
        b.params = a.params
    model.add_streamer(a)
    model.add_streamer(b, thread=fast)
    src = model.add_streamer(Step("src"))
    model.add_flow(src.dport("out"), a.dport("in"))
    model.add_flow(src.dport("out"), b.dport("in"))
    model.add_probe("ya", a.dport("out"))
    model.add_probe("yb", b.dport("out"))
    return model


def blocking_inversion_model() -> HybridModel:
    """A fast thread (h=2e-5) sharing a params dict with two leaves on
    a slow thread (h=1e-3): under the minor-step mapping plain RTA
    accepts the set but the slow thread's critical section blocks the
    fast one past its deadline (SCHED002 positive, blocking-only) and
    the rate asymmetry is a priority-inversion hazard (SCHED003)."""
    model = HybridModel("inversion")
    fast = model.create_thread("fast", h=2e-5)
    slow = model.create_thread("slow", h=1e-3)
    src = Step("src")
    a = Gain("a", k=2.0)
    b = Gain("b", k=3.0)
    shared = a.params
    shared.update(src.params)
    b.params = shared
    src.params = shared
    model.add_streamer(src, thread=fast)
    model.add_streamer(a, thread=slow)
    model.add_streamer(b, thread=slow)
    model.add_flow(src.dport("out"), a.dport("in"))
    model.add_flow(a.dport("out"), b.dport("in"))
    model.add_probe("y", b.dport("out"))
    return model


def overutilised_model() -> HybridModel:
    """Two h=1e-4 threads of six leaves each: every per-thread slice
    still fits the default sync interval (6ms < 10ms), but together
    they demand 12ms of work per 10ms period — estimated utilisation
    1.2 (the SCHED001 utilisation-above-one error path)."""
    model = HybridModel("overutil")
    for half in ("left", "right"):
        thread = model.create_thread(half, h=1e-4)
        src = model.add_streamer(Step(f"{half}_src"), thread=thread)
        chain = src
        for index in range(5):
            gain = model.add_streamer(
                Gain(f"{half}_g{index}", k=1.0), thread=thread,
            )
            model.add_flow(chain.dport("out"), gain.dport("in"))
            chain = gain
        model.add_probe(f"{half}_y", chain.dport("out"))
    return model


def infeasible_model() -> HybridModel:
    """A thread stepped at h=1e-7: its estimated WCET dwarfs the sync
    period, so no schedule exists (SCHED001 error)."""
    model = HybridModel("sched")
    fast = model.create_thread("fast", h=1e-7)
    src = model.add_streamer(Step("src"))
    integ = model.add_streamer(Integrator("i"), thread=fast)
    model.add_flow(src.dport("out"), integ.dport("in"))
    model.add_probe("y", integ.dport("out"))
    return model
