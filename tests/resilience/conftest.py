"""Shared fixtures for the resilience suite: a compact hybrid model
exercising every snapshot surface — continuous state, zero crossings,
SPort signals, a state machine, a pending timer and private streamer
state — plus crash-style interruption helpers.

Interruption style matters: tests interrupt runs by *raising out of the
``on_major_step`` hook* (how a real crash looks), never by running to an
intermediate ``t_mid`` and continuing — the latter truncates the sync
grid at exactly ``t_mid`` while an uninterrupted run passes through the
accumulated floating-point sum, so it is not bitwise comparable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.flowtype import SCALAR
from repro.core.model import HybridModel
from repro.core.streamer import Streamer
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.statemachine import StateMachine

GUARD = Protocol.define(
    "Guard", outgoing=("boost", "coast"), incoming=("dip",),
)


class Oscillator(Streamer):
    """2-state oscillator with a zero crossing each time y dips below 0."""

    state_size = 2
    zero_crossing_names = ("dip",)

    def __init__(self, name: str = "osc") -> None:
        super().__init__(name)
        self.add_in("u", SCALAR)
        self.add_out("y", SCALAR)
        self.add_sport("guard", GUARD.conjugate())
        self.params.update(k=9.0)

    def initial_state(self) -> np.ndarray:
        return np.array([1.0, 0.0])

    def derivatives(self, t, state):
        return np.array(
            [state[1], -self.params["k"] * state[0] + self.in_scalar("u")]
        )

    def compute_outputs(self, t, state):
        self.out_scalar("y", state[0])

    def zero_crossings(self, t, state):
        return (state[0],)

    def on_zero_crossing(self, name, t, direction):
        if direction < 0:
            self.sport("guard").send("dip")


class Damper(Streamer):
    """Feedback damper whose mode is flipped by the watchdog capsule,
    with private backward-difference state (a snapshot hazard unless the
    ``extra_state`` hooks carry it)."""

    direct_feedthrough = True

    def __init__(self, name: str = "damper") -> None:
        super().__init__(name)
        self.add_in("y", SCALAR)
        self.add_out("u", SCALAR)
        self.add_sport("mode", GUARD.conjugate())
        self.params.update(gain=-1.2, enabled=1.0)
        self._prev_y = 0.0

    def compute_outputs(self, t, state):
        if self.params["enabled"]:
            u = self.params["gain"] * (self.in_scalar("y") + self._prev_y)
        else:
            u = 0.0
        self.out_scalar("u", u)

    def on_sync(self, t):
        self._prev_y = self.in_scalar("y")

    def handle_signal(self, sport_name, message):
        if message.signal == "boost":
            self.params["enabled"] = 1.0
        elif message.signal == "coast":
            self.params["enabled"] = 0.0

    def extra_state(self):
        return {"prev_y": self._prev_y}

    def restore_extra_state(self, state):
        self._prev_y = float(state.get("prev_y", 0.0))


class Watchdog(Capsule):
    """Alternates the damper's mode on every dip; keeps a timer pending
    so the timing-service calendar is non-trivial in every snapshot."""

    def build_structure(self):
        self.create_port("guard", GUARD.base())
        self.create_port("mode", GUARD.base())

    def build_behaviour(self):
        sm = StateMachine("watchdog")
        sm.add_state(
            "damping", entry=lambda c, m: c.send("mode", "boost")
        )
        sm.add_state(
            "coasting", entry=lambda c, m: c.send("mode", "coast")
        )
        sm.initial("damping")
        sm.add_transition("damping", "coasting", trigger=("guard", "dip"))
        sm.add_transition("coasting", "damping", trigger=("guard", "dip"))
        return sm

    def on_start(self):
        self.inform_in(100.0)  # pending for the whole run


def build_control_model() -> HybridModel:
    model = HybridModel("resilience-rig")
    watchdog = model.add_capsule(Watchdog("dog"))
    plant = model.add_streamer(Oscillator("osc"))
    damper = model.add_streamer(Damper("damper"))
    model.add_flow(plant.dport("y"), damper.dport("y"))
    model.add_flow(damper.dport("u"), plant.dport("u"))
    model.connect_sport(watchdog.port("guard"), plant.sport("guard"))
    model.connect_sport(watchdog.port("mode"), damper.sport("mode"))
    model.add_probe("y", plant.dport("y"))
    model.add_probe("u", damper.dport("u"))
    return model


class CrashAt(Exception):
    """Test-local crash signal raised out of ``on_major_step``."""


def run_until_crash(model, t_end, crash_step, sync_interval=0.01):
    """Run, crashing (exception out of the major-step hook) at
    ``crash_step``; returns the live scheduler at the crash point."""
    scheduler = model.scheduler(sync_interval=sync_interval)

    def observe(t_now):
        if scheduler.major_steps >= crash_step:
            raise CrashAt(crash_step)

    scheduler.on_major_step = observe
    with pytest.raises(CrashAt):
        scheduler.run(t_end)
    return scheduler


def reference_run(t_end=2.0, sync_interval=0.01):
    model = build_control_model()
    model.run(until=t_end, sync_interval=sync_interval)
    return model


def assert_probes_bitwise(model_a, model_b):
    assert set(model_a.probes) == set(model_b.probes)
    for name in model_a.probes:
        a = model_a.probe(name)
        b = model_b.probe(name)
        assert np.array_equal(a.times, b.times), f"probe {name}: times"
        assert np.array_equal(a.states, b.states), f"probe {name}: states"
