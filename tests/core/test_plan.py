"""ExecutionPlan IR: structure, thread views, and the two trickiest
flattening paths (cross-thread sampling, deep relay chains)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.network import FlatNetwork, NetworkError
from repro.core.plan import ExecutionPlan
from repro.dataflow.diagram import Diagram
from repro.dataflow.sources import Constant
from repro.dataflow.math_blocks import Gain

from tests.conftest import ConstLeaf, DecayLeaf, GainLeaf, IntegratorLeaf


def chain_network():
    """const -> gain -> integrator (one forward chain, one state)."""
    from repro.core.flow import Flow

    const = ConstLeaf("c", 2.0)
    gain = GainLeaf("g", k=3.0)
    integ = IntegratorLeaf("i")
    flows = [
        Flow(const.dport("y"), gain.dport("u")),
        Flow(gain.dport("y"), integ.dport("u")),
    ]
    return FlatNetwork([const, gain, integ], flows), (const, gain, integ)


class TestPlanTables:
    def test_nodes_follow_network_order(self):
        network, __ = chain_network()
        plan = network.plan()
        assert [node.leaf for node in plan.nodes] == list(network.order)
        assert [node.index for node in plan.nodes] == [0, 1, 2]

    def test_state_slices_match_network(self):
        network, (c, g, i) = chain_network()
        plan = network.plan()
        node = plan.node_of(i)
        assert (node.lo, node.hi) == network.state_slice(i)
        assert node.n_states == 1
        assert plan.state_size == network.state_size == 1

    def test_stages_are_dataflow_depths(self):
        network, (c, g, i) = chain_network()
        plan = network.plan()
        # only feedthrough consumers constrain the order, so the
        # integrator schedules at depth 0 (its input arrives via the
        # feedback pass) while the gain sits one stage below the const
        assert plan.node_of(c).stage == 0
        assert plan.node_of(g).stage == 1
        assert plan.node_of(i).stage == 0
        assert len(plan.stages) == 2
        # every node appears in exactly one stage
        flat = [idx for stage in plan.stages for idx in stage]
        assert sorted(flat) == [0, 1, 2]

    def test_edge_flags_in_chain(self):
        network, (c, g, i) = chain_network()
        plan = network.plan()
        real = [e for e in plan.edges if not e.is_observer]
        assert len(real) == 2
        by_dst = {e.resolved.dst_leaf.name: e for e in real}
        # const -> gain: gain is feedthrough, scheduled after const
        assert not by_dst["g"].is_feedback
        # gain -> integrator: the integrator is NOT feedthrough, so it
        # schedules before the gain and reads through the feedback pass
        assert by_dst["i"].is_feedback
        assert all(not e.crosses_thread for e in real)

    def test_feedback_edge_flagged(self):
        """A non-feedthrough consumer ahead of its producer in schedule
        order yields an is_feedback edge (second propagation pass)."""
        from repro.core.flow import Flow

        integ = IntegratorLeaf("i")      # constructed first -> first in order
        const = ConstLeaf("c", 1.0)
        flows = [Flow(const.dport("y"), integ.dport("u"))]
        network = FlatNetwork([integ, const], flows)
        plan = network.plan()
        edge = next(e for e in plan.edges if not e.is_observer)
        assert edge.is_feedback  # const is scheduled after integ

    def test_guard_table_matches_network_guards(self):
        class Guarded(DecayLeaf):
            zero_crossing_names = ("low", "high")

            def zero_crossings(self, t, state):
                return [state[0] - 0.1, 0.9 - state[0]]

        leaf = Guarded("d")
        network = FlatNetwork([leaf])
        plan = network.plan()
        assert [g.qualified_name for g in plan.guards] == [
            g.qualified_name for g in network.guards
        ]
        assert [g.slot for g in plan.guards] == [0, 1]
        network.evaluate(0.0, network.initial_state())
        values = plan.guard_values(0.0, network.initial_state())
        assert values == pytest.approx([0.9, -0.1])

    def test_node_of_foreign_leaf_raises(self):
        network, __ = chain_network()
        with pytest.raises(NetworkError, match="not part of"):
            network.plan().node_of(ConstLeaf("other", 1.0))

    def test_stats_and_describe(self):
        network, __ = chain_network()
        plan = network.plan()
        stats = plan.stats()
        assert stats["nodes"] == 3
        assert stats["edges"] == 2
        assert stats["states"] == 1
        assert stats["stages"] == 2
        assert stats["feedback_edges"] == 1
        assert "stage 0" in plan.describe()


class TestPlanExecution:
    def test_rhs_matches_network_rhs(self):
        network, __ = chain_network()
        y0 = network.initial_state()
        assert network.plan().rhs(0.0, y0) == pytest.approx(
            np.array([6.0])  # d(i)/dt = 3 * 2
        )

    def test_evaluation_counter_shared(self):
        network, __ = chain_network()
        before = network.rhs_evaluations
        network.evaluate(0.0, network.initial_state())
        network.rhs(0.0, network.initial_state())
        assert network.rhs_evaluations == before + 2

    def test_bad_derivative_shape_is_network_error(self):
        class Broken(IntegratorLeaf):
            def derivatives(self, t, state):
                return np.array([1.0, 2.0])

        network = FlatNetwork([Broken("b")])
        with pytest.raises(NetworkError, match="derivatives"):
            network.rhs(0.0, network.initial_state())


class TestThreadViews:
    def build(self, model):
        fast = model.create_thread("fast", solver="rk4", h=0.001)
        slow = model.create_thread("slow", solver="euler", h=0.01)
        const = model.add_streamer(ConstLeaf("c", 1.0), fast)
        a = model.add_streamer(IntegratorLeaf("a"), fast)
        b = model.add_streamer(IntegratorLeaf("b"), slow)
        model.add_flow(const.dport("y"), a.dport("u"))
        model.add_flow(a.dport("y"), b.dport("u"))
        model.add_probe("a", a.dport("y"))
        model.add_probe("b", b.dport("y"))
        return const, a, b

    def test_cross_thread_edges_flagged(self, model):
        const, a, b = self.build(model)
        scheduler = model.scheduler(sync_interval=0.1)
        scheduler.build()
        plan = scheduler.plan
        by_dst = {
            edge.resolved.dst_leaf.name: edge
            for edge in plan.edges if not edge.is_observer
        }
        assert not by_dst["a"].crosses_thread   # const -> a, both fast
        assert by_dst["b"].crosses_thread       # a -> b, fast -> slow
        assert plan.stats()["cross_thread_edges"] == 1

    def test_thread_views_partition_nodes_and_edges(self, model):
        const, a, b = self.build(model)
        scheduler = model.scheduler(sync_interval=0.1)
        scheduler.build()
        plan = scheduler.plan
        fast_view = next(
            t for t in model.threads if t.name == "fast"
        ).plan
        slow_view = next(
            t for t in model.threads if t.name == "slow"
        ).plan
        assert {n.leaf.name for n in fast_view.nodes} == {"c", "a"}
        assert {n.leaf.name for n in slow_view.nodes} == {"b"}
        # the cross-thread a->b edge is absent from BOTH views: during a
        # slice the receiving pad must stay frozen
        assert all(
            not e.crosses_thread for e in fast_view.edges
        )
        assert len(slow_view.edges) == 0
        # views share the analysis counters with the full plan
        assert fast_view.counters is plan.counters
        assert slow_view.counters is plan.counters

    def test_cross_thread_pad_frozen_during_slice(self, model):
        """Regression: b integrates the *sampled* value of a.

        a(t) = t exactly.  With sync=0.1 the pad feeding b refreshes only
        at sync points, so b(0.5) = 0.1*(0 + 0.1 + 0.2 + 0.3 + 0.4) = 0.10
        exactly (Euler is exact on slice-constant inputs).  If cross-thread
        edges ever leaked into a thread view, b would track the true
        integral 0.125 instead.
        """
        self.build(model)
        model.run(until=0.5, sync_interval=0.1)
        b_final = model.probe("b").y_final[0]
        assert b_final == pytest.approx(0.10, abs=1e-9)
        assert abs(b_final - 0.125) > 0.02


class TestDeepRelayChains:
    N_CONSUMERS = 9  # forces a chain of 8 relays inside the diagram

    def build(self):
        inner = Diagram("inner")
        inner.add(Constant("src", 2.0))
        inner.expose("out", "src.out")
        outer = Diagram("outer")
        outer.add(inner)
        for i in range(self.N_CONSUMERS):
            outer.add(Gain(f"g{i}", k=float(i + 1)))
            outer.connect("inner.out", f"g{i}.in")
        outer.finalise()
        return outer

    def test_every_consumer_resolved_through_the_chain(self):
        outer = self.build()
        network = FlatNetwork([outer])
        real_edges = [
            e for e in network.plan().edges if not e.is_observer
        ]
        assert len(real_edges) == self.N_CONSUMERS
        # all edges originate at the single source leaf
        assert {e.resolved.src_leaf.name for e in real_edges} == {"src"}
        # the deepest consumer's path walks the boundary plus the whole
        # relay chain: N-1 relays and N+1 flows
        depths = sorted(len(e.resolved.path) for e in real_edges)
        assert depths[0] >= 2          # boundary hop + one relay at least
        assert depths[-1] >= 2 * (self.N_CONSUMERS - 1)

    def test_consumers_share_one_stage(self):
        outer = self.build()
        plan = FlatNetwork([outer]).plan()
        gains = [
            node for node in plan.nodes if node.leaf.name.startswith("g")
        ]
        assert len(gains) == self.N_CONSUMERS
        assert {node.stage for node in gains} == {1}

    def test_values_propagate_down_the_chain(self):
        outer = self.build()
        network = FlatNetwork([outer])
        network.evaluate(0.0, network.initial_state())
        for i in range(self.N_CONSUMERS):
            port = outer.port_at(f"g{i}.out")
            assert port.read_scalar() == pytest.approx(2.0 * (i + 1))


class TestRecompile:
    def test_bind_threads_carries_counters(self):
        network, __ = chain_network()
        network.evaluate(0.0, network.initial_state())
        count = network.rhs_evaluations
        leaf_threads = {id(leaf): 0 for leaf in network.leaves}
        plan = network.bind_threads(leaf_threads)
        assert network.rhs_evaluations == count
        assert network.plan() is plan

    def test_compile_classmethod_direct(self):
        network, __ = chain_network()
        plan = ExecutionPlan.compile(network)
        assert plan.n_threads == 1
        assert len(plan.nodes) == 3
