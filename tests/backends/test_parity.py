"""Differential parity: every backend bitwise against the interpreter.

All runs use a binary-exact step (``H = 1/512``) so every grid point —
including the end time — is an exact double and split/clamped final
steps cannot introduce last-ulp drift.  The reference is the
``interpreter`` backend compiled from the *same* request (same opt
level), which is itself bitwise identical to the O0 plan at O1 (the
optimizer's exact-replay guarantee, asserted separately below).
"""

import numpy as np
import pytest

from repro.core.backend import (
    FALLBACKS,
    BackendError,
    CompileRequest,
    available_backends,
    compile_program,
    fallback_chain,
    get_backend,
    has_c_compiler,
)
from repro.scenarios.synth import synth_dag
from repro.dataflow import (
    PID,
    DeadZone,
    FirstOrderLag,
    Gain,
    Integrator,
    Pulse,
    Ramp,
    Saturation,
    Scope,
    SecondOrderSystem,
    Sine,
    StateSpace,
    Step,
    Sum,
    TransferFunction,
    ZeroOrderHold,
)
from repro.dataflow.diagram import Diagram
from repro.service import MetricsRegistry

H = 1.0 / 512.0  # binary-exact: every multiple is an exact double
T_END = 0.5      # 256 whole steps; the final step is never clamped

needs_cc = pytest.mark.skipif(
    not has_c_compiler(), reason="no C compiler on this host"
)


def feedback_diagram():
    d = Diagram("fb")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=4.0, ki=2.0, tf=0.5, u_min=-10.0, u_max=10.0))
    d.add(FirstOrderLag("plant", tau=0.5))
    d.add(Scope("scope"))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    d.connect("plant.out", "scope.in1")
    return d


def everything_diagram():
    """Most supported block types, including the sampled sync path."""
    d = Diagram("all")
    d.add(Sine("sine", amplitude=1.0, freq=0.5))
    d.add(Ramp("ramp", slope=0.1))
    d.add(Pulse("pulse", period=2.0, duty=0.5))
    d.add(Sum("mix", signs="+++"))
    d.add(Saturation("sat", lower=-1.5, upper=1.5))
    d.add(DeadZone("dz", width=0.1))
    d.add(Gain("g", k=2.0))
    d.add(SecondOrderSystem("pt2", omega=3.0, zeta=0.7))
    d.add(TransferFunction("tf", num=[1.0], den=[0.2, 1.0]))
    d.add(StateSpace("ss", a=[[-2.0]], b=[1.0], c=[1.0]))
    d.add(Integrator("integ"))
    d.add(ZeroOrderHold("zoh", ts=0.1))
    d.add(Scope("scope"))
    d.connect("sine.out", "mix.in1")
    d.connect("ramp.out", "mix.in2")
    d.connect("pulse.out", "mix.in3")
    d.connect("mix.out", "sat.in")
    d.connect("sat.out", "dz.in")
    d.connect("dz.out", "g.in")
    d.connect("g.out", "pt2.in")
    d.connect("pt2.out", "tf.in")
    d.connect("tf.out", "ss.in")
    d.connect("ss.out", "integ.in")
    d.connect("integ.out", "zoh.in")
    d.connect("zoh.out", "scope.in1")
    return d


#: name -> (diagram factory, has sampled blocks)
DIAGRAMS = {
    "feedback": (feedback_diagram, False),
    "everything": (everything_diagram, True),
    "synth0": (lambda: synth_dag(0, blocks=14), False),
    "synth1": (lambda: synth_dag(1, blocks=18, sampled=True), True),
    "synth2": (lambda: synth_dag(2, blocks=10), False),
    "synth3": (lambda: synth_dag(3, blocks=16, sampled=True), True),
}
CONTINUOUS = [name for name, (__, sampled) in DIAGRAMS.items() if not sampled]
OPT_LEVELS = (0, 1, 2)


@pytest.fixture(scope="module")
def native_cache(tmp_path_factory):
    """One artifact cache for the whole module: each (diagram, opt)
    pair compiles its shared object exactly once."""
    return tmp_path_factory.mktemp("native-cache")


def build(name, backend, opt_level, cache_dir=None, **overrides):
    factory, __ = DIAGRAMS[name]
    request = CompileRequest(
        diagram=factory(), h=H, opt_level=opt_level, cache_dir=cache_dir,
        **overrides,
    )
    program = compile_program(request, backend)
    assert program.backend == backend
    return program


def assert_bitwise(ref, got):
    assert np.array_equal(ref.t, got.t)
    assert set(ref.series) == set(got.series)
    for label in ref.series:
        assert np.array_equal(ref.series[label], got.series[label]), label
    assert np.array_equal(ref.final_state, got.final_state)


@pytest.mark.parametrize("opt_level", OPT_LEVELS)
@pytest.mark.parametrize("name", sorted(DIAGRAMS))
class TestCompiledPython:
    def test_bitwise_vs_interpreter(self, name, opt_level):
        ref = build(name, "interpreter", opt_level).run(T_END)
        got = build(name, "compiled-python", opt_level).run(T_END)
        assert_bitwise(ref, got)


@needs_cc
@pytest.mark.parametrize("opt_level", OPT_LEVELS)
@pytest.mark.parametrize("name", sorted(DIAGRAMS))
class TestNativeC:
    def test_bitwise_vs_interpreter(self, name, opt_level, native_cache):
        ref = build(name, "interpreter", opt_level).run(T_END)
        got = build(
            name, "native-c", opt_level, cache_dir=native_cache,
        ).run(T_END)
        assert_bitwise(ref, got)


@pytest.mark.parametrize("opt_level", (0, 2))
@pytest.mark.parametrize("name", sorted(CONTINUOUS))
class TestBatchSingleInstance:
    def test_bitwise_vs_interpreter(self, name, opt_level):
        ref = build(name, "interpreter", opt_level).run(T_END)
        got = build(name, "batch", opt_level, n=1).run(T_END)
        assert np.array_equal(ref.t, got.t)
        assert set(ref.series) == set(got.series)
        for label in ref.series:
            assert np.array_equal(
                ref.series[label], got.series[label][:, 0],
            ), label
        assert np.array_equal(ref.final_state, got.final_state[0])


@pytest.mark.parametrize("name", sorted(DIAGRAMS))
def test_o1_replays_o0_bitwise(name):
    """The optimizer's O1 exact-replay guarantee, through the backend
    surface: the fused/folded plan's trace is the unoptimized trace."""
    ref = build(name, "interpreter", 0).run(T_END)
    got = build(name, "interpreter", 1).run(T_END)
    assert_bitwise(ref, got)


def test_split_run_continues_bitwise():
    """Two runs from one cursor equal one uninterrupted run — on every
    scalar backend, given a binary-exact grid."""
    full = build("everything", "interpreter", 0).run(2 * T_END)
    for backend in ("interpreter", "compiled-python"):
        program = build("everything", backend, 0)
        first = program.run(T_END)
        second = program.run(2 * T_END)
        # the second segment re-records its resume point: drop the
        # duplicate row when splicing
        t = np.concatenate([first.t, second.t[1:]])
        assert np.array_equal(full.t, t)
        for label in full.series:
            series = np.concatenate(
                [first.series[label], second.series[label][1:]]
            )
            assert np.array_equal(full.series[label], series), label
        assert np.array_equal(full.final_state, second.final_state)


class TestRegistryAndFallback:
    def test_registry_lists_all_five(self):
        assert available_backends() == [
            "batch", "compiled-python", "interpreter", "native-batch",
            "native-c",
        ]

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="unknown execution backend"):
            get_backend("jit-fortran")

    def test_fallback_chain_shapes(self):
        assert fallback_chain("native-c") == (
            "native-c", "compiled-python", "interpreter",
        )
        assert fallback_chain("compiled-python") == (
            "compiled-python", "interpreter",
        )
        assert fallback_chain("interpreter") == ("interpreter",)
        assert FALLBACKS["native-c"][-1] == "interpreter"

    def test_native_without_compiler_falls_back(self, monkeypatch):
        """No C compiler must never fail the job: the request lands on
        compiled-python with a telemetry event and a fallback metric."""
        import repro.core.backend.native as native

        monkeypatch.setattr(native, "has_c_compiler", lambda: False)
        metrics = MetricsRegistry()
        events = []
        program = compile_program(
            CompileRequest(diagram=feedback_diagram(), h=H),
            "native-c",
            metrics=metrics,
            emit=lambda **payload: events.append(payload),
        )
        assert program.backend == "compiled-python"
        assert events and events[0]["requested"] == "native-c"
        assert events[0]["attempted"] == "native-c"
        assert events[0]["fell_back_to"] == "compiled-python"
        assert "compiler" in events[0]["reason"]
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["backend.fallback"] == 1
        got = program.run(T_END)
        ref = build("feedback", "interpreter", 0).run(T_END)
        assert_bitwise(ref, got)

    def test_adaptive_solver_demotes_kernels(self):
        """rk45 has no fixed-step kernel loop: compiled backends hand
        the request to the interpreter instead of mis-stepping."""
        events = []
        program = compile_program(
            CompileRequest(diagram=feedback_diagram(), solver="rk45", h=H),
            "compiled-python",
            emit=lambda **payload: events.append(payload),
        )
        assert program.backend == "interpreter"
        assert events and "solver" in events[0]["reason"]
