"""Timing service.

UML-RT capsules obtain time through a timing service that delivers
``timeout`` messages to a timing port.  The paper points out that "timing
in UML-RT is unpredictable": timeouts are queued like any other message,
so their delivery jitter depends on queue load.  This implementation
reproduces that behaviour faithfully — expiry inserts a ``timeout``
message into the capsule's controller queue at ``HIGH`` priority, and the
message is dispatched whenever the controller gets to it.  Benchmark C3
measures this jitter against the extension's continuous Time service
(:mod:`repro.core.timeservice`).

Timers run on the runtime's logical clock, so tests are deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.umlrt.signal import TIMEOUT_SIGNAL, Message, Priority

if TYPE_CHECKING:  # pragma: no cover
    from repro.umlrt.capsule import Capsule
    from repro.umlrt.runtime import RTSystem


class TimingError(Exception):
    """Raised for invalid timer operations."""


_HANDLE_SEQ = itertools.count()


class TimerHandle:
    """A scheduled (possibly periodic) timeout.

    Attributes
    ----------
    capsule:
        Destination capsule; the timeout arrives on its ``timer`` port.
    expiry:
        Next expiry on the logical clock.
    period:
        Repetition period, or ``None`` for one-shot timers.
    data:
        User payload echoed in the timeout message (the handle itself is
        also reachable via ``message.data[1]``).
    """

    def __init__(
        self,
        capsule: "Capsule",
        expiry: float,
        period: Optional[float],
        data: Any,
    ) -> None:
        self.capsule = capsule
        self.expiry = expiry
        self.period = period
        self.data = data
        self.cancelled = False
        self.fired = 0
        self.seq = next(_HANDLE_SEQ)

    def cancel(self) -> None:
        """Cancel the timer; pending expiries are discarded."""
        self.cancelled = True

    @property
    def periodic(self) -> bool:
        return self.period is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = f"every {self.period}" if self.periodic else "one-shot"
        return (
            f"TimerHandle({self.capsule.instance_name}, {kind}, "
            f"next={self.expiry}, fired={self.fired})"
        )


class TimingService:
    """Calendar of pending timers on the runtime's logical clock."""

    def __init__(self, runtime: "RTSystem") -> None:
        self._runtime = runtime
        self._calendar: List[Tuple[float, int, TimerHandle]] = []
        self.timeouts_delivered = 0

    # ------------------------------------------------------------------
    # scheduling API
    # ------------------------------------------------------------------
    def inform_in(
        self, capsule: "Capsule", delay: float, data: Any = None
    ) -> TimerHandle:
        """Deliver one ``timeout`` to ``capsule`` after ``delay`` time units."""
        if delay < 0:
            raise TimingError(f"negative delay: {delay}")
        handle = TimerHandle(capsule, self._runtime.now + delay, None, data)
        heapq.heappush(self._calendar, (handle.expiry, handle.seq, handle))
        return handle

    def inform_every(
        self, capsule: "Capsule", period: float, data: Any = None
    ) -> TimerHandle:
        """Deliver ``timeout`` to ``capsule`` every ``period`` time units."""
        if period <= 0:
            raise TimingError(f"non-positive period: {period}")
        handle = TimerHandle(capsule, self._runtime.now + period, period, data)
        heapq.heappush(self._calendar, (handle.expiry, handle.seq, handle))
        return handle

    # ------------------------------------------------------------------
    # runtime integration
    # ------------------------------------------------------------------
    def next_expiry(self) -> Optional[float]:
        """Earliest non-cancelled expiry, or None if the calendar is empty."""
        self._prune()
        if not self._calendar:
            return None
        return self._calendar[0][0]

    def fire_due(self, now: float) -> int:
        """Deliver timeout messages for every timer due at or before ``now``."""
        fired = 0
        while self._calendar and self._calendar[0][0] <= now:
            expiry, __, handle = heapq.heappop(self._calendar)
            if handle.cancelled:
                continue
            handle.fired += 1
            fired += 1
            self.timeouts_delivered += 1
            port = handle.capsule.port("timer")
            message = Message(
                signal=TIMEOUT_SIGNAL.name,
                data=(handle.data, handle),
                priority=Priority.HIGH,
                timestamp=expiry,
                port=port,
            )
            self._runtime.deliver(port, message)
            if handle.periodic and not handle.cancelled:
                handle.expiry = expiry + handle.period  # drift-free
                heapq.heappush(
                    self._calendar, (handle.expiry, handle.seq, handle)
                )
        return fired

    def pending(self) -> int:
        self._prune()
        return len(self._calendar)

    # ------------------------------------------------------------------
    # checkpointing hooks (resilience layer)
    # ------------------------------------------------------------------
    def snapshot_pending(self) -> dict:
        """Extract live timers for the snapshot codec.

        Handles are captured by value (destination capsule name, expiry,
        period, payload, fire count); the live :class:`TimerHandle`
        objects are never serialized.  Cancelled timers are dropped —
        they can no longer be observed.
        """
        self._prune()
        timers = []
        for __, __, handle in sorted(self._calendar):
            if handle.cancelled:
                continue
            timers.append({
                "capsule": handle.capsule.instance_name,
                "expiry": handle.expiry,
                "period": handle.period,
                "data": handle.data,
                "fired": handle.fired,
            })
        return {
            "timeouts_delivered": self.timeouts_delivered,
            "timers": timers,
        }

    def restore_pending(self, snapshot: dict, resolve_capsule) -> None:
        """Replace the calendar with timers captured by
        :meth:`snapshot_pending`.

        ``resolve_capsule`` maps an instance name back to a live capsule
        in the rebuilt model.  Restored handles are fresh objects: any
        handle reference a capsule kept from before the checkpoint is
        dead, so capsules that cancel timers must stash the payload, not
        the handle (the timeout message's ``data[1]`` carries the new
        handle).
        """
        self.timeouts_delivered = int(snapshot.get("timeouts_delivered", 0))
        self._calendar.clear()
        for entry in snapshot.get("timers", ()):
            handle = TimerHandle(
                resolve_capsule(entry["capsule"]),
                float(entry["expiry"]),
                entry.get("period"),
                entry.get("data"),
            )
            handle.fired = int(entry.get("fired", 0))
            heapq.heappush(
                self._calendar, (handle.expiry, handle.seq, handle)
            )

    def _prune(self) -> None:
        while self._calendar and self._calendar[0][2].cancelled:
            heapq.heappop(self._calendar)
