"""Snapshot codec: versioned serialization of in-flight simulation state.

A snapshot is taken at a major-step boundary — the only instant where the
hybrid world is quiescent: controller queues are drained, streamer signal
exchange has happened, and the continuous state sits exactly on the sync
grid.  The codec never pickles live objects; every subsystem exposes an
explicit extraction hook (``snapshot_state`` / ``restore_state`` and
friends) returning plain data, and the codec assembles those parts into a
:class:`Snapshot` keyed to the model's
:meth:`~repro.core.plan.ExecutionPlan.fingerprint`.

What is captured
----------------
* the scheduler clock, flat state vector and step/event counters;
* per-thread solver bindings (minor step, adaptive-step ``h``, solver
  internals such as the RK45 FSAL slot and PI error history);
* the UML-RT side: state-machine configurations (active state, history,
  deferred messages), pending timers (by value, never by handle), bridge
  channels and SPort queues, runtime counters;
* per-leaf streamer ``params``, pending state resets and declared
  ``extra_state`` (sample clocks, delay lines, difference histories);
* probe trajectories, so a resumed run's recorded history matches an
  uninterrupted one sample for sample.

What is *not* captured: the model structure itself (rebuilt from the same
factory on restore — the fingerprint check enforces it really is the
same), live ``TimerHandle`` references user code stashed, and OS-thread
state (threads are reconstructed, not thawed).

Exactness: float64 arrays travel as raw little-endian bytes (base64);
scalars rely on Python's shortest-repr float round-trip.  Restoring a
fixed-step run therefore continues *bitwise identically*; adaptive runs
are bitwise too because the controller history and FSAL cache are part of
the snapshot.

Versioning rules: ``SNAPSHOT_VERSION`` bumps on any change to the payload
schema; a decoder never guesses across versions
(:class:`SnapshotVersionError`), and a snapshot never restores onto a
plan with a different fingerprint (:class:`FingerprintMismatchError` —
raised before any state is touched, so a failed restore caches nothing).
"""

from __future__ import annotations

import base64
import hashlib
import json
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict

import numpy as np

from repro.solvers.history import Trajectory
from repro.umlrt.signal import Message, Priority

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hybrid import HybridScheduler

#: bump on ANY payload schema change; decoders never guess across versions
SNAPSHOT_VERSION = 1

#: container magic; the header line is ``REPROSNAP <version> <crc32> <len>``
MAGIC = b"REPROSNAP"


class SnapshotError(Exception):
    """Base class for snapshot capture/restore failures."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by an incompatible codec version."""


class SnapshotCorruptError(SnapshotError):
    """The container failed its magic/CRC/schema integrity checks."""


class FingerprintMismatchError(SnapshotError):
    """The snapshot belongs to a different execution plan.

    Raised before any state is overlaid — a mismatched restore leaves the
    target scheduler exactly as it was and caches nothing.
    """


@dataclass
class Snapshot:
    """One captured simulation state, ready to encode or restore."""

    version: int
    #: plan fingerprint (plus scheduler knobs) this state belongs to
    fingerprint: str
    #: logical time of the capture point
    t: float
    #: major steps completed at the capture point (minor steps for batch)
    step: int
    kind: str = "hybrid"
    payload: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# value encoding: plain JSON plus typed markers
# ----------------------------------------------------------------------
def _encode_value(obj: Any, path: str) -> Any:
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, float):
        return obj  # json repr is shortest round-trip: bitwise exact
    if isinstance(obj, Message):
        return {"__msg__": {
            "signal": obj.signal,
            "data": _encode_value(obj.data, f"{path}.data"),
            "priority": int(obj.priority),
            "timestamp": obj.timestamp,
            "port": getattr(obj.port, "name", None),
        }}
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return {"__nd__": base64.b64encode(arr.tobytes()).decode("ascii"),
                "dtype": arr.dtype.str,
                "shape": list(arr.shape)}
    if isinstance(obj, tuple):
        return {"__tup__": [
            _encode_value(v, f"{path}[{i}]") for i, v in enumerate(obj)
        ]}
    if isinstance(obj, list):
        return [_encode_value(v, f"{path}[{i}]") for i, v in enumerate(obj)]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise SnapshotError(
                    f"non-string mapping key {key!r} at {path}"
                )
            if key.startswith("__") and key.endswith("__"):
                raise SnapshotError(
                    f"reserved marker-like key {key!r} at {path}"
                )
            out[key] = _encode_value(value, f"{path}.{key}")
        return out
    raise SnapshotError(
        f"cannot snapshot object of type {type(obj).__name__} at {path}; "
        "extraction hooks must return plain data "
        "(numbers, strings, lists, dicts, tuples, ndarrays, Messages)"
    )


def _decode_value(obj: Any) -> Any:
    if isinstance(obj, list):
        return [_decode_value(v) for v in obj]
    if isinstance(obj, dict):
        if "__nd__" in obj:
            raw = base64.b64decode(obj["__nd__"])
            return np.frombuffer(
                raw, dtype=np.dtype(obj["dtype"])
            ).reshape(obj["shape"]).copy()
        if "__tup__" in obj:
            return tuple(_decode_value(v) for v in obj["__tup__"])
        if "__msg__" in obj:
            fields = obj["__msg__"]
            return Message(
                signal=fields["signal"],
                data=_decode_value(fields["data"]),
                priority=Priority(fields["priority"]),
                timestamp=fields["timestamp"],
                port=fields["port"],  # a name; resolved by the restorer
            )
        return {key: _decode_value(value) for key, value in obj.items()}
    return obj


# ----------------------------------------------------------------------
# container framing
# ----------------------------------------------------------------------
def encode_blob(doc: Dict[str, Any]) -> bytes:
    """Frame a plain document as ``header + JSON body`` with a CRC32."""
    body = json.dumps(
        _encode_value(doc, "$"), sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    header = b"%s %d %d %d\n" % (
        MAGIC, SNAPSHOT_VERSION, zlib.crc32(body), len(body),
    )
    return header + body


def decode_blob(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_blob`, with integrity checks."""
    newline = data.find(b"\n")
    if newline < 0 or not data.startswith(MAGIC + b" "):
        raise SnapshotCorruptError("missing snapshot magic header")
    parts = data[:newline].split()
    if len(parts) != 4:
        raise SnapshotCorruptError("malformed snapshot header")
    try:
        version, crc, length = (int(p) for p in parts[1:])
    except ValueError as exc:
        raise SnapshotCorruptError("malformed snapshot header") from exc
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"snapshot version {version} != supported {SNAPSHOT_VERSION}"
        )
    body = data[newline + 1:]
    if len(body) != length:
        raise SnapshotCorruptError(
            f"snapshot body truncated: {len(body)} of {length} bytes"
        )
    if zlib.crc32(body) != crc:
        raise SnapshotCorruptError("snapshot CRC mismatch")
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptError(f"snapshot body unreadable: {exc}") from exc
    decoded = _decode_value(doc)
    if not isinstance(decoded, dict):
        raise SnapshotCorruptError("snapshot body is not a document")
    return decoded


def encode_snapshot(snapshot: Snapshot) -> bytes:
    return encode_blob({
        "version": snapshot.version,
        "fingerprint": snapshot.fingerprint,
        "t": snapshot.t,
        "step": snapshot.step,
        "kind": snapshot.kind,
        "payload": snapshot.payload,
    })


def decode_snapshot(data: bytes) -> Snapshot:
    doc = decode_blob(data)
    for key in ("version", "fingerprint", "t", "step", "kind", "payload"):
        if key not in doc:
            raise SnapshotCorruptError(f"snapshot document missing {key!r}")
    if doc["version"] != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"snapshot schema version {doc['version']} != supported "
            f"{SNAPSHOT_VERSION}"
        )
    if not isinstance(doc["payload"], dict):
        raise SnapshotCorruptError("snapshot payload is not a mapping")
    return Snapshot(
        version=int(doc["version"]),
        fingerprint=str(doc["fingerprint"]),
        t=float(doc["t"]),
        step=int(doc["step"]),
        kind=str(doc["kind"]),
        payload=doc["payload"],
    )


# ----------------------------------------------------------------------
# the codec
# ----------------------------------------------------------------------
class SnapshotCodec:
    """Capture/restore a :class:`~repro.core.hybrid.HybridScheduler`."""

    # -- fingerprinting -------------------------------------------------
    def fingerprint(self, scheduler: "HybridScheduler") -> str:
        """The plan fingerprint extended with the scheduler knobs that
        shape the trajectory; capsule-only models hash their discrete
        topology instead."""
        extra = {
            "snapshot.sync_interval": scheduler.sync_interval,
            "snapshot.event_restart": scheduler.event_restart,
            "snapshot.dense_events": scheduler.dense_events,
        }
        if scheduler.plan is not None:
            # param values are runtime state (restored from the payload),
            # so only the structural identity of the plan gates a restore
            return scheduler.plan.fingerprint(
                extra=extra, include_param_values=False,
            )
        rts = scheduler.model.rts
        digest = hashlib.sha256()
        digest.update(repr(sorted(extra.items())).encode())
        digest.update(scheduler.model.name.encode())
        for capsule in sorted(
            rts._capsules.values(), key=lambda c: c.instance_name
        ):
            digest.update(
                f"{capsule.instance_name}:{type(capsule).__name__}".encode()
            )
        return f"capsule-only:{digest.hexdigest()}"

    # -- capture --------------------------------------------------------
    def capture(self, scheduler: "HybridScheduler") -> Snapshot:
        """Extract a restorable snapshot at a major-step boundary."""
        if not scheduler._built:
            raise SnapshotError(
                "capture requires a built scheduler (inside a run)"
            )
        model = scheduler.model
        rts = model.rts
        busy = [c.name for c in rts.controllers if not c.idle]
        if busy:
            raise SnapshotError(
                "capture requires a quiescent discrete world; "
                f"controllers with pending messages: {busy} "
                "(snapshots are only valid at major-step boundaries)"
            )
        payload: Dict[str, Any] = {
            "scheduler": scheduler.snapshot_state(),
            "time": {"advancements": model.time.advancements},
            "rts": {
                "now": rts.now,
                "total_dispatched": rts.total_dispatched,
                "messages_to_dead": rts.messages_to_dead,
                "controllers": {
                    c.name: {
                        "dispatched": c.dispatched,
                        "enqueued": c.enqueued,
                        "stale_dropped": c.stale_dropped,
                    }
                    for c in rts.controllers
                },
            },
            "timing": rts.timing.snapshot_pending(),
            "machines": {
                capsule.instance_name: capsule.behaviour.snapshot_config()
                for capsule in sorted(
                    rts._capsules.values(), key=lambda c: c.instance_name
                )
                if capsule.behaviour is not None
            },
            "channels": {
                bridge.instance_name: bridge.to_streamer.snapshot_state()
                for bridge in model.bridges
            },
            "sports": {
                f"{leaf.path()}::{sport.name}": {
                    "outbound": list(sport.outbound),
                    "sent": sport.sent,
                    "received": sport.received,
                }
                for leaf, sport in model.all_sports()
            },
            "threads": {
                thread.name: {
                    "h": thread.h,
                    "minor_steps": thread.minor_steps,
                    "steps_taken": thread.binding.steps_taken,
                    "time_integrated": thread.binding.time_integrated,
                    "swaps": thread.binding.swaps,
                    "solver": thread.binding.solver.snapshot_state(),
                }
                for thread in model.threads
            },
            "leaves": self._capture_leaves(scheduler),
            "probes": {
                name: {
                    "times": probe.trajectory.times,
                    "states": probe.trajectory.states,
                }
                for name, probe in model.probes.items()
            },
        }
        return Snapshot(
            version=SNAPSHOT_VERSION,
            fingerprint=self.fingerprint(scheduler),
            t=model.time.raw,
            step=scheduler.major_steps,
            kind="hybrid",
            payload=payload,
        )

    @staticmethod
    def _capture_leaves(scheduler: "HybridScheduler") -> Dict[str, Any]:
        if scheduler.network is None:
            return {}
        out: Dict[str, Any] = {}
        for leaf in scheduler.network.order:
            reset = leaf._state_reset
            out[leaf.path()] = {
                "params": dict(leaf.params),
                "reset": None if reset is None else reset.copy(),
                "extra": leaf.extra_state(),
            }
        return out

    # -- byte round trip ------------------------------------------------
    def encode(self, snapshot: Snapshot) -> bytes:
        return encode_snapshot(snapshot)

    def decode(self, data: bytes) -> Snapshot:
        return decode_snapshot(data)

    # -- restore --------------------------------------------------------
    def restore(
        self, scheduler: "HybridScheduler", snapshot: Snapshot
    ) -> None:
        """Overlay ``snapshot`` onto a freshly built model.

        The target model must come from the same factory as the captured
        one: the plan fingerprint (plus scheduler knobs) is compared
        *before* anything is touched and a mismatch raises
        :class:`FingerprintMismatchError` without overlaying any state.

        The restore protocol erases start transients: ``build()`` runs
        the capsules' entry actions (which queue messages and may start
        timers), then every controller queue and the timer calendar are
        cleared and the snapshot state is overlaid — so the rebuilt
        world ends up exactly where the captured one was, and
        ``scheduler.run`` continues without re-running ``initialise``.
        """
        if snapshot.version != SNAPSHOT_VERSION:
            raise SnapshotVersionError(
                f"snapshot version {snapshot.version} != supported "
                f"{SNAPSHOT_VERSION}"
            )
        if snapshot.kind != "hybrid":
            raise SnapshotError(
                f"cannot restore a {snapshot.kind!r} snapshot onto a "
                "hybrid scheduler"
            )
        scheduler.build()
        expected = self.fingerprint(scheduler)
        if snapshot.fingerprint != expected:
            raise FingerprintMismatchError(
                "snapshot belongs to a different plan: snapshot "
                f"fingerprint {snapshot.fingerprint[:16]}... != target "
                f"{expected[:16]}...; nothing was restored"
            )
        payload = snapshot.payload
        model = scheduler.model
        rts = model.rts

        # erase start transients queued by build()/start()
        for controller in rts.controllers:
            controller.clear_queue()

        rts_state = payload.get("rts", {})
        rts.now = float(rts_state.get("now", 0.0))
        rts.total_dispatched = int(rts_state.get("total_dispatched", 0))
        rts.messages_to_dead = int(rts_state.get("messages_to_dead", 0))
        for name, counters in rts_state.get("controllers", {}).items():
            controller = next(
                (c for c in rts.controllers if c.name == name), None
            )
            if controller is None:
                raise SnapshotError(
                    f"snapshot references unknown controller {name!r}"
                )
            controller.dispatched = int(counters.get("dispatched", 0))
            controller.enqueued = int(counters.get("enqueued", 0))
            controller.stale_dropped = int(counters.get("stale_dropped", 0))

        capsules = {
            capsule.instance_name: capsule
            for capsule in rts._capsules.values()
        }

        def resolve_capsule(instance_name: str):
            try:
                return capsules[instance_name]
            except KeyError:
                raise SnapshotError(
                    "snapshot references unknown capsule "
                    f"{instance_name!r}"
                ) from None

        for instance_name, config in payload.get("machines", {}).items():
            capsule = resolve_capsule(instance_name)
            if capsule.behaviour is None:
                raise SnapshotError(
                    f"capsule {instance_name!r} has no state machine to "
                    "restore"
                )
            capsule.behaviour.restore_config(
                self._resolve_message_ports(config, capsule)
            )

        rts.timing.restore_pending(
            payload.get("timing", {"timers": []}), resolve_capsule,
        )

        bridges = {bridge.instance_name: bridge for bridge in model.bridges}
        for name, channel_state in payload.get("channels", {}).items():
            bridge = bridges.get(name)
            if bridge is None:
                raise SnapshotError(
                    f"snapshot references unknown bridge {name!r}"
                )
            channel_state = dict(channel_state)
            channel_state["items"] = [
                self._rebind_port(item, bridge)
                for item in channel_state.get("items", ())
            ]
            bridge.to_streamer.restore_state(channel_state)

        sports = {
            f"{leaf.path()}::{sport.name}": sport
            for leaf, sport in model.all_sports()
        }
        for name, sport_state in payload.get("sports", {}).items():
            sport = sports.get(name)
            if sport is None:
                raise SnapshotError(
                    f"snapshot references unknown SPort {name!r}"
                )
            sport.outbound[:] = list(sport_state.get("outbound", ()))
            sport.sent = int(sport_state.get("sent", 0))
            sport.received = int(sport_state.get("received", 0))

        threads = {thread.name: thread for thread in model.threads}
        for name, thread_state in payload.get("threads", {}).items():
            thread = threads.get(name)
            if thread is None:
                raise SnapshotError(
                    f"snapshot references unknown streamer thread {name!r}"
                )
            thread.h = float(thread_state.get("h", thread.h))
            thread.minor_steps = int(thread_state.get("minor_steps", 0))
            thread.binding.steps_taken = int(
                thread_state.get("steps_taken", 0)
            )
            thread.binding.time_integrated = float(
                thread_state.get("time_integrated", 0.0)
            )
            thread.binding.swaps = int(thread_state.get("swaps", 0))
            thread.binding.solver.restore_state(
                thread_state.get("solver", {})
            )

        if scheduler.network is not None:
            leaves = {
                leaf.path(): leaf for leaf in scheduler.network.order
            }
            for path, leaf_state in payload.get("leaves", {}).items():
                leaf = leaves.get(path)
                if leaf is None:
                    raise SnapshotError(
                        f"snapshot references unknown streamer {path!r}"
                    )
                leaf.params.clear()
                leaf.params.update(leaf_state.get("params", {}))
                reset = leaf_state.get("reset")
                leaf._state_reset = (
                    None if reset is None
                    else np.asarray(reset, dtype=float)
                )
                leaf.restore_extra_state(dict(leaf_state.get("extra", {})))

        for name, recorded in payload.get("probes", {}).items():
            probe = model.probes.get(name)
            if probe is None:
                raise SnapshotError(
                    f"snapshot references unknown probe {name!r}"
                )
            trajectory = Trajectory(labels=probe.trajectory.labels)
            states = np.asarray(recorded.get("states"))
            for t, row in zip(recorded.get("times", ()), states):
                trajectory.append(float(t), row)
            probe.trajectory = trajectory

        # last: clock, state vector, network re-evaluation, detector re-arm
        scheduler.restore_state(payload["scheduler"])
        model.time.advancements = int(
            payload.get("time", {}).get(
                "advancements", model.time.advancements,
            )
        )

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _resolve_message_ports(config: Dict[str, Any], capsule) -> Dict[str, Any]:
        out = dict(config)
        for key in ("deferred", "recalled"):
            out[key] = [
                SnapshotCodec._rebind_port(message, capsule)
                for message in out.get(key, ())
            ]
        return out

    @staticmethod
    def _rebind_port(item: Any, capsule) -> Any:
        """Resolve a decoded message's port *name* against ``capsule``."""
        if isinstance(item, Message) and isinstance(item.port, str):
            try:
                item.port = capsule.port(item.port)
            except Exception:
                item.port = None
        return item


def corrupt_bytes(data: bytes, offset: int) -> bytes:
    """Flip one byte of ``data`` (fault-injection helper; the CRC check
    in :func:`decode_blob` must catch the result)."""
    if not data:
        return data
    offset %= len(data)
    flipped = bytes([data[offset] ^ 0xFF])
    return data[:offset] + flipped + data[offset + 1:]
