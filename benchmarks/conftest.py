"""Shared benchmark helpers.

Every benchmark prints the table/series it reproduces (run with ``-s`` to
see them inline); the same summaries are appended to
``benchmarks/results.txt`` so EXPERIMENTS.md can cite a stable artefact.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS = pathlib.Path(__file__).resolve().parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS.write_text("")
    yield


@pytest.fixture
def report():
    """Print a block and append it to benchmarks/results.txt."""

    def emit(title: str, lines) -> None:
        block = [f"== {title} =="]
        block.extend(str(line) for line in lines)
        text = "\n".join(block)
        print("\n" + text)
        with RESULTS.open("a") as handle:
            handle.write(text + "\n\n")

    return emit


def pid_plant_diagram(blocks: int = 0):
    """The canonical closed loop used across C1/C2/S3, optionally padded
    with a chain of extra unity-gain blocks to scale model size."""
    from repro.dataflow import Diagram, FirstOrderLag, Gain, PID, Step, Sum

    d = Diagram(f"loop{blocks}")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=3.0, ki=1.5, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.4))
    d.connect("ref.out", "err.in1")
    d.connect("err.out", "pid.in")
    previous = "pid.out"
    for index in range(blocks):
        d.add(Gain(f"pad{index}", k=1.0))
        d.connect(previous, f"pad{index}.in")
        previous = f"pad{index}.out"
    d.connect(previous, "plant.in")
    d.connect("plant.out", "err.in2")
    return d
