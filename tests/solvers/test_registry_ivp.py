"""Solver registry and the integrate() driver."""

import numpy as np
import pytest

from repro.solvers import SolverError, available_solvers, integrate, make_solver
from repro.solvers.base import SolverBase
from repro.solvers.registry import register_solver


class TestRegistry:
    def test_all_solvers_listed(self):
        names = available_solvers()
        assert names == (
            "backward_euler", "euler", "heun", "rk4", "rk45", "trapezoidal"
        )

    def test_make_solver(self):
        solver = make_solver("rk4")
        assert solver.name == "rk4"

    def test_make_solver_with_kwargs(self):
        solver = make_solver("rk45", rtol=1e-3)
        assert solver.rtol == 1e-3

    def test_unknown_solver(self):
        with pytest.raises(SolverError, match="unknown solver"):
            make_solver("magic")

    def test_register_custom(self):
        class Custom(SolverBase):
            name = "custom_test_solver"

        register_solver("custom_test_solver", Custom)
        assert make_solver("custom_test_solver").name == "custom_test_solver"
        with pytest.raises(SolverError):
            register_solver("custom_test_solver", Custom)


class TestIntegrateDriver:
    def test_records_trajectory(self):
        result = integrate(
            lambda t, y: -y, [1.0], 0.0, 1.0, make_solver("euler"), h=0.25
        )
        assert len(result.trajectory) == 5  # t0 + 4 steps
        assert result.steps == 4

    def test_labels_passed_through(self):
        result = integrate(
            lambda t, y: -y, [1.0], 0.0, 0.5, make_solver("euler"),
            h=0.25, labels=["temp"],
        )
        assert result.trajectory.labels == ["temp"]

    def test_t1_before_t0_rejected(self):
        with pytest.raises(SolverError):
            integrate(lambda t, y: y, [1.0], 1.0, 0.0,
                      make_solver("euler"), h=0.1)

    def test_bad_step_rejected(self):
        with pytest.raises(SolverError):
            integrate(lambda t, y: y, [1.0], 0.0, 1.0,
                      make_solver("euler"), h=-0.1)

    def test_max_steps_guard(self):
        with pytest.raises(SolverError, match="exceeded"):
            integrate(lambda t, y: -y, [1.0], 0.0, 1.0,
                      make_solver("euler"), h=1e-6, max_steps=10)

    def test_scalar_y0_promoted(self):
        result = integrate(lambda t, y: -y, 1.0, 0.0, 0.1,
                           make_solver("euler"), h=0.1)
        assert result.y_final.shape == (1,)

    def test_zero_span_integration(self):
        result = integrate(lambda t, y: -y, [1.0], 0.0, 0.0,
                           make_solver("euler"), h=0.1)
        assert result.steps == 0
        assert result.y_final[0] == 1.0
