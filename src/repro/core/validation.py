"""Model well-formedness validation: the W-rules (compatibility shim).

DESIGN.md §5 extracts twelve well-formedness rules (W1..W12) from §2 of
the paper.  The rule implementations now live in the static diagnostics
engine (:mod:`repro.check.model_rules`, category ``"model"``) alongside
the deeper plan/state-machine/thread analyses; this module keeps the
original surface — ``validate_model`` returning :class:`Violation`
records, ``ValidationError`` in strict mode — as a thin wrapper over
:func:`repro.check.run_checks` so existing callers and tests are
untouched.

:class:`Violation` is now a :class:`~repro.check.diagnostics.Diagnostic`
subclass: same field order, same ``__str__`` rendering, plus the legacy
``rule`` alias for ``code``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.check.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import HybridModel


class Violation(Diagnostic):
    """One rule violation found during validation.

    A frozen record ``(rule, severity, subject, message)`` — the first
    field is named ``code`` on the base class; ``rule`` is the
    historical alias.
    """

    @property
    def rule(self) -> str:
        return self.code


class ValidationError(Exception):
    """Raised in strict mode when error-severity violations exist."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = violations
        lines = "\n".join(str(v) for v in violations)
        super().__init__(f"{len(violations)} validation error(s):\n{lines}")


def validate_model(model: "HybridModel", strict: bool = True) -> List[Violation]:
    """Run every whole-model W-rule check.  See module docstring."""
    from repro.check import CheckConfig, run_checks

    result = run_checks(model, config=CheckConfig(
        categories={"model"}, w12_compat=True,
    ))
    violations = [
        Violation(d.code, d.severity, d.subject, d.message)
        for d in result.diagnostics
    ]
    errors = [v for v in violations if v.severity == "error"]
    if strict and errors:
        raise ValidationError(errors)
    return violations
