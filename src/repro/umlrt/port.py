"""Capsule ports.

Ports are the only communication interface of a capsule.  An **end port**
terminates message traffic: signals arriving at it are queued on the owning
capsule's controller and eventually dispatched to the capsule's state
machine.  A **relay port** merely forwards traffic between the outside of a
capsule and one of its internal parts; it never touches the payload.

A port is typed by a :class:`~repro.umlrt.protocol.ProtocolRole`; sending a
signal the role does not declare raises :class:`PortError` at send time, and
wiring two roles whose signal sets do not match raises at connect time.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, List, Optional, Set

from repro.umlrt.protocol import ProtocolRole
from repro.umlrt.signal import Message, Priority

if TYPE_CHECKING:  # pragma: no cover
    from repro.umlrt.capsule import Capsule


class PortError(Exception):
    """Raised on illegal port usage (unknown signal, unwired send, ...)."""


class PortKind(enum.Enum):
    """How a port treats message traffic."""

    END = "end"      #: terminates traffic at the owning capsule
    RELAY = "relay"  #: forwards traffic between capsule boundary and a part


class Port:
    """One communication endpoint of a capsule instance.

    Parameters
    ----------
    name:
        Port name, unique within the owning capsule.
    role:
        The protocol role governing which signals may be sent/received.
    kind:
        End or relay behaviour.
    owner:
        The capsule instance the port belongs to (set by the capsule).
    """

    def __init__(
        self,
        name: str,
        role: ProtocolRole,
        kind: PortKind = PortKind.END,
        owner: Optional["Capsule"] = None,
        replication: int = 1,
    ) -> None:
        if replication < 1:
            raise PortError(
                f"port {name!r}: replication must be >= 1, "
                f"got {replication}"
            )
        self.name = name
        self.role = role
        self.kind = kind
        self.owner = owner
        #: UML-RT port multiplicity: an END port with replication N may
        #: be wired to N peers; send() broadcasts or targets one index
        self.replication = replication
        self.links: List["Port"] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def link(self, other: "Port") -> None:
        """Create a raw bidirectional link (used by Connector; not public)."""
        if other is self:
            raise PortError(f"cannot link port {self.qualified_name} to itself")
        if other in self.links:
            raise PortError(
                f"ports {self.qualified_name} and {other.qualified_name} "
                "are already linked"
            )
        max_links = (
            2 if self.kind is PortKind.RELAY else self.replication
        )
        if len(self.links) >= max_links:
            raise PortError(
                f"port {self.qualified_name} already fully wired "
                f"({len(self.links)} link(s))"
            )
        other_max = (
            2 if other.kind is PortKind.RELAY else other.replication
        )
        if len(other.links) >= other_max:
            raise PortError(
                f"port {other.qualified_name} already fully wired "
                f"({len(other.links)} link(s))"
            )
        self.links.append(other)
        other.links.append(self)

    def unlink(self, other: "Port") -> None:
        """Remove a previously created link (frame service destroy path)."""
        try:
            self.links.remove(other)
            other.links.remove(self)
        except ValueError:
            raise PortError(
                f"ports {self.qualified_name} and {other.qualified_name} "
                "are not linked"
            ) from None

    @property
    def wired(self) -> bool:
        return bool(self.links)

    @property
    def qualified_name(self) -> str:
        owner = self.owner.instance_name if self.owner is not None else "<unowned>"
        return f"{owner}.{self.name}"

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def resolve_endpoints(
        self, from_link: Optional["Port"] = None
    ) -> List["Port"]:
        """Walk the relay chain from this port to the far end port(s).

        Relay ports are transparent: traffic entering one side leaves the
        other.  The walk is a BFS that never revisits a port, so relay
        cycles terminate (and yield no endpoints).  ``from_link``
        restricts the walk to one wired peer (indexed send on a
        replicated port).
        """
        endpoints: List[Port] = []
        seen: Set[int] = {id(self)}
        frontier: List[Port] = (
            list(self.links) if from_link is None else [from_link]
        )
        while frontier:
            port = frontier.pop(0)
            if id(port) in seen:
                continue
            seen.add(id(port))
            if port.kind is PortKind.END:
                endpoints.append(port)
            else:
                frontier.extend(
                    nxt for nxt in port.links if id(nxt) not in seen
                )
        return endpoints

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        signal: str,
        data: Any = None,
        priority: Priority = Priority.GENERAL,
        index: Optional[int] = None,
    ) -> int:
        """Send ``signal`` out of this port.

        On a replicated port, ``index`` targets one wired peer (by link
        order); ``None`` broadcasts to every resolved end port.  Returns
        the number of end ports the message was delivered to (normally
        1).  Sending a signal the port's role does not declare, or
        sending from an unwired end port, raises :class:`PortError`.
        """
        if signal not in self.role.sends:
            raise PortError(
                f"port {self.qualified_name} (role {self.role.name}) cannot "
                f"send signal {signal!r}; allowed: {sorted(self.role.sends)}"
            )
        if self.owner is None or self.owner.runtime is None:
            raise PortError(
                f"port {self.qualified_name} is not attached to a running "
                "system"
            )
        if index is None:
            endpoints = self.resolve_endpoints()
        else:
            if not 0 <= index < len(self.links):
                raise PortError(
                    f"port {self.qualified_name}: link index {index} out "
                    f"of range (wired: {len(self.links)})"
                )
            endpoints = self.resolve_endpoints(self.links[index])
        if not endpoints:
            raise PortError(
                f"port {self.qualified_name} is not wired to any end port"
            )
        runtime = self.owner.runtime
        for endpoint in endpoints:
            message = Message(
                signal=signal,
                data=data,
                priority=priority,
                timestamp=runtime.now,
                port=endpoint,
            )
            runtime.deliver(endpoint, message)
        return len(endpoints)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Port({self.qualified_name}, role={self.role.name}, "
            f"kind={self.kind.value})"
        )
