"""SPorts: signal message ports of streamers (square notation).

SPorts are how streamers and capsules talk (rule W7): the capsule side is
an ordinary UML-RT port; the streamer side is an :class:`SPort` bound to a
protocol role.  The hybrid model bridges the two with a *boundary capsule*
(:class:`SPortBridge`) living on the capsule's controller plus a pair of
bounded channels crossing the thread boundary:

* capsule → streamer: the bridge receives the message under normal RTC
  dispatch and pushes it onto the inbound channel; the streamer's solver
  drains the channel at the next synchronisation point and feeds each
  message to :meth:`repro.core.streamer.Streamer.handle_signal`.
* streamer → capsule: the solver calls :meth:`SPort.send`; the message is
  queued on the outbound channel and the hybrid scheduler injects it into
  the discrete world at the next synchronisation point, timestamped with
  the continuous Time value.

This is exactly the paper's "communication mechanism of threads as a
channel between capsules and streamers".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from repro.core.channel import Channel, ChannelPolicy
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import ProtocolRole
from repro.umlrt.signal import Message, Priority
from repro.umlrt.statemachine import StateMachine

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.streamer import Streamer


class SPortError(Exception):
    """Raised on illegal SPort usage."""


class SPort:
    """A signal port on a streamer, bound to a protocol role (W3)."""

    def __init__(
        self,
        name: str,
        role: ProtocolRole,
        owner: Optional["Streamer"] = None,
    ) -> None:
        if role is None:
            raise SPortError(f"SPort {name!r} needs a protocol role (W3)")
        self.name = name
        self.role = role
        self.owner = owner
        self.bridge: Optional["SPortBridge"] = None
        #: messages awaiting injection into the discrete world
        self.outbound: List[Message] = []
        self.sent = 0
        self.received = 0

    @property
    def qualified_name(self) -> str:
        owner = self.owner.name if self.owner is not None else "<unowned>"
        return f"{owner}.{self.name}"

    @property
    def connected(self) -> bool:
        return self.bridge is not None

    # ------------------------------------------------------------------
    def send(
        self,
        signal: str,
        data: Any = None,
        priority: Priority = Priority.GENERAL,
    ) -> None:
        """Queue a signal for the capsule side (leaves at the next sync)."""
        if signal not in self.role.sends:
            raise SPortError(
                f"SPort {self.qualified_name} (role {self.role.name}) "
                f"cannot send {signal!r}; allowed: {sorted(self.role.sends)}"
            )
        if self.bridge is None:
            raise SPortError(
                f"SPort {self.qualified_name} is not connected to a capsule"
            )
        self.sent += 1
        self.outbound.append(
            Message(signal=signal, data=data, priority=priority)
        )

    def drain_inbound(self) -> List[Message]:
        """Messages from the capsule side since the last sync point."""
        if self.bridge is None:
            return []
        messages = self.bridge.to_streamer.drain()
        self.received += len(messages)
        return messages

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SPort({self.qualified_name}, role={self.role.name})"


class SPortBridge(Capsule):
    """Hidden boundary capsule pairing one SPort with one capsule port.

    The bridge owns an end port with the *same* role as the SPort — it is
    the streamer's representative inside the discrete world — so it wires
    to the user capsule's (conjugated) port with a plain connector.
    Every message it receives goes onto :attr:`to_streamer`; messages the
    streamer emits are sent out of the bridge's port by the hybrid
    scheduler calling :meth:`flush_outbound`.
    """

    def __init__(
        self,
        instance_name: str,
        sport: SPort,
        channel_capacity: int = 64,
        channel_policy: ChannelPolicy = ChannelPolicy.OVERWRITE,
    ) -> None:
        self._sport = sport  # needed by build_structure, set before super
        self._channel_capacity = channel_capacity
        self._channel_policy = channel_policy
        super().__init__(instance_name)
        self.to_streamer = Channel(
            f"{instance_name}.to_streamer",
            capacity=channel_capacity,
            policy=channel_policy,
        )
        sport.bridge = self

    def build_structure(self) -> None:
        self.create_port("boundary", self._sport.role)

    def build_behaviour(self) -> Optional[StateMachine]:
        return None  # message handling happens in on_message

    def on_message(self, message: Message) -> None:
        if message.is_timeout():
            return
        self.to_streamer.push(message)

    def flush_outbound(self) -> int:
        """Send the SPort's queued outbound messages out of the boundary
        port.  Called by the hybrid scheduler inside a discrete slice."""
        count = 0
        for message in self._sport.outbound:
            self.port("boundary").send(
                message.signal, message.data, message.priority
            )
            count += 1
        self._sport.outbound.clear()
        return count
