"""Message traces and schedulability analysis."""

import pytest

from tests.conftest import Echo, Pinger

from repro.analysis import (
    MessageTrace,
    Task,
    TaskSet,
    liu_layland_bound,
    response_time_analysis,
    taskset_from_model,
)
from repro.analysis.schedulability import (
    SchedulabilityError,
    taskset_schedulable,
    utilisation_test,
)
from repro.core.model import HybridModel
from repro.umlrt.runtime import RTSystem

from tests.conftest import ConstLeaf, IntegratorLeaf


class TestMessageTrace:
    def build(self, pings=3):
        rts = RTSystem("t")
        pinger = rts.add_top(Pinger("pinger", pings=pings))
        echo = rts.add_top(Echo("echo"))
        pinger.connect(pinger.port("p"), echo.port("p"))
        trace = MessageTrace(rts).attach()
        return rts, trace

    def test_records_all_dispatches(self):
        rts, trace = self.build(pings=3)
        rts.run()
        assert len(trace) == 6  # 3 pings + 3 pongs

    def test_filters(self):
        rts, trace = self.build()
        rts.run()
        assert len(trace.by_signal("ping")) == 3
        assert len(trace.by_capsule("echo")) == 3
        assert trace.counts_by_signal() == {"ping": 3, "pong": 3}

    def test_latency_stats_under_load(self):
        rts, trace = self.build(pings=5)
        rts.dispatch_cost = 0.1
        rts.run()
        stats = trace.latency_stats()
        assert stats["count"] == 10
        assert stats["max"] > 0.0  # queued behind earlier dispatches

    def test_zero_latency_without_cost(self):
        rts, trace = self.build()
        rts.run()
        assert trace.latency_stats()["max"] == 0.0

    def test_empty_stats(self):
        rts, trace = self.build()
        assert trace.latency_stats("nothing")["count"] == 0

    def test_attach_idempotent(self):
        rts, trace = self.build()
        trace.attach()
        rts.run()
        assert len(trace) == 6  # not double-counted


class TestTaskModel:
    def test_task_validation(self):
        with pytest.raises(SchedulabilityError):
            Task("t", wcet=0.0, period=1.0)
        with pytest.raises(SchedulabilityError):
            Task("t", wcet=1.0, period=0.0)
        with pytest.raises(SchedulabilityError):
            Task("t", wcet=2.0, period=3.0, deadline=1.0)

    def test_utilisation(self):
        task = Task("t", wcet=1.0, period=4.0)
        assert task.utilisation == 0.25

    def test_rate_monotonic_order(self):
        taskset = TaskSet()
        taskset.add(Task("slow", wcet=1.0, period=10.0))
        taskset.add(Task("fast", wcet=0.1, period=1.0))
        assert [t.name for t in taskset.rate_monotonic_order()] == \
            ["fast", "slow"]


class TestLiuLayland:
    def test_bound_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert liu_layland_bound(100) == pytest.approx(0.6964, abs=1e-3)

    def test_bad_n(self):
        with pytest.raises(SchedulabilityError):
            liu_layland_bound(0)

    def test_utilisation_test(self):
        taskset = TaskSet([
            Task("a", wcet=1.0, period=4.0),
            Task("b", wcet=1.0, period=8.0),
        ])
        result = utilisation_test(taskset)
        assert result.passes is True
        assert result.as_dict()["passes"] is True


class TestResponseTimeAnalysis:
    def test_classic_example(self):
        """Textbook example: three tasks, exact response times."""
        taskset = TaskSet([
            Task("t1", wcet=1.0, period=4.0),
            Task("t2", wcet=2.0, period=6.0),
            Task("t3", wcet=3.0, period=13.0),
        ])
        results = response_time_analysis(taskset)
        assert results["t1"].response_time == pytest.approx(1.0)
        assert results["t2"].response_time == pytest.approx(3.0)
        # t3: 3 + 2*1 + 1*2 = 7; ceil(7/4)=2, ceil(7/6)=2 -> 3+2+4=9;
        # ceil(9/4)=3, ceil(9/6)=2 -> 3+3+4=10; ceil(10/4)=3 -> 10 fixed
        assert results["t3"].response_time == pytest.approx(10.0)
        assert all(r.converged for r in results)
        assert taskset_schedulable(taskset)

    def test_unschedulable_detected(self):
        taskset = TaskSet([
            Task("hog", wcet=3.0, period=4.0),
            Task("victim", wcet=2.0, period=5.0),
        ])
        assert not taskset_schedulable(taskset)


class TestTasksetFromModel:
    def test_streamer_threads_become_tasks(self):
        model = HybridModel("m")
        fast = model.create_thread("fast", h=1e-3)
        model.add_streamer(ConstLeaf("c", 1.0), fast)
        model.add_streamer(IntegratorLeaf("i"), fast)
        model.run(until=0.1, sync_interval=0.01)
        taskset = taskset_from_model(model, sync_interval=0.01)
        names = [t.name for t in taskset.tasks]
        assert "streamer:fast" in names
        # the empty default thread contributes no task
        assert "streamer:streamers" not in names

    def test_measured_wcet_override(self):
        model = HybridModel("m")
        model.add_streamer(ConstLeaf("c", 1.0))
        model.run(until=0.05, sync_interval=0.01)
        taskset = taskset_from_model(
            model, sync_interval=0.01,
            streamer_wcet={"streamers": 0.004},
        )
        task = [t for t in taskset.tasks
                if t.name == "streamer:streamers"][0]
        assert task.wcet == 0.004
