"""Deterministic fault injection for resilience testing.

A :class:`FaultInjector` holds a seeded, reproducible *fault plan*: kill
the run at major step k, corrupt the continuous state so the solver
diverges, preempt a job at its deadline, or flip a byte in a checkpoint
file.  Faults ride the same passive ``on_major_step`` hook the
checkpoint manager uses, so an armed-but-never-fired injector changes
nothing about the run.

All runtime faults are :class:`InjectedFault` subclasses of
:class:`~repro.service.jobs.TransientJobError` — deliberately, so the
job engine's existing bounded-retry path is what exercises crash
recovery: the retried attempt finds the spool directory, restores the
latest valid checkpoint and resumes instead of cold-restarting.

Determinism: the only randomness is a private ``random.Random(seed)``;
two injectors with the same seed and the same plan calls fire the same
faults at the same steps, which is what lets tests assert a killed-and-
resumed run is bitwise identical to an uninterrupted one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional

from repro.resilience.codec import corrupt_bytes
from repro.service.jobs import TransientJobError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hybrid import HybridScheduler


class InjectedFault(TransientJobError):
    """Base class for injected runtime faults (retryable by design)."""


class InjectedCrash(InjectedFault):
    """A simulated worker crash mid-run."""


class InjectedDivergence(InjectedFault):
    """A solver blow-up provoked by corrupting the continuous state."""


class InjectedPreemption(InjectedFault):
    """A simulated deadline preemption: the worker slot was reclaimed."""


@dataclass
class PlannedFault:
    """One entry of a fault plan (fires at most once).

    ``attempt`` pins the fault to one job attempt (default: the first).
    This matters under *process* isolation, where the injector reaches
    each worker by pickling — the child's ``fired`` flag never travels
    back, so without the attempt pin a crash fault would re-fire on
    every retry and recovery could never complete.  ``None`` fires on
    any attempt (once per process)."""

    kind: str
    step: int
    magnitude: float = 0.0
    attempt: Optional[int] = 1
    fired: bool = False


@dataclass
class FaultRecord:
    """What actually fired, for assertions and telemetry."""

    kind: str
    step: int
    t: float


class FaultInjector:
    """A seeded plan of faults to inject into a scheduler run.

    Plan methods return ``self`` so plans chain::

        injector = FaultInjector(seed=7).crash_at_step(120)

    The injector object outlives job attempts (it is part of the spec),
    so every planned fault fires exactly once across retries — the
    resumed attempt runs past the crash step untouched.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.plan: List[PlannedFault] = []
        self.fired: List[FaultRecord] = []
        self._divergence_pending = False
        self._attempt = 1

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------
    def crash_at_step(
        self, step: int, attempt: Optional[int] = 1
    ) -> "FaultInjector":
        """Raise :class:`InjectedCrash` once major step ``step`` completes."""
        self.plan.append(PlannedFault("crash", int(step), attempt=attempt))
        return self

    def crash_between(
        self, lo: int, hi: int, attempt: Optional[int] = 1
    ) -> "FaultInjector":
        """Crash at a seeded-random major step in ``[lo, hi]``."""
        if hi < lo:
            raise ValueError(f"empty crash window [{lo}, {hi}]")
        return self.crash_at_step(
            self._rng.randint(int(lo), int(hi)), attempt=attempt,
        )

    def diverge_at_step(
        self, step: int, magnitude: float = 1e308,
        attempt: Optional[int] = 1,
    ) -> "FaultInjector":
        """Overwrite the continuous state with ``magnitude`` at step
        ``step`` so the next integration slice fails its finiteness
        check — the injected analogue of a genuinely diverging model.
        The default sits at the float ceiling so even a *stable* model
        overflows on the first RHS evaluation rather than damping the
        corruption back down."""
        self.plan.append(
            PlannedFault("diverge", int(step), magnitude, attempt=attempt)
        )
        return self

    def preempt_at_step(
        self, step: int, attempt: Optional[int] = 1
    ) -> "FaultInjector":
        """Raise :class:`InjectedPreemption` once step ``step`` completes."""
        self.plan.append(PlannedFault("preempt", int(step), attempt=attempt))
        return self

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(
        self, scheduler: "HybridScheduler", attempt: int = 1
    ) -> None:
        """Chain onto ``on_major_step``; arm *after* any checkpoint
        manager so a checkpoint due at the crash step is written before
        the fault fires.  ``attempt`` is the job attempt being armed —
        faults pinned to a different attempt stay dormant."""
        self._attempt = int(attempt)
        inner = scheduler.on_major_step

        def observe(t_now: float) -> None:
            if inner is not None:
                inner(t_now)
            self._check(scheduler, t_now)

        scheduler.on_major_step = observe

    def _check(self, scheduler: "HybridScheduler", t_now: float) -> None:
        for fault in self.plan:
            if fault.fired or scheduler.major_steps < fault.step:
                continue
            if fault.attempt is not None and fault.attempt != self._attempt:
                continue
            fault.fired = True
            self.fired.append(
                FaultRecord(fault.kind, scheduler.major_steps, t_now)
            )
            if fault.kind == "crash":
                raise InjectedCrash(
                    f"injected crash at major step {scheduler.major_steps} "
                    f"(t={t_now:g}, seed={self.seed})"
                )
            if fault.kind == "preempt":
                raise InjectedPreemption(
                    f"injected preemption at major step "
                    f"{scheduler.major_steps} (t={t_now:g})"
                )
            if fault.kind == "diverge":
                self._divergence_pending = True
                if scheduler.state is not None and scheduler.state.size:
                    scheduler.state[:] = fault.magnitude
                else:
                    # no continuous state to corrupt: fail directly
                    raise InjectedDivergence(
                        f"injected divergence at major step "
                        f"{scheduler.major_steps} (model has no "
                        "continuous state)"
                    )

    def consume_divergence(self) -> bool:
        """True once after a divergence fault fired — the job layer uses
        this to reclassify the resulting solver error as injected (and
        therefore retryable)."""
        pending, self._divergence_pending = self._divergence_pending, False
        return pending

    # ------------------------------------------------------------------
    # storage faults
    # ------------------------------------------------------------------
    def corrupt_checkpoint(self, spool_dir) -> Optional[Path]:
        """Flip one seeded byte of the newest checkpoint in ``spool_dir``.

        Returns the corrupted path, or None if the spool is empty.  The
        CRC in the snapshot container must catch the damage —
        :meth:`~repro.resilience.checkpoint.CheckpointManager.load_latest`
        then falls back to the previous checkpoint.
        """
        from repro.resilience.checkpoint import SUFFIX

        files = sorted(Path(spool_dir).glob(f"ckpt-*{SUFFIX}"))
        if not files:
            return None
        target = files[-1]
        data = target.read_bytes()
        # corrupt the body, not the header: exercises the CRC path rather
        # than the (also fatal, but less interesting) header parse
        header_end = data.find(b"\n") + 1
        offset = header_end + self._rng.randrange(
            max(1, len(data) - header_end)
        )
        target.write_bytes(corrupt_bytes(data, offset))
        self.fired.append(FaultRecord("corrupt", -1, float("nan")))
        return target
