"""JobEngine: bounded pool, deadlines, cancellation, retry, shedding.

The invariant under test throughout: whatever happens to a job —
timeout, cancellation, crash, retry exhaustion — its worker slot is
released and the pool keeps serving subsequent jobs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, List

import pytest

from repro.service.engine import JobEngine
from repro.service.jobs import (
    JobCancelledError,
    JobContext,
    JobError,
    JobSpec,
    JobState,
    JobTimeoutError,
    ServiceOverloaded,
    TransientJobError,
)
from repro.service.telemetry import STATE


@dataclass
class SpinJob(JobSpec):
    """Cooperatively spins for ``duration`` seconds, checkpointing."""

    duration: float = 0.2
    kind = "spin"

    def execute(self, ctx: JobContext) -> str:
        end = time.monotonic() + self.duration
        while time.monotonic() < end:
            ctx.checkpoint()
            time.sleep(0.005)
        return "spun"


@dataclass
class GateJob(JobSpec):
    """Blocks until its gate is set (for filling the pool on purpose)."""

    gate: Any = None
    started: Any = None
    kind = "gate"

    def execute(self, ctx: JobContext) -> str:
        if self.started is not None:
            self.started.set()
        while not self.gate.wait(0.005):
            ctx.checkpoint()
        return "released"


@dataclass
class FlakyJob(JobSpec):
    """Fails transiently ``failures`` times, then succeeds."""

    failures: int = 2
    attempts_seen: List[float] = field(default_factory=list)
    kind = "flaky"

    def execute(self, ctx: JobContext) -> str:
        self.attempts_seen.append(time.monotonic())
        if len(self.attempts_seen) <= self.failures:
            raise TransientJobError(
                f"flaky attempt {len(self.attempts_seen)}"
            )
        return "eventually"


@dataclass
class CrashJob(JobSpec):
    kind = "crash"

    def execute(self, ctx: JobContext) -> str:
        raise RuntimeError("hard failure")


class TestLifecycle:
    def test_done_job_returns_result(self):
        with JobEngine(workers=2) as engine:
            handle = engine.submit(SpinJob(duration=0.02))
            assert handle.result(timeout=10.0) == "spun"
            assert handle.state is JobState.DONE
            assert handle.wall_time is not None

    def test_failed_job_raises_original_error(self):
        with JobEngine(workers=1) as engine:
            handle = engine.submit(CrashJob())
            with pytest.raises(RuntimeError, match="hard failure"):
                handle.result(timeout=10.0)
            assert handle.state is JobState.FAILED

    def test_submit_after_shutdown_rejected(self):
        engine = JobEngine(workers=1)
        engine.shutdown()
        with pytest.raises(JobError):
            engine.submit(SpinJob())

    def test_state_events_on_channel(self):
        with JobEngine(workers=1) as engine:
            handle = engine.submit(SpinJob(duration=0.02))
            handle.result(timeout=10.0)
            states = [
                event.payload["state"] for event in handle.stream()
                if event.kind == STATE
            ]
            assert states == ["running", "done"]


class TestDeadlines:
    def test_deadline_exceeded_reports_timeout(self):
        with JobEngine(workers=1) as engine:
            handle = engine.submit(SpinJob(duration=5.0, deadline=0.05))
            with pytest.raises(JobTimeoutError):
                handle.result(timeout=10.0)
            assert handle.state is JobState.TIMEOUT

    def test_timeout_releases_worker_slot(self):
        """The acceptance check: a deadline-exceeded job must not wedge
        the (single-worker) pool."""
        with JobEngine(workers=1) as engine:
            doomed = engine.submit(SpinJob(duration=5.0, deadline=0.05))
            follow_up = engine.submit(SpinJob(duration=0.02))
            with pytest.raises(JobTimeoutError):
                doomed.result(timeout=10.0)
            assert follow_up.result(timeout=10.0) == "spun"

    def test_expired_in_queue_is_dead_on_arrival(self):
        """Queue wait counts against the deadline; an expired job times
        out without ever RUNNING."""
        gate = threading.Event()
        started = threading.Event()
        with JobEngine(workers=1) as engine:
            blocker = engine.submit(GateJob(gate=gate, started=started))
            assert started.wait(5.0)
            doomed = engine.submit(SpinJob(duration=0.01, deadline=0.05))
            time.sleep(0.1)  # let the deadline lapse while queued
            gate.set()
            assert blocker.result(timeout=10.0) == "released"
            with pytest.raises(JobTimeoutError):
                doomed.result(timeout=10.0)
            assert doomed.state is JobState.TIMEOUT
            assert doomed.attempts == 0  # never touched a worker


class TestCancellation:
    def test_cancel_running_job(self):
        with JobEngine(workers=1) as engine:
            handle = engine.submit(SpinJob(duration=5.0))
            time.sleep(0.05)  # let it start
            assert handle.cancel() is True
            with pytest.raises(JobCancelledError):
                handle.result(timeout=10.0)
            assert handle.state is JobState.CANCELLED

    def test_cancel_queued_job_never_runs(self):
        gate = threading.Event()
        started = threading.Event()
        with JobEngine(workers=1) as engine:
            blocker = engine.submit(GateJob(gate=gate, started=started))
            assert started.wait(5.0)
            queued = engine.submit(SpinJob(duration=5.0))
            assert queued.cancel() is True
            gate.set()
            blocker.result(timeout=10.0)
            with pytest.raises(JobCancelledError):
                queued.result(timeout=10.0)
            assert queued.attempts == 0

    def test_cancelled_job_releases_worker_slot(self):
        with JobEngine(workers=1) as engine:
            doomed = engine.submit(SpinJob(duration=5.0))
            time.sleep(0.05)
            doomed.cancel()
            follow_up = engine.submit(SpinJob(duration=0.02))
            assert follow_up.result(timeout=10.0) == "spun"

    def test_cancel_after_completion_returns_false(self):
        with JobEngine(workers=1) as engine:
            handle = engine.submit(SpinJob(duration=0.02))
            handle.result(timeout=10.0)
            assert handle.cancel() is False


class TestRetries:
    def test_transient_failure_retried_until_success(self):
        spec = FlakyJob(failures=2, retries=3, backoff=0.01)
        with JobEngine(workers=1) as engine:
            handle = engine.submit(spec)
            assert handle.result(timeout=10.0) == "eventually"
            assert len(spec.attempts_seen) == 3
            assert handle.attempts == 3

    def test_retry_budget_exhaustion_fails(self):
        spec = FlakyJob(failures=5, retries=1, backoff=0.01)
        with JobEngine(workers=1) as engine:
            handle = engine.submit(spec)
            with pytest.raises(TransientJobError):
                handle.result(timeout=10.0)
            assert len(spec.attempts_seen) == 2

    def test_backoff_grows_between_attempts(self):
        spec = FlakyJob(failures=2, retries=2, backoff=0.05)
        with JobEngine(workers=1) as engine:
            engine.submit(spec).result(timeout=10.0)
        gap1 = spec.attempts_seen[1] - spec.attempts_seen[0]
        gap2 = spec.attempts_seen[2] - spec.attempts_seen[1]
        assert gap1 >= 0.04
        assert gap2 >= 1.5 * gap1


class TestShedding:
    def test_overload_sheds_with_service_overloaded(self):
        gate = threading.Event()
        started = threading.Event()
        engine = JobEngine(workers=1, queue_limit=1)
        try:
            blocker = engine.submit(GateJob(gate=gate, started=started))
            assert started.wait(5.0)
            queued = engine.submit(SpinJob(duration=0.01))
            with pytest.raises(ServiceOverloaded):
                engine.submit(SpinJob(duration=0.01))
            gate.set()
            assert blocker.result(timeout=10.0) == "released"
            assert queued.result(timeout=10.0) == "spun"
        finally:
            engine.shutdown()

    def test_shed_handle_is_terminal(self):
        gate = threading.Event()
        started = threading.Event()
        engine = JobEngine(workers=1, queue_limit=1)
        try:
            engine.submit(GateJob(gate=gate, started=started))
            assert started.wait(5.0)
            engine.submit(SpinJob())
            shed = None
            try:
                engine.submit(SpinJob())
            except ServiceOverloaded:
                shed = True
            assert shed
            assert engine.metrics.counter("jobs.rejected").value == 1
        finally:
            gate.set()
            engine.shutdown()


class TestMetrics:
    def test_terminal_state_counters(self):
        with JobEngine(workers=2) as engine:
            done = engine.submit(SpinJob(duration=0.02))
            done.result(timeout=10.0)
            failed = engine.submit(CrashJob())
            with pytest.raises(RuntimeError):
                failed.result(timeout=10.0)
            counters = engine.metrics.snapshot()["counters"]
            assert counters["jobs.submitted"] == 2
            assert counters["jobs.done"] == 1
            assert counters["jobs.failed"] == 1

    def test_wall_time_histogram_observed(self):
        with JobEngine(workers=1) as engine:
            engine.submit(SpinJob(duration=0.02)).result(timeout=10.0)
            hist = engine.metrics.snapshot()["histograms"]["job.wall_time"]
            assert hist["count"] == 1
            assert hist["p50"] > 0.0

    def test_drain_waits_for_queue(self):
        with JobEngine(workers=2) as engine:
            handles = [
                engine.submit(SpinJob(duration=0.02)) for __ in range(6)
            ]
            assert engine.drain(timeout=10.0)
            assert all(h.state is JobState.DONE for h in handles)
