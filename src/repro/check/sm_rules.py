"""State-machine analyses over :mod:`repro.umlrt.statemachine`.

Static counterparts of defects that otherwise surface only when a
capsule runs (or never surface, silently dropping messages):

* **SM001** — unreachable states (and machines with no initial
  transition at all).
* **SM002** — nondeterministic triggers: two transitions of one state
  that can match the same message.  Dispatch is first-match-wins, so an
  unguarded earlier transition *provably* shadows a later one (error,
  fixable); two guarded transitions merely *may* overlap (warning).
  A guarded transition followed by an unguarded fallback is the
  intentional if/else idiom and is not reported.
* **SM003** — triggers referencing ports the owning capsule does not
  have, or signals the port's protocol role cannot receive.
* **SM004** — a state entry arms a timer (``inform_in``/
  ``inform_every``) but the exit never cancels one: leaving the state
  leaks a pending timeout into whatever state comes next.
* **SM005** — choice points whose branches are all guarded: if no guard
  is enabled at runtime, :class:`~repro.umlrt.statemachine.
  StateMachineError` is raised mid-transition.

Reachability walks exactly what the dispatcher can do: the initial
configuration (through choice points, drilling into composite initial
targets) plus, from any reachable state, every transition target.
History re-entry can only revisit states that were entered before, so
it never extends the reachable set.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.umlrt.statemachine import State, StateMachine, Transition

from repro.check.context import CheckContext
from repro.check.diagnostics import FixIt
from repro.check.registry import DEFAULT_REGISTRY as REG

rule = REG.rule


def _resolve_targets(sm: StateMachine, name: str, out: Set[str]) -> None:
    """Concrete state paths a transition target can land on."""
    seen: Set[str] = set()
    stack = [name]
    while stack:
        target = stack.pop()
        if target in seen:
            continue
        seen.add(target)
        if target in sm.choice_points:
            for __, branch_target, __action in sm.choice_points[
                target
            ].branches:
                stack.append(branch_target)
        elif target in sm._states:
            out.add(target)


def _reachable_states(sm: StateMachine) -> Set[str]:
    reach: Set[str] = set()
    work: List[State] = []

    def enter(path: str) -> None:
        stack = [path]
        while stack:
            current = stack.pop()
            state = sm._states.get(current)
            if state is None or state.path() in reach:
                continue
            reach.add(state.path())
            work.append(state)
            for ancestor in state.ancestors():
                if ancestor.path() not in reach:
                    reach.add(ancestor.path())
                    work.append(ancestor)
            if state.is_composite and state.initial_target is not None:
                stack.append(state.initial_target)

    initial: Set[str] = set()
    if sm.root.initial_target is not None:
        _resolve_targets(sm, sm.root.initial_target, initial)
    for path in initial:
        enter(path)
    while work:
        state = work.pop()
        for transition in state.transitions:
            if transition.internal or transition.target is None:
                continue
            targets: Set[str] = set()
            _resolve_targets(sm, transition.target, targets)
            for path in targets:
                enter(path)
    return reach


def _remove_state_fixit(sm: StateMachine, path: str) -> FixIt:
    def remove() -> None:
        state = sm._states.pop(path, None)
        if state is None:
            return
        prefix = path + "."
        for sub_path in [p for p in sm._states if p.startswith(prefix)]:
            sm._states.pop(sub_path, None)
        if state.parent is not None:
            state.parent.substates.pop(state.name, None)

    return FixIt(f"remove unreachable state {path!r}", remove)


@rule("SM001", "unreachable state", "sm", "warning",
      "UML-RT RTC semantics: a state no transition chain can enter is "
      "dead model surface")
def check_unreachable_states(ctx: CheckContext) -> None:
    for prefix, sm, __ in ctx.machines:
        if not sm._states:
            continue
        if sm.root.initial_target is None:
            ctx.emit(
                prefix,
                f"machine {sm.name!r} has no initial transition; "
                "start() will fail and every state is unreachable",
                severity="error",
                obj=sm,
            )
            continue
        reachable = _reachable_states(sm)
        for path in sm.all_states():
            if path not in reachable:
                ctx.emit(
                    f"{prefix}.{path}",
                    "state is unreachable from the initial "
                    "configuration",
                    obj=sm,
                    fixit=_remove_state_fixit(sm, path),
                )


def _triggers_overlap(a: Transition, b: Transition) -> Optional[str]:
    """A signal both transitions can match on the same port, if any."""
    for port_a, signal_a in a.triggers:
        for port_b, signal_b in b.triggers:
            if signal_a != signal_b:
                continue
            if port_a is None or port_b is None or port_a == port_b:
                return signal_a
    return None


@rule("SM002", "nondeterministic triggers", "sm", "error",
      "UML-RT RTC: dispatch fires the first matching transition; "
      "overlapping triggers make declaration order load-bearing")
def check_overlapping_triggers(ctx: CheckContext) -> None:
    for prefix, sm, __ in ctx.machines:
        for path in sm.all_states():
            state = sm._states[path]
            transitions = state.transitions
            for i, earlier in enumerate(transitions):
                for later in transitions[i + 1:]:
                    signal = _triggers_overlap(earlier, later)
                    if signal is None:
                        continue
                    subject = f"{prefix}.{path}"
                    definite = earlier.guard is None or (
                        earlier.guard is later.guard
                    )
                    if definite:
                        def remove(
                            state: State = state,
                            later: Transition = later,
                        ) -> None:
                            if later in state.transitions:
                                state.transitions.remove(later)

                        ctx.emit(
                            subject,
                            f"transition to {later.target!r} on trigger "
                            f"{signal!r} is shadowed by an earlier "
                            f"transition to {earlier.target!r} that "
                            "always matches; it can never fire",
                            obj=sm,
                            fixit=FixIt(
                                "remove the shadowed transition to "
                                f"{later.target!r}",
                                remove,
                            ),
                            details={
                                "signal": signal,
                                "shadowed_target": later.target,
                                "winning_target": earlier.target,
                            },
                        )
                    elif later.guard is not None:
                        ctx.emit(
                            subject,
                            f"transitions to {earlier.target!r} and "
                            f"{later.target!r} both trigger on "
                            f"{signal!r} with guards; if both guards "
                            "hold, declaration order silently decides",
                            severity="warning",
                            obj=sm,
                            details={
                                "signal": signal,
                                "targets": [
                                    earlier.target, later.target,
                                ],
                            },
                        )
                    # guarded earlier + unguarded later is the if/else
                    # fallback idiom: deterministic, not reported


@rule("SM003", "undefined trigger signal", "sm", "error",
      "paper §1/UML-RT: protocols type capsule connectors; a trigger "
      "naming a signal the port cannot receive never fires")
def check_undefined_signals(ctx: CheckContext) -> None:
    for prefix, sm, capsule in ctx.machines:
        if capsule is None:
            continue  # a bare machine has no port table to check against
        receivable: Set[str] = set()
        for port in capsule.ports.values():
            receivable.update(port.role.receives)
        for path in sm.all_states():
            for transition in sm._states[path].transitions:
                for port_name, signal in transition.triggers:
                    subject = f"{prefix}.{path}"
                    if port_name is not None:
                        port = capsule.ports.get(port_name)
                        if port is None:
                            ctx.emit(
                                subject,
                                f"trigger ({port_name!r}, {signal!r}) "
                                "references a port the capsule does "
                                "not have",
                                obj=sm,
                                details={
                                    "port": port_name, "signal": signal,
                                },
                            )
                        elif signal not in port.role.receives:
                            ctx.emit(
                                subject,
                                f"signal {signal!r} is not receivable "
                                f"on port {port_name!r} (protocol role "
                                f"{port.role.name} receives "
                                f"{sorted(port.role.receives)})",
                                obj=sm,
                                details={
                                    "port": port_name, "signal": signal,
                                },
                            )
                    elif signal not in receivable:
                        ctx.emit(
                            subject,
                            f"signal {signal!r} is not receivable on "
                            "any port of the capsule",
                            obj=sm,
                            details={"signal": signal},
                        )


def _code_names(func) -> Tuple[str, ...]:
    code = getattr(func, "__code__", None)
    return tuple(code.co_names) if code is not None else ()


@rule("SM004", "timer armed but never cancelled", "sm", "warning",
      "timing service discipline: a state that arms a timer on entry "
      "must cancel it on exit, or the timeout leaks into the next "
      "state")
def check_timer_leaks(ctx: CheckContext) -> None:
    for prefix, sm, __ in ctx.machines:
        for path in sm.all_states():
            state = sm._states[path]
            if state.entry is None:
                continue
            entry_names = _code_names(state.entry)
            arms = (
                "inform_in" in entry_names
                or "inform_every" in entry_names
            )
            if not arms:
                continue
            cancels = (
                state.exit is not None
                and "cancel" in _code_names(state.exit)
            )
            if not cancels:
                ctx.emit(
                    f"{prefix}.{path}",
                    "entry action arms a timer (inform_in/inform_every) "
                    "but the exit action never cancels one; leaving the "
                    "state leaks a pending timeout",
                    obj=sm,
                )


@rule("SM005", "choice point without else", "sm", "warning",
      "RTC semantics: a choice point with every branch guarded raises "
      "StateMachineError mid-transition when no guard is enabled")
def check_choice_else(ctx: CheckContext) -> None:
    for prefix, sm, __ in ctx.machines:
        for name, choice in sm.choice_points.items():
            if not choice.branches:
                continue
            if any(guard is None for guard, __t, __a in choice.branches):
                continue
            ctx.emit(
                f"{prefix}.{name}",
                "every branch of the choice point is guarded; add an "
                "else branch or the machine raises at runtime when no "
                "guard is enabled",
                obj=sm,
            )
