"""Resilience layer: checkpointing, crash-safe resume, fault injection.

Long batch sweeps and hardware-in-the-loop soak runs die for boring
reasons — preempted workers, full disks, flaky nodes — and a cold
restart throws away hours of integration.  This package makes in-flight
simulation state a first-class, durable artefact:

* :mod:`~repro.resilience.codec` — versioned, schema-checked snapshots
  of a running hybrid simulation, assembled from explicit per-subsystem
  extraction hooks (never blind pickling) and keyed to the execution
  plan's content fingerprint;
* :mod:`~repro.resilience.checkpoint` — periodic atomic checkpoints
  into a bounded spool directory, with CRC-verified recovery;
* :mod:`~repro.resilience.faults` — seeded, reproducible fault plans
  (crash, divergence, preemption, checkpoint corruption) that drive the
  job engine's retry path through real restore-and-resume cycles.

The headline guarantee, proven by ``tests/resilience``: a fixed-step run
killed mid-flight and resumed from its latest checkpoint is *bitwise
identical* to one that never crashed.
"""

from repro.resilience.checkpoint import (
    SUFFIX as CHECKPOINT_SUFFIX,
    CheckpointError,
    CheckpointManager,
)
from repro.resilience.codec import (
    SNAPSHOT_VERSION,
    FingerprintMismatchError,
    Snapshot,
    SnapshotCodec,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    corrupt_bytes,
    decode_blob,
    decode_snapshot,
    encode_blob,
    encode_snapshot,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultRecord,
    InjectedCrash,
    InjectedDivergence,
    InjectedFault,
    InjectedPreemption,
    PlannedFault,
)

__all__ = [
    "CHECKPOINT_SUFFIX",
    "CheckpointError",
    "CheckpointManager",
    "FaultInjector",
    "FaultRecord",
    "FingerprintMismatchError",
    "InjectedCrash",
    "InjectedDivergence",
    "InjectedFault",
    "InjectedPreemption",
    "PlannedFault",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotCodec",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotVersionError",
    "corrupt_bytes",
    "decode_blob",
    "decode_snapshot",
    "encode_blob",
    "encode_snapshot",
]
