"""XMI-flavoured XML serialisation of metamodel packages.

Good enough for round-tripping the models this library builds (Figure 1,
generated documentation); not a full OMG XMI implementation — see
DESIGN.md §7.  The element vocabulary follows XMI conventions
(``uml:Class``, ``ownedAttribute``, ``generalization`` ...) so the output
is recognisable to UML tooling and diffs cleanly.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from repro.metamodel.elements import (
    Association,
    AssociationEnd,
    Attribute,
    Classifier,
    Multiplicity,
    Operation,
    Package,
)

_NS = "http://schema.omg.org/spec/XMI/2.1-flavoured"
_NS_UML = "http://schema.omg.org/spec/UML/2.1-flavoured"


class XMIError(Exception):
    """Raised on unparseable XMI documents."""


def to_xmi(package: Package) -> str:
    """Serialise a package to an XMI-flavoured XML string."""
    root = ET.Element("xmi:XMI", {
        "xmlns:xmi": _NS,
        "xmlns:uml": _NS_UML,
        "xmi:version": "2.1",
    })
    pkg = ET.SubElement(
        root, "uml:Package", {"name": package.name}
    )
    for classifier in package.classifiers.values():
        elem = ET.SubElement(pkg, "packagedElement", {
            "xmi:type": "uml:Class",
            "name": classifier.name,
            "isAbstract": str(classifier.abstract).lower(),
        })
        for stereotype in classifier.stereotypes:
            ET.SubElement(elem, "appliedStereotype", {"name": stereotype})
        for attribute in classifier.attributes:
            ET.SubElement(elem, "ownedAttribute", {
                "name": attribute.name,
                "type": attribute.type_name,
                "visibility": attribute.visibility,
                "multiplicity": str(attribute.multiplicity),
            })
        for operation in classifier.operations:
            ET.SubElement(elem, "ownedOperation", {
                "name": operation.name,
                "visibility": operation.visibility,
                "parameters": ",".join(operation.parameters),
                "returnType": operation.return_type,
                "isAbstract": str(operation.abstract).lower(),
            })
    for association in package.associations:
        elem = ET.SubElement(pkg, "packagedElement", {
            "xmi:type": "uml:Association",
            "name": association.name,
        })
        for end in (association.end1, association.end2):
            ET.SubElement(elem, "ownedEnd", {
                "type": end.classifier,
                "role": end.role,
                "multiplicity": str(end.multiplicity),
                "navigable": str(end.navigable).lower(),
                "aggregation": end.aggregation,
            })
    for generalization in package.generalizations:
        ET.SubElement(pkg, "generalization", {
            "child": generalization.child,
            "parent": generalization.parent,
        })
    return ET.tostring(root, encoding="unicode")


def from_xmi(text: str) -> Package:
    """Parse a document produced by :func:`to_xmi` back into a Package."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMIError(f"malformed XMI: {exc}") from exc
    pkg_elem = None
    for child in root:
        if child.tag.endswith("Package"):
            pkg_elem = child
            break
    if pkg_elem is None:
        raise XMIError("no uml:Package element found")
    package = Package(pkg_elem.get("name", "package"))
    pending_associations = []
    for elem in pkg_elem:
        if elem.tag == "packagedElement":
            xmi_type = (
                elem.get(f"{{{_NS}}}type") or elem.get("xmi:type") or ""
            )
            if xmi_type.endswith("Class"):
                classifier = Classifier(
                    elem.get("name", ""),
                    abstract=elem.get("isAbstract") == "true",
                )
                for child in elem:
                    if child.tag == "appliedStereotype":
                        classifier.stereotypes.append(child.get("name", ""))
                    elif child.tag == "ownedAttribute":
                        classifier.add_attribute(Attribute(
                            child.get("name", ""),
                            child.get("type", ""),
                            child.get("visibility", "-"),
                            Multiplicity.parse(
                                child.get("multiplicity", "1")
                            ),
                        ))
                    elif child.tag == "ownedOperation":
                        params = child.get("parameters", "")
                        classifier.add_operation(Operation(
                            child.get("name", ""),
                            child.get("visibility", "+"),
                            tuple(p for p in params.split(",") if p),
                            child.get("returnType", ""),
                            child.get("isAbstract") == "true",
                        ))
                package.add_class(classifier)
            elif xmi_type.endswith("Association"):
                ends = []
                for child in elem:
                    if child.tag == "ownedEnd":
                        ends.append(AssociationEnd(
                            child.get("type", ""),
                            child.get("role", ""),
                            Multiplicity.parse(
                                child.get("multiplicity", "1")
                            ),
                            child.get("navigable") != "false",
                            child.get("aggregation", "none"),
                        ))
                if len(ends) != 2:
                    raise XMIError(
                        f"association {elem.get('name')!r} needs 2 ends"
                    )
                pending_associations.append(
                    Association(elem.get("name", ""), ends[0], ends[1])
                )
        elif elem.tag == "generalization":
            pending_associations.append(
                ("gen", elem.get("child", ""), elem.get("parent", ""))
            )
    for item in pending_associations:
        if isinstance(item, Association):
            package.add_association(item)
        else:
            __, child, parent = item
            package.add_generalization(child, parent)
    return package
