"""Experiment S5 — the simulation service layer.

Two headline measurements for the service subsystem:

1. **Cache-hit vs cold-compile throughput** — the same codegen request
   served repeatedly.  Cold clears the plan cache and uses a fresh spec
   for every request, so each one pays diagram build + flatten + plan +
   fingerprint + full source generation; warm resubmits the same spec,
   which goes memoised-key -> cache hit -> artefact.  The acceptance
   bar is >= 5x request throughput warm over cold.
2. **Concurrent vs sequential submission** — 16 jobs (batch sweeps plus
   single hybrid runs) pushed through a 4-worker
   :class:`~repro.service.SimulationService` at once, with every result
   asserted identical to a direct :class:`BatchSimulator` /
   :class:`HybridModel` run of the same request.

Timings use plain ``perf_counter`` (wall clock is the quantity of
interest — the jobs run on worker threads, so a per-call benchmark
fixture would measure only submission overhead).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import pid_plant_diagram
from repro.core.batch import BatchSimulator
from repro.core.model import HybridModel
from repro.service import (
    BatchJob, CodegenJob, SimulationService, SingleRunJob,
)

N = 50
T_END = 0.2
H = 1e-3
RECORDS = ["plant.out"]
BIG_BLOCKS = 192  # compile cost must be visible against run cost


def _sweeps(lo=0.5, hi=6.0, n=N):
    return {"pid.kp": np.linspace(lo, hi, n)}


def _batch_job(lo=0.5, hi=6.0):
    return BatchJob(
        diagram_factory=lambda: pid_plant_diagram(0),
        n=N, t_end=T_END, solver="rk4", h=H,
        records=RECORDS, sweeps=_sweeps(lo, hi),
    )


def _codegen_job():
    return CodegenJob(
        diagram_factory=lambda: pid_plant_diagram(BIG_BLOCKS),
        lang="python", records=RECORDS,
    )


def _pid_model():
    diagram = pid_plant_diagram(0)
    diagram.finalise()
    model = HybridModel("pid")
    model.default_thread.h = H
    model.add_streamer(diagram)
    model.add_probe("y", diagram.port_at("plant.out"))
    return model


def test_s5_cache_hit_vs_cold_compile(report, bench_json):
    """Warm-cache request throughput must be >= 5x cold-compile."""
    requests = 8
    with SimulationService(workers=1, cache_capacity=8) as svc:
        # cold: fresh spec + cleared cache -> full compile per request
        start = time.perf_counter()
        for __ in range(requests):
            svc.cache.clear()
            svc.submit(_codegen_job()).result(timeout=120.0)
        cold_wall = time.perf_counter() - start

        # warm: one spec resubmitted; prime it once, then every request
        # rides the memoised key straight to the cached artefact
        spec = _codegen_job()
        svc.submit(spec).result(timeout=120.0)
        start = time.perf_counter()
        for __ in range(requests):
            svc.submit(spec).result(timeout=120.0)
        warm_wall = time.perf_counter() - start

        stats = svc.cache.stats()

    assert stats["hits"] >= requests
    speedup = cold_wall / warm_wall
    report(f"S5: warm-cache vs cold-compile ({requests} codegen "
           f"requests, {BIG_BLOCKS + 4}-block diagram)", [
        f"cold (compile per request): {cold_wall * 1e3:8.1f} ms "
        f"({cold_wall / requests * 1e3:.1f} ms/request)",
        f"warm (cached artefact)    : {warm_wall * 1e3:8.1f} ms "
        f"({warm_wall / requests * 1e3:.1f} ms/request)",
        f"throughput ratio          : {speedup:8.1f}x",
        f"cache: {stats}",
    ])
    bench_json("s5", {
        "requests": requests,
        "cold_wall_ms": cold_wall * 1e3,
        "warm_wall_ms": warm_wall * 1e3,
        "warm_speedup": speedup,
        "cache_hits": stats["hits"],
        "cache_compiles": stats["compiles"],
    })
    assert speedup >= 5.0, (
        f"warm cache only {speedup:.1f}x faster than cold compile; "
        "acceptance bar is 5x"
    )


def test_s5_warm_batch_vs_cold_compile(report, bench_json):
    """The acceptance bar verbatim: warm-cache *batch* jobs must run at
    >= 5x the throughput of per-request cold compiles.

    The diagram is big (compile cost visible) and the simulated span is
    short (a dispatcher's admission probe, not a production run), so a
    request is dominated by what the cache can actually save: build +
    flatten + plan + fingerprint + lower + render + exec.  The warm side
    still pays the full vectorised run every time.
    """
    requests = 8
    t_end = 0.002  # 2 RK4 steps: the run is the part caching can't save
    n = 64

    def _big_batch_job():
        return BatchJob(
            diagram_factory=lambda: pid_plant_diagram(BIG_BLOCKS),
            n=n, t_end=t_end, solver="rk4", h=H,
            records=RECORDS, sweeps=_sweeps(n=n),
        )

    with SimulationService(workers=1, cache_capacity=8) as svc:
        start = time.perf_counter()
        for __ in range(requests):
            svc.cache.clear()
            svc.submit(_big_batch_job()).result(timeout=120.0)
        cold_wall = time.perf_counter() - start

        spec = _big_batch_job()
        reference = svc.submit(spec).result(timeout=120.0)
        start = time.perf_counter()
        for __ in range(requests):
            warm = svc.submit(spec).result(timeout=120.0)
        warm_wall = time.perf_counter() - start

    assert np.array_equal(
        warm.series["plant.out"], reference.series["plant.out"]
    )
    speedup = cold_wall / warm_wall
    report(f"S5: warm-cache batch jobs vs cold compiles ({requests} "
           f"requests, {BIG_BLOCKS + 4}-block diagram, n={n})", [
        f"cold (compile per request): {cold_wall * 1e3:8.1f} ms "
        f"({cold_wall / requests * 1e3:.1f} ms/request)",
        f"warm (cached BatchProgram): {warm_wall * 1e3:8.1f} ms "
        f"({warm_wall / requests * 1e3:.1f} ms/request)",
        f"throughput ratio          : {speedup:8.1f}x",
    ])
    bench_json("s5", {
        "batch_requests": requests,
        "batch_cold_wall_ms": cold_wall * 1e3,
        "batch_warm_wall_ms": warm_wall * 1e3,
        "warm_batch_speedup": speedup,
    })
    assert speedup >= 5.0, (
        f"warm-cache batch jobs only {speedup:.1f}x faster than cold "
        "compiles; acceptance bar is 5x"
    )


def test_s5_concurrent_vs_sequential(report, bench_json):
    """16 concurrent jobs: identical results, service-level throughput."""
    batch_jobs = 12
    single_jobs = 4
    spans = [(0.5 + i * 0.1, 6.0 + i * 0.1) for i in range(batch_jobs)]

    # direct reference runs (sequential, no service)
    start = time.perf_counter()
    direct_batch = [
        BatchSimulator(
            pid_plant_diagram(0), N, solver="rk4", h=H,
            records=RECORDS, sweeps=_sweeps(lo, hi),
        ).run(T_END)
        for lo, hi in spans
    ]
    direct_single = []
    for __ in range(single_jobs):
        model = _pid_model()
        model.run(T_END, sync_interval=0.01)
        direct_single.append(model.probe("y"))
    sequential_wall = time.perf_counter() - start

    with SimulationService(workers=4, queue_limit=64) as svc:
        start = time.perf_counter()
        handles = [svc.submit(_batch_job(lo, hi)) for lo, hi in spans]
        handles += [
            svc.submit(SingleRunJob(
                model_factory=_pid_model, t_end=T_END,
                sync_interval=0.01,
            ))
            for __ in range(single_jobs)
        ]
        results = [h.result(timeout=120.0) for h in handles]
        concurrent_wall = time.perf_counter() - start
        cache = svc.cache.stats()

    for got, want in zip(results[:batch_jobs], direct_batch):
        assert np.array_equal(
            got.series["plant.out"], want.series["plant.out"]
        )
        assert np.array_equal(got.final_states, want.final_states)
    for got, want in zip(results[batch_jobs:], direct_single):
        assert np.array_equal(got.probes["y"].times, want.times)
        assert np.array_equal(got.probes["y"].states, want.states)

    report(f"S5: {batch_jobs + single_jobs} concurrent jobs "
           "(4 workers) vs sequential direct runs", [
        f"sequential direct : {sequential_wall * 1e3:8.1f} ms",
        f"concurrent service: {concurrent_wall * 1e3:8.1f} ms",
        f"cache             : {cache['compiles']} compiles, "
        f"{cache['hits']} hits across {batch_jobs} batch jobs",
        "results           : bitwise identical to direct runs",
    ])
    bench_json("s5", {
        "concurrent_jobs": batch_jobs + single_jobs,
        "sequential_wall_ms": sequential_wall * 1e3,
        "concurrent_wall_ms": concurrent_wall * 1e3,
        "concurrent_results_identical": True,
    })
    # one compile serves all structurally identical batch jobs
    assert cache["compiles"] == 1
    assert cache["hits"] == batch_jobs - 1
