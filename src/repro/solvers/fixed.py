"""Fixed-step explicit Runge-Kutta methods.

These are the workhorse solvers for streamer threads running at a fixed
rate (the common case in real-time control, where the solver must finish
within the control period).  Orders 1, 2 and 4 cover the classic
cost/accuracy trade-off measured in bench S1.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import RHS, FixedStepSolver


class Euler(FixedStepSolver):
    """Forward Euler: first order, one RHS evaluation per step."""

    name = "euler"
    order = 1

    def _advance(self, f: RHS, t: float, y: np.ndarray, h: float) -> np.ndarray:
        return y + h * np.asarray(f(t, y), dtype=float)


class Heun(FixedStepSolver):
    """Heun's method (explicit trapezoidal): second order, two evaluations."""

    name = "heun"
    order = 2

    def _advance(self, f: RHS, t: float, y: np.ndarray, h: float) -> np.ndarray:
        k1 = np.asarray(f(t, y), dtype=float)
        k2 = np.asarray(f(t + h, y + h * k1), dtype=float)
        return y + (h / 2.0) * (k1 + k2)


class RK4(FixedStepSolver):
    """Classic fourth-order Runge-Kutta: four evaluations per step."""

    name = "rk4"
    order = 4

    def _advance(self, f: RHS, t: float, y: np.ndarray, h: float) -> np.ndarray:
        k1 = np.asarray(f(t, y), dtype=float)
        k2 = np.asarray(f(t + h / 2.0, y + (h / 2.0) * k1), dtype=float)
        k3 = np.asarray(f(t + h / 2.0, y + (h / 2.0) * k2), dtype=float)
        k4 = np.asarray(f(t + h, y + h * k3), dtype=float)
        return y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
