"""Trajectory recording.

A :class:`Trajectory` accumulates ``(t, y)`` samples during integration and
offers interpolation, slicing and error metrics against a reference — the
plumbing behind scopes (:mod:`repro.dataflow.sinks`), EXPERIMENTS.md
numbers and the solver-accuracy bench (S1).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np


class TrajectoryError(Exception):
    """Raised on malformed trajectory operations."""


class Trajectory:
    """A time-ordered record of state samples."""

    def __init__(self, labels: Optional[Sequence[str]] = None) -> None:
        self._times: List[float] = []
        self._states: List[np.ndarray] = []
        self.labels = list(labels) if labels is not None else None

    # ------------------------------------------------------------------
    def append(self, t: float, y: Union[np.ndarray, Sequence[float], float]) -> None:
        y_arr = np.atleast_1d(np.asarray(y, dtype=float)).copy()
        if self._times:
            if t < self._times[-1]:
                raise TrajectoryError(
                    f"non-monotone time: {t} after {self._times[-1]}"
                )
            if y_arr.shape != self._states[-1].shape:
                raise TrajectoryError(
                    f"state dimension changed: {y_arr.shape} vs "
                    f"{self._states[-1].shape}"
                )
        self._times.append(float(t))
        self._states.append(y_arr)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def empty(self) -> bool:
        return not self._times

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def states(self) -> np.ndarray:
        """Samples as a ``(n_samples, n_states)`` array."""
        if not self._states:
            return np.empty((0, 0))
        return np.vstack(self._states)

    @property
    def t_final(self) -> float:
        if not self._times:
            raise TrajectoryError("empty trajectory")
        return self._times[-1]

    @property
    def y_final(self) -> np.ndarray:
        if not self._states:
            raise TrajectoryError("empty trajectory")
        return self._states[-1]

    # ------------------------------------------------------------------
    def component(self, index_or_label: Union[int, str]) -> np.ndarray:
        """One state component over time."""
        if isinstance(index_or_label, str):
            if self.labels is None or index_or_label not in self.labels:
                raise TrajectoryError(f"unknown label {index_or_label!r}")
            index = self.labels.index(index_or_label)
        else:
            index = index_or_label
        return self.states[:, index]

    def sample(self, t: float) -> np.ndarray:
        """Linearly interpolated state at time ``t`` (clamped to range)."""
        times = self.times
        if times.size == 0:
            raise TrajectoryError("empty trajectory")
        states = self.states
        if t <= times[0]:
            return states[0].copy()
        if t >= times[-1]:
            return states[-1].copy()
        idx = int(np.searchsorted(times, t))
        t0, t1 = times[idx - 1], times[idx]
        if t1 == t0:
            return states[idx].copy()
        alpha = (t - t0) / (t1 - t0)
        return (1.0 - alpha) * states[idx - 1] + alpha * states[idx]

    def resample(self, grid: Sequence[float]) -> "Trajectory":
        """A new trajectory sampled on ``grid`` by linear interpolation."""
        out = Trajectory(labels=self.labels)
        for t in grid:
            out.append(float(t), self.sample(float(t)))
        return out

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def max_error_against(
        self, reference: Callable[[float], Union[np.ndarray, float]]
    ) -> float:
        """Max-norm error vs. an analytic reference function of time."""
        worst = 0.0
        for t, y in zip(self._times, self._states):
            ref = np.atleast_1d(np.asarray(reference(t), dtype=float))
            worst = max(worst, float(np.max(np.abs(y - ref))))
        return worst

    def rms_error_against(
        self, reference: Callable[[float], Union[np.ndarray, float]]
    ) -> float:
        """RMS error over all samples and components."""
        if not self._times:
            raise TrajectoryError("empty trajectory")
        total = 0.0
        count = 0
        for t, y in zip(self._times, self._states):
            ref = np.atleast_1d(np.asarray(reference(t), dtype=float))
            diff = y - ref
            total += float(np.sum(diff * diff))
            count += diff.size
        return float(np.sqrt(total / count))

    def final_error_against(
        self, reference: Callable[[float], Union[np.ndarray, float]]
    ) -> float:
        ref = np.atleast_1d(
            np.asarray(reference(self.t_final), dtype=float)
        )
        return float(np.max(np.abs(self.y_final - ref)))

    def settling_time(
        self,
        component: Union[int, str],
        target: float,
        band: float,
    ) -> Optional[float]:
        """First time after which the component stays within ``target±band``.

        Returns ``None`` if it never settles.  A standard control metric
        used by the examples and benches.
        """
        values = self.component(component)
        times = self.times
        inside = np.abs(values - target) <= band
        if not inside[-1]:
            return None
        # last index where we were outside the band
        outside_idx = np.where(~inside)[0]
        if outside_idx.size == 0:
            return float(times[0])
        last_outside = int(outside_idx[-1])
        if last_outside + 1 >= times.size:
            return None
        return float(times[last_outside + 1])

    def overshoot(
        self, component: Union[int, str], target: float
    ) -> float:
        """Peak excursion beyond ``target`` relative to ``target`` (ratio)."""
        values = self.component(component)
        if target == 0:
            return float(np.max(values))
        peak = float(np.max(values)) if target > 0 else float(np.min(values))
        return max(0.0, (peak - target) / abs(target))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.empty:
            return "Trajectory(empty)"
        return (
            f"Trajectory(n={len(self)}, t=[{self._times[0]:.4g}, "
            f"{self._times[-1]:.4g}], dim={self._states[0].size})"
        )
