"""Fix-its: applying every repair and re-linting must converge clean.

``autofix`` applies machine-applicable fix-its to a fixpoint.  The
property tests generate models seeded with arbitrary mixes of fixable
defects — dead-block chains, shadowed transitions, unreachable states —
and assert that the final result carries no fixable diagnostic and no
diagnostic of the repaired codes at all.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import CheckConfig, autofix, run_checks
from repro.core.model import HybridModel
from repro.dataflow import Constant, Gain, Step
from repro.umlrt.statemachine import StateMachine

from tests.check.builders import dead_chain_model, sm_shadowed


class TestAutofixUnits:
    def test_dead_chain_cascades_to_clean(self):
        model = dead_chain_model(n=4)
        result = autofix(model)
        assert not result.by_code("STR002")
        assert not result.by_code("STR003")
        # the whole dead chain is gone; the live probed branch stays
        assert [s.name for s in model.streamers] == ["live"]
        assert not model.flows

    def test_shadowed_transition_removed(self):
        sm = sm_shadowed()
        result = autofix(sm)
        assert not result.by_code("SM002")
        # the unreachable leftover target state was removed too
        assert "y" not in sm.all_states()

    def test_autofix_is_idempotent(self):
        model = dead_chain_model(n=2)
        autofix(model)
        again = autofix(model)
        assert not any(d.fixit for d in again.diagnostics)


@st.composite
def chain_models(draw):
    """A model with one live probed chain and N dead chains."""
    model = HybridModel("gen")
    live_src = model.add_streamer(Step("live_src"))
    live_gain = model.add_streamer(Gain("live_gain", k=2.0))
    model.add_flow(live_src.dport("out"), live_gain.dport("in"))
    model.add_probe("y", live_gain.dport("out"))
    n_chains = draw(st.integers(min_value=1, max_value=3))
    for chain in range(n_chains):
        length = draw(st.integers(min_value=1, max_value=4))
        prev = model.add_streamer(Constant(f"c{chain}", value=1.0))
        for index in range(length):
            gain = model.add_streamer(
                Gain(f"d{chain}_{index}", k=2.0)
            )
            model.add_flow(prev.dport("out"), gain.dport("in"))
            prev = gain
    return model


@st.composite
def shadowed_machines(draw):
    """A machine with reachable states plus shadowed transitions and
    orphans."""
    sm = StateMachine("gen")
    n_live = draw(st.integers(min_value=2, max_value=4))
    live = [f"s{i}" for i in range(n_live)]
    for name in live:
        sm.add_state(name)
    sm.initial(live[0])
    # a reachable ring
    for i, name in enumerate(live):
        sm.add_transition(name, live[(i + 1) % n_live], trigger="step")
    # shadowed duplicates of the ring transitions
    n_shadow = draw(st.integers(min_value=0, max_value=3))
    for i in range(n_shadow):
        source = live[i % n_live]
        target = live[(i + 2) % n_live]
        sm.add_transition(source, target, trigger="step")
    # orphan states, possibly nested
    n_orphan = draw(st.integers(min_value=0, max_value=2))
    for i in range(n_orphan):
        sm.add_state(f"orphan{i}")
        if draw(st.booleans()):
            sm.add_state(f"orphan{i}.sub")
    return sm


FIXABLE_PLAN = CheckConfig(select={"STR002", "STR003", "STR004"})
FIXABLE_SM = CheckConfig(select={"SM001", "SM002"})


class TestAutofixProperties:
    @settings(max_examples=25, deadline=None)
    @given(chain_models())
    def test_dead_chains_always_converge_clean(self, model):
        result = autofix(model, config=FIXABLE_PLAN)
        assert not result.diagnostics
        # the live chain survives every repair
        names = {s.name for s in model.streamers}
        assert {"live_src", "live_gain"} <= names
        assert run_checks(model, config=FIXABLE_PLAN).ok("warning")

    @settings(max_examples=25, deadline=None)
    @given(shadowed_machines())
    def test_machines_always_converge_clean(self, sm):
        result = autofix(sm, config=FIXABLE_SM)
        assert not any(d.fixit for d in result.diagnostics)
        assert not result.by_code("SM001")
        # definite shadows all repaired; only may-overlap warnings
        # (no fixit by design) could remain
        assert not [
            d for d in result.by_code("SM002") if d.severity == "error"
        ]
        # the reachable ring is intact
        assert "s0" in sm.all_states()
