"""Thread-partition race rules (THR001/THR002)."""

from repro.check import run_checks

from tests.check.builders import cross_thread_model, shared_state_model


class TestTHR001:
    def test_cross_thread_feedthrough_reported(self):
        result = run_checks(cross_thread_model())
        [finding] = result.by_code("THR001")
        assert finding.severity == "warning"
        assert finding.details["src_thread"] == "streamers"
        assert finding.details["dst_thread"] == "fast"

    def test_same_thread_clean(self):
        result = run_checks(cross_thread_model(same_thread=True))
        assert not result.by_code("THR001")

    def test_non_feedthrough_consumer_clean(self):
        from tests.check.builders import infeasible_model

        # the integrator consumer has no direct feedthrough: sampling
        # at sync points is exactly how it is meant to be driven
        result = run_checks(infeasible_model())
        assert not result.by_code("THR001")


class TestTHR002:
    def test_shared_params_dict_reported(self):
        result = run_checks(shared_state_model(share=True))
        [finding] = result.by_code("THR002")
        assert finding.severity == "warning"
        assert sorted(finding.details["threads"]) == [
            "fast", "streamers",
        ]
        assert sorted(finding.details["sharers"]) == [
            "a.params", "b.params",
        ]

    def test_private_state_clean(self):
        result = run_checks(shared_state_model(share=False))
        assert not result.by_code("THR002")

    def test_sharing_on_one_thread_clean(self):
        from repro.core.model import HybridModel
        from repro.dataflow import Gain, Step

        model = HybridModel("onethread")
        a = Gain("a", k=2.0)
        b = Gain("b", k=2.0)
        b.params = a.params
        model.add_streamer(a)
        model.add_streamer(b)
        src = model.add_streamer(Step("src"))
        model.add_flow(src.dport("out"), a.dport("in"))
        model.add_flow(src.dport("out"), b.dport("in"))
        model.add_probe("ya", a.dport("out"))
        model.add_probe("yb", b.dport("out"))
        assert not run_checks(model).by_code("THR002")
