"""Thread-partition race analyses (the paper's Figure-1 boundary).

The paper's architecture runs capsules and streamers — and streamer
groups of different rates — on separate threads, with Channels as the
only sanctioned crossing.  Two things slip through that discipline
statically:

* **THR001** — a dataflow edge that crosses streamer threads into a
  *direct-feedthrough* consumer.  Cross-thread pads are sampled only at
  sync points, so the consumer computes its whole slice from a stale
  sample; with feedthrough that staleness propagates downstream within
  the same minor step.  Legal, sometimes intended (that is what sampling
  means), but worth flagging.
* **THR002** — the same mutable Python object (a params dict, an array,
  a list) reachable from leaves on *different* threads without any
  Channel between them: a data race under real threading, invisible
  under the cooperative scheduler.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.streamer import Streamer

from repro.check.context import CheckContext
from repro.check.registry import DEFAULT_REGISTRY as REG

rule = REG.rule

#: streamer infrastructure attributes; everything else in ``vars(leaf)``
#: is model payload and participates in the sharing scan
_INFRA_ATTRS = frozenset(
    ("name", "parent", "dports", "sports", "subs", "relays", "flows",
     "thread")
)

_MUTABLE_TYPES = (dict, list, set, bytearray, np.ndarray)


@rule("THR001", "cross-thread feedthrough sampling", "thread", "warning",
      "paper §2: edges crossing threads are sampled at sync points; a "
      "feedthrough consumer spreads the stale sample through its whole "
      "slice")
def check_cross_thread_feedthrough(ctx: CheckContext) -> None:
    for edge in ctx.edges:
        src_thread = ctx.thread_name.get(id(edge.src_leaf), "")
        dst_thread = ctx.thread_name.get(id(edge.dst_leaf), "")
        if not src_thread or not dst_thread or src_thread == dst_thread:
            continue
        if not edge.dst_leaf.direct_feedthrough:
            continue
        ctx.emit(
            edge.dst_port.qualified_name,
            f"direct-feedthrough input fed across threads "
            f"({src_thread} -> {dst_thread}): the value is sampled only "
            "at sync points and held stale through each slice",
            obj=edge.dst_leaf,
            details={
                "src": edge.src_port.qualified_name,
                "src_thread": src_thread,
                "dst_thread": dst_thread,
            },
        )


@rule("THR002", "mutable state shared across threads", "thread",
      "warning",
      "paper §2/Figure 1: threads communicate through Channels; a "
      "shared dict/array is an unsynchronised back door")
def check_shared_mutable_state(ctx: CheckContext) -> None:
    holders: Dict[int, List[Tuple[Streamer, str, object]]] = {}
    for leaf in ctx.leaves:
        for attr, value in vars(leaf).items():
            if attr.startswith("_") or attr in _INFRA_ATTRS:
                continue
            if not isinstance(value, _MUTABLE_TYPES):
                continue
            if isinstance(value, (dict, list, set)) and not value:
                continue  # distinct empties carry no shared state
            holders.setdefault(id(value), []).append((leaf, attr, value))

    for sharers in holders.values():
        if len(sharers) < 2:
            continue
        threads = {
            ctx.thread_name.get(id(leaf), "") for leaf, __, __v in sharers
        }
        threads.discard("")
        if len(threads) < 2:
            continue
        first_leaf, first_attr, value = sharers[0]
        names = ", ".join(
            f"{leaf.path()}.{attr}" for leaf, attr, __ in sharers
        )
        ctx.emit(
            f"{first_leaf.path()}.{first_attr}",
            f"{type(value).__name__} object shared by leaves on "
            f"different threads ({names}) with no Channel between "
            "them; this races under real threading",
            obj=first_leaf,
            details={
                "sharers": [
                    f"{leaf.path()}.{attr}" for leaf, attr, __ in sharers
                ],
                "threads": sorted(threads),
            },
        )
