"""Experiment C1 — claim vs. Kühl'01: translation blows up the model.

The paper: translating the dataflow diagram into UML capsules means
"lots of objects and classes may be generated, and some information may
be lost".  We translate PID loops padded to N blocks and count what the
translation creates (capsules, protocols, ports, connectors) and sends
(queued messages per simulated second) against the streamer original
(zero capsules, zero protocols, zero messages), plus the per-feature
information-loss table.

Expected shape: element counts grow ~linearly in N on the Kühl side and
stay flat on the streamer side; message volume is > 100x; information
loss is strictly positive.
"""

import pytest

from benchmarks.conftest import pid_plant_diagram
from repro.baselines import KuhlTranslation, information_loss, model_size
from repro.core.model import HybridModel

SIZES = [0, 4, 16, 48]  # padding blocks -> 4, 8, 20, 52 total blocks


def test_c1_model_size_explosion(benchmark, report):
    rows = []

    def sweep():
        rows.clear()
        for pad in SIZES:
            translation = KuhlTranslation(pid_plant_diagram(pad), h=0.01)
            kuhl = translation.size_metrics()
            original = model_size(pid_plant_diagram(pad))
            rows.append((pad + 4, kuhl, original))
        return rows

    benchmark(sweep)

    lines = [
        f"{'blocks':>7} | {'kuhl capsules':>13} {'protocols':>9} "
        f"{'ports':>6} {'connectors':>10} | {'streamer capsules':>17} "
        f"{'protocols':>9}",
    ]
    for blocks, kuhl, original in rows:
        lines.append(
            f"{blocks:>7} | {kuhl['capsule_instances']:>13} "
            f"{kuhl['protocols']:>9} {kuhl['ports']:>6} "
            f"{kuhl['connectors']:>10} | "
            f"{original['capsule_instances']:>17} "
            f"{original['protocols']:>9}"
        )
    report("C1: model-size explosion (Kuhl translation vs streamers)",
           lines)

    # shape assertions: linear growth vs flat zero
    first, last = rows[0], rows[-1]
    assert last[1]["capsule_instances"] > 10 * first[1]["capsule_instances"] / 5
    assert last[1]["capsule_instances"] == last[0] + 1
    for __, kuhl, original in rows:
        assert original["capsule_instances"] == 0
        assert original["protocols"] == 0
        assert kuhl["ports"] > kuhl["capsule_instances"]


def test_c1_message_volume(benchmark, report, bench_json):
    """Messages per simulated second: translation vs streamer original."""
    results = {}

    def run_both():
        translation = KuhlTranslation(
            pid_plant_diagram(4), h=0.01, probe="plant.out"
        )
        translation.run(1.0)
        results["kuhl"] = translation.message_metrics(1.0)

        diagram = pid_plant_diagram(4)
        diagram.finalise()
        model = HybridModel("orig")
        model.default_thread.h = 0.01
        model.add_streamer(diagram)
        model.run(until=1.0, sync_interval=0.01)
        results["streamer"] = {
            "messages_total": model.stats()["messages_dispatched"],
        }

    benchmark(run_both)
    kuhl_msgs = results["kuhl"]["messages_total"]
    streamer_msgs = results["streamer"]["messages_total"]
    report("C1: message volume per simulated second", [
        f"Kuhl translation : {kuhl_msgs} queued messages",
        f"streamer original: {streamer_msgs} queued messages",
        f"ratio            : {kuhl_msgs / max(1, streamer_msgs):.0f}x "
        "(paper: translation generates 'lots of objects')",
    ])
    assert streamer_msgs == 0
    assert kuhl_msgs > 1000
    bench_json("c1", {
        "kuhl_messages": kuhl_msgs,
        "streamer_messages": streamer_msgs,
        "message_ratio": kuhl_msgs / max(1, streamer_msgs),
    })


def test_c1_information_loss(benchmark, report):
    losses = {}

    def compute():
        for pad in (0, 16):
            losses[pad + 4] = information_loss(pid_plant_diagram(pad))

    benchmark(compute)
    lines = []
    for blocks, loss in losses.items():
        total = sum(loss.values())
        lines.append(f"{blocks} blocks: total loss {total}  {loss}")
    report("C1: information lost by the translation", lines)
    for loss in losses.values():
        assert sum(loss.values()) > 0  # "some information may be lost"
        assert loss["solver_choice_lost"] == 1


def test_c1_translation_fidelity(benchmark, report):
    """The translation is behaviour-preserving to Euler accuracy — the
    explosion is pure overhead, not extra fidelity."""
    results = {}

    def run():
        translation = KuhlTranslation(
            pid_plant_diagram(0), h=0.002, probe="plant.out"
        )
        translation.run(3.0)
        results["kuhl_final"] = translation.trajectory.y_final[0]

        diagram = pid_plant_diagram(0)
        diagram.finalise()
        model = HybridModel("ref")
        model.default_thread.binding.rebind("euler")
        model.default_thread.h = 0.002
        model.add_streamer(diagram)
        model.add_probe("y", diagram.port_at("plant.out"))
        model.run(until=3.0, sync_interval=0.05)
        results["streamer_final"] = model.probe("y").y_final[0]

    benchmark(run)
    assert results["kuhl_final"] == pytest.approx(
        results["streamer_final"], abs=0.02
    )
    report("C1: translation fidelity", [
        f"kuhl final      = {results['kuhl_final']:.5f}",
        f"streamer final  = {results['streamer_final']:.5f}",
        "behaviour preserved; cost paid in objects and messages",
    ])
