"""Requirement objects, linking, and trace reports."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import HybridModel


class RequirementError(Exception):
    """Raised for duplicate ids, unknown links and malformed sets."""


class Kind(enum.Enum):
    FUNCTIONAL = "functional"
    TIMING = "timing"
    SAFETY = "safety"


@dataclass
class Requirement:
    """One requirement with an optional executable acceptance check.

    The check receives the *simulated* model and returns True when the
    requirement is met — e.g. a settling-time bound over a probe.
    """

    rid: str
    text: str
    kind: Kind = Kind.FUNCTIONAL
    check: Optional[Callable[["HybridModel"], bool]] = None
    links: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.rid:
            raise RequirementError("requirement needs a non-empty id")


@dataclass
class TraceEntry:
    """Trace status of one requirement."""

    rid: str
    linked: bool
    missing_elements: List[str]
    check_result: Optional[bool]  # None = no check defined / not run

    @property
    def satisfied(self) -> bool:
        return (
            self.linked
            and not self.missing_elements
            and self.check_result is not False
        )


class RequirementSet:
    """A registry of requirements with model-element links."""

    def __init__(self, name: str = "requirements") -> None:
        self.name = name
        self._requirements: Dict[str, Requirement] = {}

    def add(
        self,
        rid: str,
        text: str,
        kind: Kind = Kind.FUNCTIONAL,
        check: Optional[Callable[["HybridModel"], bool]] = None,
    ) -> Requirement:
        if rid in self._requirements:
            raise RequirementError(f"duplicate requirement id {rid!r}")
        requirement = Requirement(rid, text, kind, check)
        self._requirements[rid] = requirement
        return requirement

    def link(self, rid: str, element_name: str) -> None:
        """Link a requirement to a model element by name.

        Element names: capsule instance names, streamer paths, probe
        names, thread names, controller names.
        """
        self.get(rid).links.add(element_name)

    def get(self, rid: str) -> Requirement:
        try:
            return self._requirements[rid]
        except KeyError:
            raise RequirementError(f"unknown requirement {rid!r}") from None

    def __iter__(self):
        return iter(self._requirements.values())

    def __len__(self) -> int:
        return len(self._requirements)

    def by_kind(self, kind: Kind) -> List[Requirement]:
        return [r for r in self if r.kind is kind]


def _model_element_names(model: "HybridModel") -> Set[str]:
    names: Set[str] = set()
    for top in model.rts.tops:
        names.add(top.instance_name)
        for descendant in top.descendants():
            names.add(descendant.instance_name)

    def walk(streamer):
        names.add(streamer.path())
        for sub in streamer.subs.values():
            walk(sub)

    for top in model.streamers:
        walk(top)
    names.update(model.probes)
    names.update(thread.name for thread in model.threads)
    names.update(controller.name for controller in model.rts.controllers)
    return names


def trace_report(
    requirements: RequirementSet,
    model: "HybridModel",
    run_checks: bool = True,
) -> List[TraceEntry]:
    """Compute the traceability matrix of a requirement set over a model.

    For meaningful acceptance checks, call after ``model.run(...)``.
    """
    known = _model_element_names(model)
    entries: List[TraceEntry] = []
    for requirement in requirements:
        missing = sorted(
            link for link in requirement.links if link not in known
        )
        result: Optional[bool] = None
        if run_checks and requirement.check is not None:
            result = bool(requirement.check(model))
        entries.append(TraceEntry(
            rid=requirement.rid,
            linked=bool(requirement.links),
            missing_elements=missing,
            check_result=result,
        ))
    return entries


def render_trace(entries: List[TraceEntry]) -> str:
    """A printable traceability table."""
    lines = [f"{'id':<12}{'linked':>7}{'missing':>9}{'check':>7}{'ok':>5}"]
    for entry in entries:
        check = ("-" if entry.check_result is None
                 else "pass" if entry.check_result else "FAIL")
        lines.append(
            f"{entry.rid:<12}{str(entry.linked):>7}"
            f"{len(entry.missing_elements):>9}{check:>7}"
            f"{'yes' if entry.satisfied else 'NO':>5}"
        )
    return "\n".join(lines)
