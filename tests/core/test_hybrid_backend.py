"""The hybrid scheduler's compiled-kernel derivative bridge.

``HybridModel.run(backend=...)`` installs a compiled ``rhs`` on the
active streamer thread when the model is kernel-eligible; the thread's
own solver binding keeps stepping, so the probe trajectories must be
bitwise identical to the interpreter.  Ineligible models (capsules,
zero-crossing guards, emitter-less custom blocks) demote with a recorded
reason and never fail.  All grids are binary-exact doubles.
"""

import numpy as np
import pytest

from tests.conftest import ConstLeaf, GainLeaf

from repro.core.backend import has_c_compiler
from repro.core.model import HybridModel
from repro.dataflow import Gain, Integrator, Sine, UnitDelay, ZeroOrderHold
from repro.dataflow.diagram import Diagram
from repro.umlrt.capsule import Capsule
from repro.umlrt.statemachine import StateMachine

H = 1.0 / 512.0
SYNC = 1.0 / 64.0
T_END = 0.5

KERNELS = ["compiled-python"] + (["native-c"] if has_c_compiler() else [])


def sampled_diagram():
    d = Diagram("plant")
    d.add(Sine("sine", amplitude=1.2, freq=0.8))
    d.add(ZeroOrderHold("zoh", ts=SYNC))
    d.add(UnitDelay("delay", ts=SYNC, y0=0.1))
    d.add(Gain("g", k=0.7))
    d.add(Integrator("integ", y0=0.25))
    d.connect("sine.out", "zoh.in")
    d.connect("zoh.out", "delay.in")
    d.connect("delay.out", "g.in")
    d.connect("g.out", "integ.in")
    return d


def run_model(backend, opt_level=0, k=0.7):
    d = sampled_diagram()
    d.subs["g"].params["k"] = k
    d.finalise()
    model = HybridModel("m")
    model.default_thread.h = H
    model.add_streamer(d)
    model.add_probe("y", d.port_at("integ.out"))
    scheduler = model.run(
        until=T_END, sync_interval=SYNC,
        opt_level=opt_level, backend=backend,
    )
    return model.probe("y"), scheduler


class TestKernelParity:
    @pytest.mark.parametrize("backend", KERNELS)
    def test_bitwise_vs_interpreter(self, backend):
        ref, __ = run_model(None)
        got, scheduler = run_model(backend)
        info = scheduler.backend_info
        assert info == {
            "requested": backend, "effective": backend, "reason": None,
        }
        assert np.array_equal(ref.times, got.times)
        assert np.array_equal(ref.states, got.states)

    @pytest.mark.parametrize("opt_level", (1, 2))
    def test_bitwise_on_optimized_plans(self, opt_level):
        ref, __ = run_model(None, opt_level=opt_level)
        got, scheduler = run_model("compiled-python", opt_level=opt_level)
        assert scheduler.backend_info["effective"] == "compiled-python"
        assert np.array_equal(ref.times, got.times)
        assert np.array_equal(ref.states, got.states)

    def test_stats_carry_backend_info(self):
        __, scheduler = run_model("compiled-python")
        stats = scheduler.stats()
        assert stats["backend"]["effective"] == "compiled-python"
        __, scheduler = run_model(None)
        assert scheduler.stats()["backend"] == {
            "requested": "interpreter",
            "effective": "interpreter",
            "reason": "interpreter is the default execution backend",
        }


class TestEligibilityGates:
    class Idle(Capsule):
        def build_structure(self):
            pass

        def build_behaviour(self):
            sm = StateMachine("idle")
            sm.add_state("s")
            sm.initial("s")
            return sm

    def test_capsules_demote_to_interpreter(self, model):
        model.add_capsule(self.Idle("idle"))
        const = model.add_streamer(ConstLeaf("c", 2.0))
        gain = model.add_streamer(GainLeaf("g", k=1.5))
        model.add_flow(const.dport("y"), gain.dport("u"))
        model.add_probe("y", gain.dport("y"))
        scheduler = model.run(
            until=0.25, sync_interval=SYNC, backend="compiled-python",
        )
        info = scheduler.backend_info
        assert info["requested"] == "compiled-python"
        assert info["effective"] == "interpreter"
        assert "capsule" in info["reason"]
        assert model.probe("y").y_final[0] == pytest.approx(3.0, rel=1e-9)

    def test_emitterless_blocks_demote_to_interpreter(self, model):
        # conftest leaves have no codegen emitters: the compile fails
        # and the run silently lands on the interpreter
        const = model.add_streamer(ConstLeaf("c", 1.0))
        gain = model.add_streamer(GainLeaf("g", k=2.0))
        model.add_flow(const.dport("y"), gain.dport("u"))
        model.add_probe("y", gain.dport("y"))
        scheduler = model.run(
            until=0.25, sync_interval=SYNC, backend="compiled-python",
        )
        info = scheduler.backend_info
        assert info["effective"] == "interpreter"
        assert info["reason"]
        assert model.probe("y").y_final[0] == pytest.approx(2.0, rel=1e-9)


class TestFingerprintRecheck:
    def test_param_mutation_triggers_rebind(self):
        d = sampled_diagram()
        d.finalise()
        model = HybridModel("m")
        model.default_thread.h = H
        model.add_streamer(d)
        model.add_probe("y", d.port_at("integ.out"))
        scheduler = model.run(
            until=0.25, sync_interval=SYNC, backend="compiled-python",
        )
        assert scheduler.backend_info["effective"] == "compiled-python"
        first_fp = scheduler._backend_fingerprint

        # re-tune between runs: params enter the plan fingerprint, so
        # the next run() must compile a fresh kernel
        d.subs["g"].params["k"] = 1.9
        scheduler.run(T_END)
        assert scheduler.backend_info["effective"] == "compiled-python"
        assert scheduler._backend_fingerprint != first_fp

        # the continued trajectory reflects the new parameter: it is
        # bitwise the interpreter's view of the same two-phase run
        ref_d = sampled_diagram()
        ref_d.finalise()
        ref_model = HybridModel("ref")
        ref_model.default_thread.h = H
        ref_model.add_streamer(ref_d)
        ref_model.add_probe("y", ref_d.port_at("integ.out"))
        ref_scheduler = ref_model.run(until=0.25, sync_interval=SYNC)
        ref_d.subs["g"].params["k"] = 1.9
        ref_scheduler.run(T_END)
        ref = ref_model.probe("y")
        got = model.probe("y")
        assert np.array_equal(ref.times, got.times)
        assert np.array_equal(ref.states, got.states)
