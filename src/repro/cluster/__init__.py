"""repro.cluster — sharded multi-worker simulation service.

A :class:`WorkerPool` of OS processes executes the service's job specs
behind work-stealing deques; a filesystem :class:`ArtifactStore` gives
every worker the same content-addressed view of checkpoints and
compiled artifacts (which is what makes live job migration after a
worker SIGKILL bitwise-safe); :class:`ClusterHTTPServer` and
:class:`ClusterClient` put the whole thing behind a stdlib HTTP API.

See ``python -m repro.cluster --help`` for the CLI, and DESIGN.md §12
for the architecture.
"""

from repro.cluster.client import ClusterClient, ClusterClientError
from repro.cluster.http import ClusterHTTPServer, json_safe, summarise_result
from repro.cluster.pool import ClusterConfig, ClusterJobHandle, WorkerPool
from repro.cluster.requests import (
    ClusterError,
    ClusterJobRequest,
    ClusterRejected,
    register_model,
    registered_models,
    resolve_model,
)
from repro.cluster.store import (
    ArtifactCorruptError,
    ArtifactStore,
    ArtifactStoreError,
    decode_artifact,
    encode_artifact,
)

__all__ = [
    "ArtifactCorruptError",
    "ArtifactStore",
    "ArtifactStoreError",
    "ClusterClient",
    "ClusterClientError",
    "ClusterConfig",
    "ClusterError",
    "ClusterHTTPServer",
    "ClusterJobHandle",
    "ClusterJobRequest",
    "ClusterRejected",
    "WorkerPool",
    "decode_artifact",
    "encode_artifact",
    "json_safe",
    "register_model",
    "registered_models",
    "resolve_model",
    "summarise_result",
]
