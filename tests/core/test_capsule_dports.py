"""Capsule relay DPorts (paper §2, rule W5): data flows *through*
capsules without the capsule ever touching it."""

import pytest

from tests.conftest import ConstLeaf, Echo, IntegratorLeaf

from repro.core.dport import DPortError, Direction
from repro.core.flowtype import SCALAR
from repro.core.model import HybridModel


class TestCapsuleRelayDPorts:
    def build(self, model):
        """const -> (capsule relay DPort) -> integrator."""
        capsule = model.add_capsule(Echo("gateway"))
        const = model.add_streamer(ConstLeaf("src", 3.0))
        integ = model.add_streamer(IntegratorLeaf("sink"))
        relay_port = model.add_capsule_dport(
            capsule, "dataTap", Direction.IN, SCALAR
        )
        model.add_flow(const.dport("y"), relay_port)
        model.add_flow(relay_port, integ.dport("u"))
        return capsule, const, integ, relay_port

    def test_flow_passes_through_capsule(self, model):
        __, ___, integ, ____ = self.build(model)
        model.add_probe("out", integ.dport("y"))
        model.run(until=1.0, sync_interval=0.1)
        assert model.probe("out").y_final[0] == pytest.approx(3.0)

    def test_capsule_cannot_write_its_dport(self, model):
        __, ___, ____, relay_port = self.build(model)
        with pytest.raises(DPortError, match="W5"):
            relay_port.write(1.0)

    def test_network_resolves_through_capsule_pad(self, model):
        self.build(model)
        scheduler = model.scheduler()
        scheduler.build()
        network = scheduler.network
        assert len(network.edges) == 1
        edge = network.edges[0]
        assert len(edge.path) == 2  # two flows through the pad

    def test_validation_accepts_relay_dports(self, model):
        self.build(model)
        violations = model.validate(strict=True)
        assert all(v.severity == "warning" for v in violations)

    def test_duplicate_capsule_dport_rejected(self, model):
        capsule, *_ = self.build(model)
        from repro.core.model import ModelError

        with pytest.raises(ModelError):
            model.add_capsule_dport(
                capsule, "dataTap", Direction.IN, SCALAR
            )

    def test_builder_path_resolution(self):
        from repro.core.builder import ModelBuilder

        builder = ModelBuilder("b")
        builder.capsule(Echo("gateway"))
        builder.streamer(ConstLeaf("src", 2.0))
        builder.streamer(IntegratorLeaf("sink"))
        capsule = builder.model.rts.tops[0]
        builder.model.add_capsule_dport(
            capsule, "tap", Direction.IN, SCALAR
        )
        pad = builder.dport("gateway.tap")
        assert pad.relay_only
        builder.flow("src.y", "gateway.tap")
        builder.model.add_flow(pad, builder.dport("sink.u"))
        model = builder.build()
        model.run(until=0.5, sync_interval=0.1)
        assert builder.dport("sink.y").read_scalar() == pytest.approx(1.0)
