"""Requirements capture and traceability.

The paper's workflow starts at "requirement analysis" and the unified
platform is supposed to carry requirements through model design,
simulation and code generation.  This package supplies the thin layer a
control project actually needs for that:

* :class:`Requirement` — id, text, kind (functional / timing / safety),
  acceptance criterion as an executable predicate over a finished model;
* :class:`RequirementSet` — registry with links from requirements to
  model elements (capsules, streamers, probes, threads) by name;
* :func:`trace_report` — coverage: which requirements are linked,
  which linked elements exist in the model, which acceptance checks pass
  after a simulation run.
"""

from repro.requirements.core import (
    Requirement,
    RequirementError,
    RequirementSet,
    TraceEntry,
    trace_report,
)

__all__ = [
    "Requirement",
    "RequirementError",
    "RequirementSet",
    "TraceEntry",
    "trace_report",
]
