"""Solver bindings: the Strategy pattern of Figure 1.

Figure 1 of the paper shows the two behavioural attachments side by side:
a Capsule holds *State* objects (the State pattern — its behaviour), and a
Streamer holds a *Strategy* (the solver — its algorithm), with concrete
strategies ``ConcreteStrategyA/B/C`` being interchangeable solvers.

:class:`SolverBinding` is that strategy slot.  It wraps any
:class:`~repro.solvers.base.SolverBase`, can be *hot-swapped* between
major steps (``rebind``), and keeps per-binding statistics so benchmarks
can attribute numeric work to streamer threads.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.solvers.base import RHS, SolverBase, StepResult
from repro.solvers.registry import make_solver


class SolverBinding:
    """A swappable solver strategy attached to a streamer thread."""

    def __init__(self, solver: Any = "rk4", **solver_kwargs: Any) -> None:
        self._solver = self._coerce(solver, solver_kwargs)
        self.steps_taken = 0
        self.time_integrated = 0.0
        self.swaps = 0

    @staticmethod
    def _coerce(solver: Any, kwargs: dict) -> SolverBase:
        if isinstance(solver, SolverBase):
            if kwargs:
                raise ValueError(
                    "solver kwargs only apply when passing a solver name"
                )
            return solver
        return make_solver(str(solver), **kwargs)

    @property
    def solver(self) -> SolverBase:
        return self._solver

    @property
    def strategy_name(self) -> str:
        return self._solver.name

    def rebind(self, solver: Any, **solver_kwargs: Any) -> SolverBase:
        """Swap the concrete strategy; returns the previous solver.

        Safe between major steps: solver-internal caches are per-strategy
        and the continuous state lives in the network, not in the solver.
        """
        previous = self._solver
        self._solver = self._coerce(solver, solver_kwargs)
        self.swaps += 1
        return previous

    def step(self, f: RHS, t: float, y: np.ndarray, h: float) -> StepResult:
        result = self._solver.step(f, t, y, h)
        self.steps_taken += 1
        self.time_integrated += result.h_taken
        return result

    def reset(self) -> None:
        self._solver.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverBinding({self.strategy_name!r}, "
            f"steps={self.steps_taken})"
        )
