"""Experiment S8 — plan-optimizer speedup across backends.

The 204-block closed loop (`pid_plant_diagram(200)`: PID rig plus a
200-block unity-gain pad chain) is the stress shape the optimizer
exists for: at O1 the chain fuses into one node and at O2 it collapses
further into a single affine op, so the interpreter walks ~5 nodes per
minor step instead of ~204.  This bench measures interpreter and batch
step-rate at O0/O1/O2, re-asserts the O1 bitwise-identity contract that
makes the comparison honest, and records the headline ratios in
``BENCH_S8.json``.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import pid_plant_diagram
from repro.core.batch import BatchSimulator
from repro.core.network import FlatNetwork

PAD = 200          # 4 rig blocks + 200 pad gains = the 204-block loop
H = 2e-3
T_END = 0.5
N = 32
RECORDS = ["plant.out"]
INTERP_STEPS = 300


def loop_network():
    diagram = pid_plant_diagram(PAD)
    diagram.finalise()
    return FlatNetwork([diagram])


def interp_step_rate(network, level):
    """Minor-step rate (rhs evaluations/s) of the plan interpreter."""
    plan = network.plan(opt_level=level)
    state = network.initial_state()
    plan.rhs(0.0, state)  # warm caches
    start = time.perf_counter()
    for index in range(INTERP_STEPS):
        plan.rhs(index * H, state)
    wall = time.perf_counter() - start
    return INTERP_STEPS / wall, plan


def batch_step_rate(level):
    """Major-step rate of the vectorised batch backend at N instances."""
    sim = BatchSimulator(
        pid_plant_diagram(PAD), N, solver="rk4", h=H, records=RECORDS,
        opt_level=level, cache=False,
    )
    sim.run(0.02, record_every=50)  # warm the compiled program
    start = time.perf_counter()
    result = sim.run(T_END, record_every=50)
    wall = time.perf_counter() - start
    return (T_END / H) / wall, result


def test_s8_o1_is_bitwise_identical():
    """The contract the speedup rests on: O1 rewrites are invisible."""
    network = loop_network()
    reference = network.plan()
    optimized = network.plan(opt_level=1)
    assert len(optimized.nodes) < len(reference.nodes)
    rng = np.random.default_rng(8)
    for __ in range(20):
        state = rng.normal(size=reference.state_size)
        t = float(rng.uniform(0.0, 2.0))
        assert np.array_equal(
            reference.rhs(t, state), optimized.rhs(t, state),
        )
    plain = BatchSimulator(
        pid_plant_diagram(PAD), N, solver="rk4", h=H, records=RECORDS,
        cache=False,
    ).run(T_END, record_every=50)
    fused = BatchSimulator(
        pid_plant_diagram(PAD), N, solver="rk4", h=H, records=RECORDS,
        opt_level=1, cache=False,
    ).run(T_END, record_every=50)
    assert np.array_equal(
        plain.series["plant.out"], fused.series["plant.out"],
    )
    assert np.array_equal(plain.final_states, fused.final_states)


def test_s8_opt_speedup(report, bench_json):
    """Acceptance bar: >= 1.25x interpreter step-rate at O2."""
    network = loop_network()
    rates = {}
    plans = {}
    for level in (0, 1, 2):
        rates[level], plans[level] = interp_step_rate(network, level)
    batch_rates = {}
    results = {}
    for level in (0, 1, 2):
        batch_rates[level], results[level] = batch_step_rate(level)

    # O2 must stay within re-association tolerance of O0
    np.testing.assert_allclose(
        results[0].series["plant.out"], results[2].series["plant.out"],
        rtol=1e-9,
    )
    o1_bitwise = np.array_equal(
        results[0].series["plant.out"], results[1].series["plant.out"],
    )
    assert o1_bitwise

    interp_ratio_o1 = rates[1] / rates[0]
    interp_ratio_o2 = rates[2] / rates[0]
    batch_ratio_o2 = batch_rates[2] / batch_rates[0]
    counts = plans[1].opt_report.counts()

    report(
        f"S8: plan optimizer on the {PAD + 4}-block loop "
        f"(rk4, h={H}, {T_END} sim-s)",
        [
            f"plan nodes O0 -> O1        : "
            f"{len(plans[0].nodes)} -> {len(plans[1].nodes)}",
            f"interpreter steps/s O0     : {rates[0]:10.0f}",
            f"interpreter steps/s O1     : {rates[1]:10.0f} "
            f"({interp_ratio_o1:.2f}x)",
            f"interpreter steps/s O2     : {rates[2]:10.0f} "
            f"({interp_ratio_o2:.2f}x)",
            f"batch (N={N}) steps/s O0    : {batch_rates[0]:10.0f}",
            f"batch (N={N}) steps/s O2    : {batch_rates[2]:10.0f} "
            f"({batch_ratio_o2:.2f}x)",
            "O1 trajectories            : bitwise identical",
        ],
    )
    assert interp_ratio_o2 >= 1.25, (
        f"O2 interpreter step-rate only {interp_ratio_o2:.2f}x over O0; "
        "acceptance bar is 1.25x"
    )
    bench_json("s8", {
        "blocks": PAD + 4,
        "plan_nodes_o0": len(plans[0].nodes),
        "plan_nodes_o1": len(plans[1].nodes),
        "interp_steps_per_s_o0": rates[0],
        "interp_steps_per_s_o1": rates[1],
        "interp_steps_per_s_o2": rates[2],
        "interp_speedup_o1": interp_ratio_o1,
        "interp_speedup_o2": interp_ratio_o2,
        "batch_steps_per_s_o0": batch_rates[0],
        "batch_steps_per_s_o2": batch_rates[2],
        "batch_speedup_o2": batch_ratio_o2,
        "ops_fused_o1": counts["fuse.ops_fused"],
        "bitwise_identical": bool(o1_bitwise),
    })


@pytest.mark.parametrize("disabled", ["dce", "fold", "cse", "fuse"])
def test_s8_pass_ablation(disabled, report):
    """Per-pass ablation at O1: which pass carries the win here."""
    from repro.core.opt import OptConfig

    network = loop_network()
    full = network.plan(opt_level=1)
    ablated = network.plan(
        opt_config=OptConfig(level=1, **{disabled: False}),
    )
    report(f"S8: ablation without {disabled}", [
        f"nodes: full O1 {len(full.nodes)}, "
        f"without {disabled} {len(ablated.nodes)}",
    ])
    # fusion carries the chain collapse; the others are no worse
    if disabled == "fuse":
        assert len(ablated.nodes) >= len(full.nodes)
