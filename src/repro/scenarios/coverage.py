"""The campaign coverage ledger.

:mod:`repro.analysis.coverage` measures *one* state machine against its
own transition graph; campaigns need the same idea over a whole
toolchain.  :class:`CampaignCoverage` tracks five dimensions, each a
finite universe drawn from the live registries (never hard-coded where
a registry exists):

* **rules** — check-rule codes fired, out of
  :func:`repro.check.default_registry` (``W3`` is defensively
  unreachable, which is why the campaign bar is >= 90%, not 100%);
* **opcodes** — plan-node leaf types post-optimization, out of the
  generator grammar plus the optimizer's synthetic leaves;
* **solvers** — solver kinds run, out of
  :func:`repro.solvers.available_solvers`;
* **backends** — execution backends that actually ran (effective, not
  requested), out of :func:`repro.core.backend.available_backends`
  minus ``native-c`` when no compiler is usable;
* **passes** — optimizer passes that *rewrote something* (a pass that
  ran but changed nothing exercised no rewrite code), out of
  ``PASS_ORDER``.

Scenario executors record into a small per-scenario outcome set; the
runner merges those into the ledger in deterministic (seed) order, so
the final report is independent of worker scheduling.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Set

#: every block type the generator grammar can place in a plan, plus the
#: two synthetic leaves the optimizer introduces at O1
OPCODES: FrozenSet[str] = frozenset({
    # sources
    "Constant", "Sine", "Step",
    # ops
    "Gain", "Bias", "Sum", "Abs", "Saturation", "Integrator",
    "FirstOrderLag", "ZeroOrderHold", "UnitDelay",
    # sinks / controllers / plants
    "Scope", "PID", "SecondOrderSystem",
    # synthetic (O1 rewrites)
    "FoldedBlock", "FusedChain",
})

DIMENSIONS = ("rules", "opcodes", "solvers", "backends", "passes")


def rule_universe() -> FrozenSet[str]:
    from repro.check import default_registry

    return frozenset(default_registry().codes())


def solver_universe() -> FrozenSet[str]:
    from repro.solvers import available_solvers

    return frozenset(available_solvers())


def backend_universe() -> FrozenSet[str]:
    from repro.core.backend import available_backends, has_c_compiler

    names = set(available_backends())
    if not has_c_compiler():
        names.discard("native-c")
        names.discard("native-batch")
    return frozenset(names)


def pass_universe() -> FrozenSet[str]:
    from repro.core.opt.config import PASS_ORDER

    return frozenset(PASS_ORDER)


class CampaignCoverage:
    """A set ledger per dimension, checked against a fixed universe."""

    def __init__(self) -> None:
        self.universe: Dict[str, FrozenSet[str]] = {
            "rules": rule_universe(),
            "opcodes": OPCODES,
            "solvers": solver_universe(),
            "backends": backend_universe(),
            "passes": pass_universe(),
        }
        self.hit: Dict[str, Set[str]] = {
            dim: set() for dim in DIMENSIONS
        }

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, dim: str, values: Iterable[str]) -> None:
        if dim not in self.hit:
            raise KeyError(f"unknown coverage dimension {dim!r}")
        self.hit[dim].update(values)

    def record_rules(self, codes: Iterable[str]) -> None:
        self.record("rules", codes)

    def record_solver(self, solver: str) -> None:
        self.record("solvers", [solver])

    def record_backend(self, backend: str) -> None:
        self.record("backends", [backend])

    def record_plan(self, plan) -> None:
        """Leaf opcodes of a compiled :class:`ExecutionPlan`."""
        self.record(
            "opcodes",
            (type(node.leaf).__name__ for node in plan.nodes),
        )

    def record_opt_report(self, counts: Mapping[str, int]) -> None:
        """Passes that rewrote, from ``plan.opt_report.counts()``."""
        fired = {
            key.split(".", 1)[0]
            for key, value in counts.items()
            if value and key.split(".", 1)[0] in self.universe["passes"]
        }
        self.record("passes", fired)

    def merge_outcome(self, outcome: Mapping[str, Iterable[str]]) -> None:
        """Fold one scenario's ``{dim: values}`` outcome sets in."""
        for dim, values in outcome.items():
            self.record(dim, values)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def unexercised(self, dim: str) -> FrozenSet[str]:
        return frozenset(self.universe[dim] - self.hit[dim])

    def fraction(self, dim: str) -> float:
        total = len(self.universe[dim])
        if not total:
            return 1.0
        return len(self.hit[dim] & self.universe[dim]) / total

    def complete(self, dim: str) -> bool:
        return not self.unexercised(dim)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {}
        for dim in DIMENSIONS:
            out[dim] = {
                "universe": sorted(self.universe[dim]),
                "hit": sorted(self.hit[dim] & self.universe[dim]),
                "extra": sorted(self.hit[dim] - self.universe[dim]),
                "missing": sorted(self.unexercised(dim)),
                "fraction": self.fraction(dim),
            }
        return out

    def render(self) -> str:
        lines: List[str] = ["campaign coverage:"]
        for dim in DIMENSIONS:
            missing = sorted(self.unexercised(dim))
            hit = len(self.hit[dim] & self.universe[dim])
            lines.append(
                f"  {dim:<9} {hit:3d}/{len(self.universe[dim]):<3d} "
                f"({self.fraction(dim):6.1%})"
                + (f"  missing: {', '.join(missing)}" if missing else "")
            )
        return "\n".join(lines)
