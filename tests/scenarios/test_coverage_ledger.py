"""The campaign coverage ledger and its universes."""

import pytest

from repro.check import default_registry
from repro.scenarios.coverage import (
    DIMENSIONS,
    OPCODES,
    CampaignCoverage,
    backend_universe,
    pass_universe,
    rule_universe,
    solver_universe,
)


class TestUniverses:
    def test_rule_universe_is_the_registry(self):
        assert rule_universe() == frozenset(default_registry().codes())

    def test_solver_universe_spans_kernel_and_demoting(self):
        assert {"euler", "heun", "rk4"} <= set(solver_universe())
        assert "backward_euler" in solver_universe()

    def test_backend_universe_tracks_toolchain(self):
        backends = backend_universe()
        assert {"interpreter", "compiled-python", "batch"} <= set(backends)

    def test_pass_universe_nonempty(self):
        assert {"dce", "fold", "cse", "fuse"} <= set(pass_universe())

    def test_opcode_universe_contains_synthetic_leaves(self):
        assert "FoldedBlock" in OPCODES
        assert "FusedChain" in OPCODES


class TestLedger:
    def test_starts_empty(self):
        ledger = CampaignCoverage()
        for dim in DIMENSIONS:
            assert ledger.fraction(dim) == 0.0
            assert not ledger.complete(dim)

    def test_record_and_fraction(self):
        ledger = CampaignCoverage()
        ledger.record_solver("rk4")
        assert "rk4" not in ledger.unexercised("solvers")
        assert 0.0 < ledger.fraction("solvers") < 1.0

    def test_unknown_values_do_not_pollute(self):
        ledger = CampaignCoverage()
        ledger.record("solvers", ["not-a-solver"])
        assert ledger.fraction("solvers") == 0.0

    def test_unknown_dimension_raises(self):
        ledger = CampaignCoverage()
        with pytest.raises(KeyError):
            ledger.record("nope", ["x"])

    def test_merge_outcome(self):
        ledger = CampaignCoverage()
        ledger.merge_outcome(
            {"solvers": ["euler", "rk4"], "backends": ["interpreter"]}
        )
        assert "euler" not in ledger.unexercised("solvers")
        assert "interpreter" not in ledger.unexercised("backends")

    def test_complete_dimension(self):
        ledger = CampaignCoverage()
        ledger.record("solvers", solver_universe())
        assert ledger.complete("solvers")
        assert ledger.fraction("solvers") == 1.0
        assert ledger.unexercised("solvers") == frozenset()

    def test_as_dict_shape(self):
        ledger = CampaignCoverage()
        ledger.record_backend("interpreter")
        data = ledger.as_dict()
        assert set(data) == set(DIMENSIONS)
        entry = data["backends"]
        assert set(entry) == {
            "universe", "hit", "extra", "missing", "fraction",
        }
        assert "interpreter" in entry["hit"]
        assert entry["universe"] == sorted(entry["universe"])

    def test_render_mentions_every_dimension(self):
        text = CampaignCoverage().render()
        for dim in DIMENSIONS:
            assert dim in text
