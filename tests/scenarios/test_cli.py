"""The python -m repro.scenarios command line."""

import json

import pytest

from repro.scenarios.cli import main


class TestRun:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "run", "--count", "4", "--seed", "0", "--workers", "2",
            "--round-size", "4", "--t-end", "0.1",
            "--backend", "compiled-python",
            "--json-output", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "no divergences" in text
        data = json.loads(out.read_text())
        assert data["ok"] is True
        assert data["count"] == 4

    def test_mutated_run_exits_one(self, tmp_path, capsys):
        # seed_for(2) of master stream 0 is a dag scenario
        code = main([
            "run", "--count", "4", "--seed", "0", "--workers", "2",
            "--round-size", "4", "--t-end", "0.1",
            "--backend", "compiled-python",
            "--mutate-seed", "1013916571",
        ])
        assert code == 1
        text = capsys.readouterr().out
        assert "DIVERGENCES" in text
        assert "replay" in text


class TestReplay:
    def test_clean_seed_exits_zero(self, capsys):
        code = main(["replay", "--seed", "1013916571", "--t-end", "0.1"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_mutated_replay_exits_one(self, capsys):
        code = main([
            "replay", "--seed", "1013916571", "--t-end", "0.1",
            "--mutate",
        ])
        assert code == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_json_output(self, capsys):
        code = main([
            "replay", "--seed", "1013916571", "--t-end", "0.1", "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["spec"]["seed"] == 1013916571
        assert data["outcome"]["ok"] is True


class TestReport:
    def test_round_trip(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main([
            "run", "--count", "2", "--seed", "3", "--workers", "1",
            "--round-size", "2", "--t-end", "0.1", "--no-steer",
            "--backend", "compiled-python",
            "--json-output", str(out),
        ]) == 0
        capsys.readouterr()
        code = main(["report", str(out)])
        assert code == 0
        assert "campaign: 2 scenarios" in capsys.readouterr().out

    def test_no_command_exits_two(self, capsys):
        assert main([]) == 2
