"""Cross-process telemetry forwarding (``executor="process"``).

Before this PR, telemetry a job emitted inside a process worker landed
in a channel of the *worker's* copy of the handle and evaporated with
the process; worker-side metrics never reached the service registry.
The regression contract: events come back and replay onto the real
channel, metrics dumps merge, and both stay picklable end to end.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.service import SimulationService
from repro.service.jobs import BatchJob, SingleRunJob
from repro.service.telemetry import (
    BACKEND, CHUNK, PROGRESS, MetricsRegistry, TelemetryEvent,
)
from tests.resilience.conftest import build_control_model
from tests.service.test_jobs import loop_diagram


class TestEventPicklability:
    def test_event_with_numpy_payload_roundtrips(self):
        event = TelemetryEvent(
            kind=CHUNK, job_id="j-1", seq=3, t=0.5,
            payload={
                "rows": 10,
                "t_values": np.linspace(0.0, 1.0, 11),
            },
        )
        clone = pickle.loads(pickle.dumps(event))
        assert clone.kind == CHUNK and clone.seq == 3
        assert np.array_equal(
            clone.payload["t_values"], event.payload["t_values"],
        )


class TestMetricsDumpMerge:
    def test_counters_and_gauges(self):
        worker = MetricsRegistry()
        worker.counter("jobs.done").inc(3)
        worker.gauge("queue.depth").set(7)
        parent = MetricsRegistry()
        parent.counter("jobs.done").inc(1)
        parent.merge(worker.dump())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["jobs.done"] == 4
        assert snapshot["gauges"]["queue.depth"] == 7

    def test_histogram_window_merges(self):
        worker = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            worker.histogram("wall").observe(value)
        parent = MetricsRegistry()
        parent.histogram("wall").observe(10.0)
        parent.merge(worker.dump())
        stats = parent.snapshot()["histograms"]["wall"]
        assert stats["count"] == 4
        assert stats["max"] == 10.0
        assert stats["min"] == 1.0

    def test_dump_is_picklable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.5)
        dump = pickle.loads(pickle.dumps(registry.dump()))
        clone = MetricsRegistry()
        clone.merge(dump)
        assert clone.snapshot()["counters"]["c"] == 1


class TestProcessExecutorForwarding:
    def test_single_run_events_forwarded(self):
        with SimulationService(workers=1, executor="process") as service:
            handle = service.submit(SingleRunJob(
                model_factory=build_control_model,
                t_end=0.5, sync_interval=0.05,
            ))
            events = list(handle.stream())
            handle.result(30.0)
        kinds = [event.kind for event in events]
        assert PROGRESS in kinds, (
            "worker-process telemetry was dropped"
        )
        assert BACKEND in kinds
        # events carry the parent-visible job id, not a worker alias
        assert {event.job_id for event in events} == {handle.id}

    def test_batch_chunks_and_metrics_forwarded(self):
        with SimulationService(workers=1, executor="process") as service:
            handle = service.submit(BatchJob(
                diagram_factory=loop_diagram,
                n=4, t_end=0.2, h=1e-3, chunk_steps=50,
            ))
            events = list(handle.stream())
            handle.result(30.0)
            snapshot = service.metrics_snapshot()
        assert any(event.kind == CHUNK for event in events)
        # worker-side counters merged into the service registry
        assert snapshot["counters"]["backend.used.batch"] == 1

    def test_thread_executor_unchanged(self):
        with SimulationService(workers=1) as service:
            handle = service.submit(SingleRunJob(
                model_factory=build_control_model,
                t_end=0.2, sync_interval=0.05,
            ))
            events = list(handle.stream())
            handle.result(30.0)
        assert any(event.kind == PROGRESS for event in events)
