"""The ``native-batch`` backend: N-instance C kernels with sharding.

Takes the same optimized ExecutionPlan the scalar ``native-c`` path
lowers, but rendered by :func:`repro.codegen.cgen.render_batch_kernel`
into an N-instance translation unit: one contiguous row per instance
(``X[n][nx]``, ``P[n][np]``, ``H[n][nh]``), the instance loop inside the
compiled step/sync/record drivers, batch size a runtime argument.  One
artifact therefore serves any N — the cache key is the opt-aware plan
fingerprint plus solver/records/sweep-paths/:data:`KERNEL_VERSION`,
never the instance count.

Bitwise parity: per instance the kernel applies exactly the scalar
native kernel's arithmetic — same emitters, same solver-stage grouping,
same ``-ffp-contract=off`` build — and swept parameters load the same
double values from the ``P`` row that ``simulate_sequential`` folds into
its per-instance diagrams.  Sharding splits the instance axis into
contiguous row ranges: rows never interact (the whole point of a batch),
so any shard count produces identical bits.

Sharding: the ctypes call releases the GIL, so K shards submitted to a
thread pool run concurrently on K cores, each on a zero-copy row slice
(pointer offset into the shared matrices).  Every shard returns its
``(nrec, t, step, done)`` cursor and they must agree exactly — a cheap
invariant check that the shard decomposition stayed pure.

No compiler / unsupported solver / unlowerable model raises
:class:`BackendUnavailable`; the ladder demotes ``native-batch`` to the
NumPy ``batch`` program (metric + telemetry), never failing the run.
"""

from __future__ import annotations

import ctypes
import math
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.backend.base import (
    BackendError, BackendUnavailable, CompileRequest, ExecutionBackend,
    KERNEL_VERSION, kernel_solver_name, register_backend,
)
from repro.core.backend.batchentry import BatchProgramAdapter
from repro.core.backend.native import (
    build_artifact, default_cache_dir, has_c_compiler,
)

_DP = ctypes.POINTER(ctypes.c_double)

#: ceiling on the one-shard-per-core default (a 128-core box should not
#: spawn 128 Python threads for a 4-row batch)
MAX_DEFAULT_SHARDS = 8


def default_shards() -> int:
    """Shard count when the caller does not pin one:
    ``$REPRO_NATIVE_BATCH_SHARDS`` or one per core (capped)."""
    raw = os.environ.get("REPRO_NATIVE_BATCH_SHARDS", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value > 0:
            return value
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_SHARDS))


def shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``n`` rows into ``shards`` contiguous ``[lo, hi)`` ranges
    (the first ``n % shards`` ranges take the extra row)."""
    shards = max(1, min(int(shards), int(n)))
    base, extra = divmod(n, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def batch_artifact_key(model, solver_name: str, sweep_paths) -> str:
    """The on-disk artifact identity.  Deliberately N-independent: the
    batch size is a runtime argument of the kernel, so one compile
    serves every instance count (and any x0 override — initial state is
    passed in, not baked)."""
    return model.plan.fingerprint(extra={
        "backend": "native-batch",
        "solver": solver_name,
        "records": tuple(label for label, __ in model.records),
        "sweep_paths": tuple(sweep_paths),
        "kernel": KERNEL_VERSION,
    })


def _load_batch(so_path: Path) -> ctypes.CDLL:
    lib = ctypes.CDLL(str(so_path))
    lib.batch_sync.argtypes = [
        ctypes.c_double, ctypes.c_long, _DP, _DP, _DP,
    ]
    lib.batch_sync.restype = None
    lib.batch_step.argtypes = [
        ctypes.c_double, ctypes.c_double, ctypes.c_long, _DP, _DP, _DP,
    ]
    lib.batch_step.restype = None
    lib.batch_outvals.argtypes = [
        ctypes.c_double, ctypes.c_long, _DP, _DP, _DP, _DP,
    ]
    lib.batch_outvals.restype = None
    lib.batch_run.argtypes = [
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_int,
        ctypes.c_long, _DP, _DP, _DP,
        _DP, ctypes.c_int, _DP, ctypes.c_long, ctypes.c_long,
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_long),
        ctypes.POINTER(ctypes.c_int),
    ]
    lib.batch_run.restype = ctypes.c_long
    return lib


def _ptr_at(array: np.ndarray, offset: int):
    """A double* into ``array`` at element ``offset`` (row slicing
    without copies — the shard contract)."""
    return ctypes.cast(
        array.ctypes.data + offset * array.itemsize, _DP
    )


class NativeBatchKernel:
    """One loaded batch artifact bound to one simulator's matrices.

    Owns the per-instance parameter matrix (``(n, NPS)`` row-major, the
    transpose of the simulator's param-major ``P``) and the held-register
    matrix ``(n, NHS)``; the state matrix stays caller-owned and is
    mutated in place by :meth:`run_segment`.
    """

    def __init__(
        self,
        program,
        solver_name: str,
        n: int,
        P: np.ndarray,
        shards: Optional[int] = None,
        cache_dir: Optional[Path] = None,
    ) -> None:
        model = program.native_model
        if model is None:
            raise BackendUnavailable(
                "batch program was compiled without the native lowering "
                "(compile_batch_program(..., native=True))"
            )
        if not has_c_compiler():
            raise BackendUnavailable(
                "no C compiler on this host (checked $CC, cc, gcc, clang)"
            )
        from repro.codegen.cgen import render_batch_kernel
        from repro.codegen.common import CodegenError
        from repro.core.backend.pykernel import kernel_tables

        n_params = len(program.sweep_paths)
        try:
            tables = kernel_tables(model)
            source = render_batch_kernel(model, solver_name, n_params)
        except CodegenError as exc:
            raise BackendUnavailable(str(exc)) from exc
        for path, var in zip(program.sweep_paths, range(n_params)):
            if f"P[{var}]" not in source:
                raise BackendUnavailable(
                    f"sweep {path!r}: symbol folded out of the C lowering"
                )
        key = batch_artifact_key(model, solver_name, program.sweep_paths)
        so_path, cache_hit = build_artifact(
            source, key, cache_dir or default_cache_dir()
        )
        try:
            self._lib = _load_batch(so_path)
        except OSError as exc:
            raise BackendUnavailable(
                f"could not load batch artifact {so_path}: {exc}"
            ) from exc

        self.solver_name = solver_name
        self.source = source
        self.so_path = so_path
        self.cache_hit = cache_hit
        self.n = int(n)
        self.n_states = tables["n_states"]
        self.nxs = max(1, self.n_states)
        self.n_rec = len(tables["record_exprs"])
        self.recn = max(1, self.n_rec)
        self.held_names: List[str] = [name for name, __ in tables["held"]]
        self.nhs = max(1, len(self.held_names))
        nps = max(1, n_params)
        if n_params:
            if P.shape != (n_params, self.n):
                raise BackendError(
                    f"P must be ({n_params}, {self.n}), got {P.shape}"
                )
            self._P = np.ascontiguousarray(P.T, dtype=float)
        else:
            self._P = np.zeros((self.n, nps), dtype=float)
        self.nps = nps
        held_row = np.asarray(
            [value for __, value in tables["held"]] or [0.0], dtype=float
        )
        self._H = np.tile(held_row, (self.n, 1))
        self._x_dummy = (
            np.zeros((self.n, 1), dtype=float)
            if self.n_states == 0 else None
        )
        self.shards = max(
            1, min(int(shards) if shards else default_shards(), self.n)
        )

    # ------------------------------------------------------------------
    # held registers (checkpoint/resume interop with the numpy program)
    # ------------------------------------------------------------------
    def held_state(self) -> Dict[str, np.ndarray]:
        return {
            name: self._H[:, i].copy()
            for i, name in enumerate(self.held_names)
        }

    def restore_held(self, values: Mapping[str, Any]) -> None:
        for i, name in enumerate(self.held_names):
            self._H[:, i] = np.asarray(values[name], dtype=float)

    # ------------------------------------------------------------------
    def _state_buffer(self, x: np.ndarray) -> np.ndarray:
        if self._x_dummy is not None:
            return self._x_dummy
        if (
            x.dtype != np.float64
            or not x.flags.c_contiguous
            or x.shape != (self.n, self.n_states)
        ):
            raise BackendError(
                f"state matrix must be C-contiguous float64 "
                f"({self.n}, {self.n_states}); got {x.dtype} {x.shape}"
            )
        return x

    def run_segment(
        self,
        t: float,
        t_end: float,
        h: float,
        record_every: int,
        step: int,
        max_steps: int,
        cold: bool,
        x: np.ndarray,
    ) -> Tuple[float, int, bool, np.ndarray, np.ndarray, int]:
        """Advance every instance until ``t_end`` or ``max_steps`` minor
        steps (0: unlimited), mutating ``x``/``H`` in place.

        Returns ``(t, step, done, rec_t, rec_vals, taken)`` with
        ``rec_t`` shape ``(nrec,)`` and ``rec_vals`` shape
        ``(nrec, n, RECN)``.
        """
        xb = self._state_buffer(x)
        if max_steps > 0:
            cap = max_steps // max(1, record_every) + 2
        else:
            iters = (
                int(math.floor(max(0.0, t_end - t) / h)) + 2
                if h > 0 else 2
            )
            cap = iters // max(1, record_every) + 3
        rec_t = np.empty(cap, dtype=float)
        rec = np.empty((cap, self.n, self.recn), dtype=float)
        rec_stride = self.n * self.recn
        bounds = shard_bounds(self.n, self.shards)

        def run_rows(lo: int, hi: int, write_t: bool):
            t_out = ctypes.c_double()
            step_out = ctypes.c_long()
            done_out = ctypes.c_int()
            nrec = self._lib.batch_run(
                float(t), float(t_end), float(h),
                int(record_every), int(step), int(max_steps),
                1 if cold else 0, hi - lo,
                _ptr_at(xb, lo * xb.shape[1]),
                _ptr_at(self._P, lo * self.nps),
                _ptr_at(self._H, lo * self.nhs),
                _ptr_at(rec_t, 0), 1 if write_t else 0,
                _ptr_at(rec, lo * self.recn), rec_stride, cap,
                ctypes.byref(t_out), ctypes.byref(step_out),
                ctypes.byref(done_out),
            )
            return (
                int(nrec), t_out.value, int(step_out.value),
                int(done_out.value),
            )

        if len(bounds) == 1:
            lo, hi = bounds[0]
            cursors = [run_rows(lo, hi, True)]
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(bounds)) as pool:
                futures = [
                    pool.submit(run_rows, lo, hi, index == 0)
                    for index, (lo, hi) in enumerate(bounds)
                ]
                cursors = [future.result() for future in futures]
        first = cursors[0]
        if any(cursor != first for cursor in cursors[1:]):
            raise BackendError(
                f"shards diverged on the shared cursor: {cursors}"
            )
        nrec, t_new, step_new, done = first
        if nrec < 0:
            raise BackendError(
                f"native batch record buffer overflow (cap={cap})"
            )
        return (
            t_new, step_new, bool(done),
            rec_t[:nrec], rec[:nrec], step_new - int(step),
        )


class NativeBatchAdapter(BatchProgramAdapter):
    """The uniform program surface over a native-backed simulator —
    cursor/snapshot semantics are inherited verbatim, only the registry
    name differs (the simulator routes execution to the kernel)."""

    backend = "native-batch"


class NativeBatchBackend(ExecutionBackend):
    name = "native-batch"

    def compile(self, request: CompileRequest) -> NativeBatchAdapter:
        from repro.core.batch import BatchError, BatchSimulator

        if request.diagram is None:
            raise BackendError(
                "the native-batch backend compiles from a diagram (sweep "
                "paths and record labels resolve against it)"
            )
        solver_name = kernel_solver_name(request)
        if not has_c_compiler():
            raise BackendUnavailable(
                "no C compiler on this host (checked $CC, cc, gcc, clang)"
            )
        try:
            simulator = BatchSimulator(
                diagram=request.diagram,
                n=request.n,
                solver=solver_name,
                h=request.h,
                records=request.records,
                sweeps=request.sweeps,
                x0=request.x0,
                opt_level=request.opt_level,
                opt_config=request.opt_config,
                backend="native-batch",
                shards=request.shards,
                native_cache_dir=request.cache_dir,
            )
        except BatchError as exc:
            raise BackendUnavailable(str(exc)) from exc
        if simulator.backend_name != "native-batch":
            raise BackendUnavailable(
                simulator.backend_fallback_reason
                or "native batch kernel unavailable"
            )
        return NativeBatchAdapter(simulator)


register_backend(NativeBatchBackend())
