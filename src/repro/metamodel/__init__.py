"""A small UML metamodel, profiles and diagram renderers.

The paper's artefacts are *modelling-language* artefacts: Table 1 defines
eight new stereotypes, Figure 1 a class diagram (State + Strategy
patterns), Figures 2 and 3 the abstract syntax and structure of the
extension.  This package makes those artefacts machine-checked:

* :mod:`repro.metamodel.elements` — classes, attributes, operations,
  associations, generalisations, packages;
* :mod:`repro.metamodel.stereotypes` — stereotype definitions, the UML-RT
  profile, the paper's extension profile and the Table-1 mapping with a
  registry tying every stereotype to its implementation class in this
  library;
* :mod:`repro.metamodel.profile` — applying stereotypes to elements with
  base-metaclass checking;
* :mod:`repro.metamodel.xmi` — XMI-flavoured XML serialisation with
  round-trip support;
* :mod:`repro.metamodel.classdiagram` — ASCII class-diagram rendering and
  the live Figure-1 package;
* :mod:`repro.metamodel.structure` — ASCII structure diagrams of capsule/
  streamer instances and the Figure-2/Figure-3 example models.
"""

from repro.metamodel.elements import (
    Association,
    Attribute,
    Classifier,
    Generalization,
    Multiplicity,
    Operation,
    Package,
)
from repro.metamodel.stereotypes import (
    EXTENSION_PROFILE,
    TABLE1,
    UMLRT_PROFILE,
    StereotypeDef,
    implementation_of,
    table1_rows,
    render_table1,
)
from repro.metamodel.profile import Profile, ProfileError
from repro.metamodel.export import model_stereotype_census, model_to_package
from repro.metamodel.xmi import from_xmi, to_xmi
from repro.metamodel.classdiagram import figure1_package, render_class_diagram
from repro.metamodel.structure import (
    figure2_streamer,
    figure3_capsule_model,
    render_capsule_structure,
    render_streamer_structure,
)

__all__ = [
    "Association",
    "Attribute",
    "Classifier",
    "EXTENSION_PROFILE",
    "Generalization",
    "Multiplicity",
    "Operation",
    "Package",
    "Profile",
    "ProfileError",
    "StereotypeDef",
    "TABLE1",
    "UMLRT_PROFILE",
    "figure1_package",
    "figure2_streamer",
    "figure3_capsule_model",
    "from_xmi",
    "implementation_of",
    "model_stereotype_census",
    "model_to_package",
    "render_capsule_structure",
    "render_class_diagram",
    "render_streamer_structure",
    "render_table1",
    "table1_rows",
    "to_xmi",
]
