"""Protocols, roles, conjugation and compatibility."""

import pytest

from repro.umlrt.protocol import Protocol, ProtocolError, ProtocolRegistry


@pytest.fixture
def ctrl():
    return Protocol.define(
        "Ctrl", outgoing=("start", "stop"), incoming=("done", "failed")
    )


class TestProtocol:
    def test_define(self, ctrl):
        assert ctrl.outgoing_names == {"start", "stop"}
        assert ctrl.incoming_names == {"done", "failed"}

    def test_duplicate_signals_rejected(self):
        with pytest.raises(ProtocolError):
            Protocol.define("Bad", outgoing=("a", "a"))
        with pytest.raises(ProtocolError):
            Protocol.define("Bad", incoming=("b", "b"))

    def test_symmetric(self):
        sym = Protocol.define("Sym", outgoing=("msg",), incoming=("msg",))
        assert sym.is_symmetric()

    def test_asymmetric(self, ctrl):
        assert not ctrl.is_symmetric()


class TestProtocolRole:
    def test_base_sends_outgoing(self, ctrl):
        base = ctrl.base()
        assert base.sends == {"start", "stop"}
        assert base.receives == {"done", "failed"}

    def test_conjugate_swaps(self, ctrl):
        conj = ctrl.conjugate()
        assert conj.sends == {"done", "failed"}
        assert conj.receives == {"start", "stop"}

    def test_double_conjugation_is_identity(self, ctrl):
        assert ctrl.base().conjugate().conjugate() == ctrl.base()

    def test_role_names(self, ctrl):
        assert ctrl.base().name == "Ctrl"
        assert ctrl.conjugate().name == "Ctrl~"

    def test_base_compatible_with_conjugate(self, ctrl):
        assert ctrl.base().compatible_with(ctrl.conjugate())
        assert ctrl.conjugate().compatible_with(ctrl.base())

    def test_base_incompatible_with_base(self, ctrl):
        assert not ctrl.base().compatible_with(ctrl.base())

    def test_symmetric_self_compatible(self):
        sym = Protocol.define("Sym", outgoing=("m",), incoming=("m",))
        assert sym.base().compatible_with(sym.base())

    def test_subset_compatibility(self):
        """A sender of fewer signals may drive a richer receiver."""
        small = Protocol.define("Small", outgoing=("a",))
        big = Protocol.define("Big", incoming=("a", "b"))
        assert small.base().compatible_with(big.base())

    def test_superset_incompatible(self):
        big = Protocol.define("Big2", outgoing=("a", "b"))
        small = Protocol.define("Small2", incoming=("a",))
        assert not big.base().compatible_with(small.base())


class TestProtocolRegistry:
    def test_register_and_get(self, ctrl):
        registry = ProtocolRegistry()
        registry.register(ctrl)
        assert registry.get("Ctrl") is ctrl
        assert "Ctrl" in registry
        assert len(registry) == 1

    def test_idempotent_reregistration(self, ctrl):
        registry = ProtocolRegistry()
        registry.register(ctrl)
        registry.register(ctrl)
        assert len(registry) == 1

    def test_conflicting_registration_rejected(self, ctrl):
        registry = ProtocolRegistry()
        registry.register(ctrl)
        other = Protocol.define("Ctrl", outgoing=("other",))
        with pytest.raises(ProtocolError):
            registry.register(other)

    def test_unknown_protocol(self):
        registry = ProtocolRegistry()
        with pytest.raises(ProtocolError):
            registry.get("nope")

    def test_names_sorted(self, ctrl):
        registry = ProtocolRegistry()
        registry.register(ctrl)
        registry.register(Protocol.define("Abc"))
        assert registry.names() == ("Abc", "Ctrl")
