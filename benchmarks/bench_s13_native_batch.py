"""Experiment S13 — native-batch per-instance step rate and sharding.

The S4 workload shape at production scale: N=256 instances of the
204-block loop (`pid_plant_diagram(200)`) with one swept gain, run by
(a) the vectorised NumPy batch program and (b) the N-instance C kernel
(``native-batch``).  The NumPy program pays one ufunc dispatch per
array op per minor step — at 200+ ops that is pure Python-side
overhead — while the C kernel folds the whole step into one compiled
loop over instances, so the gap is the headline of this experiment.

Acceptance bar: ``native-batch`` >= 50x the NumPy batch per-instance
step rate at N=256, with the two trajectories bitwise identical (O0).
The instance-axis shard curve (1/2/4 shards) is recorded alongside;
near-linear scaling is asserted only where the host actually has the
cores (CI's single-core runners record the curve without judging it).

Headline rates land in ``BENCH_S13.json``.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import pid_plant_diagram
from repro.core.backend import has_c_compiler
from repro.core.batch import BatchSimulator

PAD = 200          # 4 rig blocks + 200 pad gains = the 204-block loop
N = 256
H = 2e-3
T_END = 0.5        # 250 minor steps x 256 instances per timed run
T_NUMPY = 0.1      # the NumPy program is ~2 orders slower; sample it
T_PARITY = 0.1
RECORD_EVERY = 16
SHARD_CURVE = (1, 2, 4)

pytestmark = pytest.mark.skipif(
    not has_c_compiler(), reason="S13 needs a C compiler"
)


def sweep():
    return {"pad0.k": np.linspace(0.9, 1.1, N)}


def build(backend, shards=None):
    sim = BatchSimulator(
        pid_plant_diagram(PAD), n=N, solver="rk4", h=H,
        sweeps=sweep(), backend=backend, cache=False, shards=shards,
    )
    assert sim.backend_name == (backend or "batch"), \
        sim.backend_fallback_reason
    return sim


def per_instance_rate(sim, t_end, repeats=1):
    """Instance-steps per second, warmed, best of ``repeats``."""
    sim.run(0.02)
    best = 0.0
    for __ in range(repeats):
        start = time.perf_counter()
        sim.run(t_end, record_every=RECORD_EVERY)
        wall = time.perf_counter() - start
        best = max(best, (t_end / H) * N / wall)
    return best


def test_s13_native_batch_step_rate(report, bench_json):
    # parity gate: rates only count if the kernels agree bitwise
    numpy_result = build(None).run(T_PARITY, record_every=RECORD_EVERY)
    native_result = build("native-batch").run(
        T_PARITY, record_every=RECORD_EVERY,
    )
    assert np.array_equal(numpy_result.t, native_result.t)
    for label in numpy_result.series:
        assert np.array_equal(
            numpy_result.series[label], native_result.series[label],
        ), label
    assert np.array_equal(
        numpy_result.final_states, native_result.final_states,
    )

    numpy_rate = per_instance_rate(build(None), T_NUMPY)
    native_rate = per_instance_rate(build("native-batch"), T_END)
    speedup = native_rate / numpy_rate

    cores = os.cpu_count() or 1
    shard_rates = {}
    for shards in SHARD_CURVE:
        shard_rates[shards] = per_instance_rate(
            build("native-batch", shards=shards), T_END, repeats=3,
        )

    lines = [
        f"numpy batch   : {numpy_rate:12.0f} inst-steps/s",
        f"native batch  : {native_rate:12.0f} inst-steps/s "
        f"({speedup:.1f}x)",
    ]
    for shards in SHARD_CURVE:
        ratio = shard_rates[shards] / shard_rates[SHARD_CURVE[0]]
        lines.append(
            f"native {shards} shard{'s' if shards > 1 else ' '} "
            f": {shard_rates[shards]:12.0f} inst-steps/s "
            f"({ratio:.2f}x vs 1 shard)"
        )
    lines.append(f"host cores    : {cores}")
    report(
        f"S13: native-batch on the {PAD + 4}-block loop "
        f"(N={N}, rk4, h={H})",
        lines,
    )

    assert speedup >= 50.0, (
        f"native-batch only {speedup:.1f}x the NumPy batch per-instance "
        "step rate; acceptance bar is 50x"
    )
    # sharding must never collapse throughput (thread overhead bounded)…
    for shards in SHARD_CURVE[1:]:
        assert shard_rates[shards] >= 0.5 * shard_rates[1], (
            f"{shards} shards fell below half the 1-shard rate: "
            f"{shard_rates}"
        )
    # …and where the host has the cores, it must actually buy them
    for shards in SHARD_CURVE[1:]:
        if cores >= shards:
            assert shard_rates[shards] >= 0.6 * shards * shard_rates[1] \
                / max(1, SHARD_CURVE[0]), (
                    f"{shards} shards on {cores} cores reached only "
                    f"{shard_rates[shards] / shard_rates[1]:.2f}x; "
                    "expected near-linear (>= 0.6x per core)"
                )

    bench_json("s13", {
        "blocks": PAD + 4,
        "instances": N,
        "numpy_inst_steps_per_s": numpy_rate,
        "native_inst_steps_per_s": native_rate,
        "native_speedup": speedup,
        "shard_curve": {
            str(shards): shard_rates[shards] for shards in SHARD_CURVE
        },
        "cores": cores,
        "bitwise_identical": True,
    })
