"""Shared cluster-test fixtures: a small live pool is expensive to
spawn (fresh interpreters), so module-scoped pools are reused."""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

from repro.cluster.pool import ClusterConfig, WorkerPool


@pytest.fixture(scope="module")
def pool2():
    """A 2-worker pool over a throwaway store, shared per test module."""
    with tempfile.TemporaryDirectory(prefix="repro-clt-") as root:
        pool = WorkerPool(Path(root), ClusterConfig(workers=2))
        try:
            yield pool
        finally:
            pool.shutdown()
