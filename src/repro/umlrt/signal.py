"""Signals and messages.

In UML-RT all inter-capsule communication is asynchronous message passing.
A *signal* is the static declaration (a name plus an optional payload
contract); a *message* is a signal instance in flight, carrying payload
data, a priority, a timestamp and the port it arrived on.

Priorities follow the ROOM service library: ``PANIC`` preempts everything,
``BACKGROUND`` runs only when nothing else is pending.  Within one priority
messages are dispatched in FIFO order, which together with the logical
clock of :class:`repro.umlrt.runtime.RTSystem` makes runs deterministic.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class Priority(enum.IntEnum):
    """Message dispatch priority, highest value dispatched first.

    The five levels mirror the ROOM/ObjecTime service library.  Timer
    timeout messages are delivered at ``HIGH`` by default so that timing
    behaviour degrades gracefully under load.
    """

    BACKGROUND = 0
    LOW = 1
    GENERAL = 2
    HIGH = 3
    PANIC = 4


@dataclass(frozen=True)
class Signal:
    """A named signal declaration.

    Parameters
    ----------
    name:
        Signal name, unique within its protocol.
    payload_doc:
        Optional human-readable description of the expected payload.
    """

    name: str
    payload_doc: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid signal name: {self.name!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


_MESSAGE_SEQ = itertools.count()


@dataclass
class Message:
    """A signal instance in flight.

    Messages are ordered by ``(-priority, timestamp, seq)``: higher priority
    first, then earlier logical delivery time, then send order.  ``seq`` is a
    process-wide monotone counter that breaks all remaining ties, so message
    ordering is a strict total order and runs are reproducible.
    """

    signal: str
    data: Any = None
    priority: Priority = Priority.GENERAL
    timestamp: float = 0.0
    port: Optional[Any] = None  # receiving Port, set on delivery
    seq: int = field(default_factory=lambda: next(_MESSAGE_SEQ))

    def sort_key(self) -> tuple:
        return (-int(self.priority), self.timestamp, self.seq)

    def is_timeout(self) -> bool:
        """True if this message is a timing-service timeout."""
        return self.signal == TIMEOUT_SIGNAL.name


#: Distinguished signal delivered by the timing service.
TIMEOUT_SIGNAL = Signal("timeout", "timing service expiry; data = TimerHandle")

#: Distinguished signal delivered to a capsule when it is incarnated.
INIT_SIGNAL = Signal("rtBound", "frame service initialisation")
