"""Batch experiment runner: parameter sweeps over model factories.

Benchmarks and EXPERIMENTS.md-style studies share a shape: build a model
from parameters, simulate, extract metrics, tabulate.  ``sweep`` runs
that loop over a parameter grid; each run gets a *fresh* model from the
factory, so runs are independent and order-insensitive.

    grid = {"kp": [1.0, 2.0, 4.0], "ki": [0.5, 1.0]}
    results = sweep(
        factory=make_model,              # (kp=..., ki=...) -> HybridModel
        grid=grid,
        until=10.0,
        metrics={"settle": lambda m: step_metrics(
            m.probe("y"), 1.0).settling_time},
    )
    print(render_sweep(results))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.core.model import HybridModel

ModelFactory = Callable[..., HybridModel]
Metric = Callable[[HybridModel], Any]


class ExperimentError(Exception):
    """Raised for empty grids or misbehaving factories."""


@dataclass
class SweepRun:
    """One grid point: its parameters, metrics and outcome."""

    params: Dict[str, Any]
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def grid_points(grid: Mapping[str, Iterable[Any]]) -> List[Dict[str, Any]]:
    """The cartesian product of a parameter grid, as dicts."""
    if not grid:
        raise ExperimentError("empty parameter grid")
    names = list(grid)
    values = [list(grid[name]) for name in names]
    for name, column in zip(names, values):
        if not column:
            raise ExperimentError(f"grid axis {name!r} has no values")
    return [
        dict(zip(names, combo)) for combo in itertools.product(*values)
    ]


def sweep(
    factory: ModelFactory,
    grid: Mapping[str, Iterable[Any]],
    until: float,
    metrics: Mapping[str, Metric],
    sync_interval: float = 0.01,
    keep_going: bool = True,
    **run_kwargs: Any,
) -> List[SweepRun]:
    """Run ``factory(**params)`` for every grid point and collect metrics.

    With ``keep_going`` (default) a failing run records its error and the
    sweep continues; otherwise the first failure raises.
    """
    runs: List[SweepRun] = []
    for params in grid_points(grid):
        run = SweepRun(params=dict(params))
        runs.append(run)
        try:
            model = factory(**params)
            model.run(until=until, sync_interval=sync_interval,
                      **run_kwargs)
            for name, metric in metrics.items():
                run.metrics[name] = metric(model)
        except Exception as exc:  # noqa: BLE001 - reported per-run
            if not keep_going:
                raise
            run.error = f"{type(exc).__name__}: {exc}"
    return runs


def best_run(
    runs: List[SweepRun],
    metric: str,
    minimise: bool = True,
) -> SweepRun:
    """The successful run with the best value of ``metric``.

    Runs whose metric is ``None`` (e.g. a settling time that never
    settled) are skipped.
    """
    candidates = [
        run for run in runs
        if run.ok and run.metrics.get(metric) is not None
    ]
    if not candidates:
        raise ExperimentError(
            f"no successful runs carry metric {metric!r}"
        )
    return (min if minimise else max)(
        candidates, key=lambda run: run.metrics[metric]
    )


def render_sweep(runs: List[SweepRun]) -> str:
    """A printable table: one row per grid point."""
    if not runs:
        return "(empty sweep)"
    param_names = list(runs[0].params)
    metric_names = sorted({
        name for run in runs for name in run.metrics
    })
    header = param_names + metric_names + ["status"]
    widths = [max(10, len(name) + 2) for name in header]
    lines = ["".join(
        name.rjust(width) for name, width in zip(header, widths)
    )]
    for run in runs:
        cells = [str(run.params[name]) for name in param_names]
        for name in metric_names:
            value = run.metrics.get(name)
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        cells.append("ok" if run.ok else "FAILED")
        lines.append("".join(
            cell.rjust(width) for cell, width in zip(cells, widths)
        ))
    failed = [run for run in runs if not run.ok]
    for run in failed:
        lines.append(f"  {run.params}: {run.error}")
    return "\n".join(lines)
