"""Structure diagrams: Figures 2 and 3 as live, rendered models.

* **Figure 2** ("abstract syntax of streamers"): a top streamer containing
  three sub-streamers and a solver, with DPorts (circle, drawn ``(o)``),
  one SPort (square, drawn ``[#]``), internal flows and one relay.
* **Figure 3** ("structure of extensions"): a top capsule containing a
  sub-capsule and two streamers.

Both builders return *executable* models — the Figure-2 streamer network
actually integrates, and the Figure-3 model runs under the hybrid
scheduler — so the figures double as integration tests and benchmarks
(F2/F3).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.dport import Direction
from repro.core.flowtype import SCALAR
from repro.core.model import HybridModel
from repro.core.streamer import Streamer
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.statemachine import StateMachine


# ----------------------------------------------------------------------
# Figure 2: abstract syntax of streamers
# ----------------------------------------------------------------------
FIGURE2_PROTOCOL = Protocol.define(
    "StreamerCtrl", outgoing=("status",), incoming=("setGain",)
)


class _SourceSub(Streamer):
    """Sub-streamer 1: a unit-amplitude source (sin t)."""

    def __init__(self, name: str = "sub1") -> None:
        super().__init__(name)
        self.add_out("out", SCALAR)

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", float(np.sin(t)))


class _GainSub(Streamer):
    """Sub-streamer 2: gain, tunable over the top streamer's SPort."""

    direct_feedthrough = True

    def __init__(self, name: str = "sub2") -> None:
        super().__init__(name)
        self.add_in("in", SCALAR)
        self.add_out("out", SCALAR)
        self.params["k"] = 1.0

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", self.params["k"] * self.in_scalar("in"))


class _IntegratorSub(Streamer):
    """Sub-streamer 3: an integrator (the solver has real work to do)."""

    state_size = 1

    def __init__(self, name: str = "sub3") -> None:
        super().__init__(name)
        self.add_in("in", SCALAR)
        self.add_out("out", SCALAR)

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        return np.array([self.in_scalar("in")])

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", state[0])


class Figure2Streamer(Streamer):
    """The top streamer of Figure 2.

    Structure (paper Figure 2): a top streamer with an input DPort and an
    SPort on its boundary, three sub-streamers inside, flows between them
    and one relay splitting sub2's output towards both sub3 and the top
    streamer's output DPort.
    """

    def __init__(self, name: str = "top") -> None:
        super().__init__(name)
        # boundary ports
        self.add_boundary("din", Direction.IN, SCALAR)
        self.add_boundary("dout", Direction.OUT, SCALAR)
        self.add_sport("sctrl", FIGURE2_PROTOCOL.base())
        # sub-streamers
        sub1 = self.add_sub(_SourceSub("sub1"))
        sub2 = self.add_sub(_GainSub("sub2"))
        sub3 = self.add_sub(_IntegratorSub("sub3"))
        # flows + relay (W2: one flow in, two similar flows out)
        self.add_flow(sub1.dport("out"), sub2.dport("in"))
        relay = self.add_relay("split", SCALAR)
        self.add_flow(sub2.dport("out"), relay.input)
        self.add_flow(relay.out_a, sub3.dport("in"))
        self.add_flow(relay.out_b, self.dport("dout"))

    def handle_signal(self, sport_name: str, message) -> None:
        if message.signal == "setGain":
            self.sub("sub2").params["k"] = float(message.data)
            self.sport("sctrl").send("status", self.sub("sub2").params["k"])


def figure2_streamer() -> Figure2Streamer:
    """The exact Figure-2 example structure, ready to simulate."""
    return Figure2Streamer("top")


# ----------------------------------------------------------------------
# Figure 3: structure of extensions
# ----------------------------------------------------------------------
FIGURE3_PROTOCOL = Protocol.define(
    "SupCtrl", outgoing=("start", "stop"), incoming=("done",)
)


class _Fig3SubCapsule(Capsule):
    """The sub-capsule of Figure 3: a trivial timed supervisor."""

    def build_behaviour(self) -> StateMachine:
        sm = StateMachine("sub")
        sm.add_state("idle")
        sm.add_state("running")
        sm.initial("idle")
        sm.add_transition("idle", "running", trigger=("timer", "timeout"))
        return sm

    def on_start(self) -> None:
        self.inform_in(0.5)


class _Fig3Streamer(Streamer):
    """One of the two streamers inside the Figure-3 top capsule."""

    state_size = 1
    direct_feedthrough = False

    def __init__(self, name: str, rate: float) -> None:
        super().__init__(name)
        self.add_out("y", SCALAR)
        self.add_in("u", SCALAR)
        self.params["rate"] = rate
        self.params["running"] = 0.0
        self.add_sport("ctrl", FIGURE3_PROTOCOL.conjugate())

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        return np.array([
            self.params["running"]
            * (self.params["rate"] - state[0] + self.in_scalar("u"))
        ])

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("y", state[0])

    def handle_signal(self, sport_name: str, message) -> None:
        if message.signal == "start":
            self.params["running"] = 1.0
            self.sport("ctrl").send("done")
        elif message.signal == "stop":
            self.params["running"] = 0.0


class Figure3TopCapsule(Capsule):
    """The top capsule of Figure 3: one sub-capsule, two streamers.

    Capsules cannot *own* streamers directly in the implementation (they
    live on streamer threads); ownership is expressed at the model level,
    which :func:`figure3_capsule_model` assembles: the top capsule, its
    sub-capsule part, the two streamers, and the SPort bridges between
    them — exactly the containment picture of Figure 3.
    """

    def build_structure(self) -> None:
        self.create_part("sub", _Fig3SubCapsule)
        self.create_port("toS1", FIGURE3_PROTOCOL.base())
        self.create_port("toS2", FIGURE3_PROTOCOL.base())

    def build_behaviour(self) -> StateMachine:
        sm = StateMachine("top")
        sm.add_state("supervising")
        sm.initial("supervising")
        sm.add_transition(
            "supervising", trigger=("toS1", "done"), internal=True,
            action=lambda c, m: c.acks.__setitem__("s1", True),
        )
        sm.add_transition(
            "supervising", trigger=("toS2", "done"), internal=True,
            action=lambda c, m: c.acks.__setitem__("s2", True),
        )
        return sm

    def __init__(self, instance_name: str = "topCapsule") -> None:
        super().__init__(instance_name)
        self.acks = {"s1": False, "s2": False}

    def on_start(self) -> None:
        self.send("toS1", "start")
        self.send("toS2", "start")


def figure3_capsule_model() -> Tuple[HybridModel, Figure3TopCapsule]:
    """Assemble the complete Figure-3 model (capsule + 2 streamers)."""
    model = HybridModel("figure3")
    top = Figure3TopCapsule("topCapsule")
    model.add_capsule(top)
    s1 = model.add_streamer(_Fig3Streamer("streamer1", rate=1.0))
    s2 = model.add_streamer(_Fig3Streamer("streamer2", rate=2.0))
    model.add_flow(s1.dport("y"), s2.dport("u"))
    model.connect_sport(top.port("toS1"), s1.sport("ctrl"))
    model.connect_sport(top.port("toS2"), s2.sport("ctrl"))
    model.add_probe("y1", s1.dport("y"))
    model.add_probe("y2", s2.dport("y"))
    return model, top


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_streamer_structure(streamer: Streamer, indent: int = 0) -> str:
    """ASCII structure of a streamer: DPorts ``(o)``, SPorts ``[#]``."""
    pad = "  " * indent
    lines: List[str] = []
    ports = " ".join(
        f"(o {p.name}:{p.direction.value})" for p in streamer.dports.values()
    )
    sports = " ".join(f"[# {s.name}]" for s in streamer.sports.values())
    kind = "streamer" if streamer.subs or not indent else "sub-streamer"
    lines.append(
        f"{pad}+-- {kind} {streamer.name} {ports} {sports}".rstrip()
    )
    for relay in streamer.relays.values():
        lines.append(f"{pad}    >- relay {relay.name}")
    for flow in streamer.flows:
        lines.append(
            f"{pad}    -> flow {flow.source.qualified_name} => "
            f"{flow.target.qualified_name}"
        )
    for sub in streamer.subs.values():
        lines.append(render_streamer_structure(sub, indent + 1))
    if not streamer.subs:
        solver = (
            streamer.thread.binding.strategy_name
            if streamer.thread is not None
            else "<unbound>"
        )
        lines.append(f"{pad}    :: solver {solver}")
    return "\n".join(lines)


def render_capsule_structure(capsule: Capsule, indent: int = 0) -> str:
    """ASCII structure of a capsule tree with its ports and parts."""
    pad = "  " * indent
    ports = " ".join(
        f"[{p.name}:{p.role.name}]" for p in capsule.ports.values()
    )
    lines = [f"{pad}+== capsule {capsule.instance_name} {ports}".rstrip()]
    behaviour = capsule.behaviour
    if behaviour is not None:
        lines.append(
            f"{pad}    :: state machine {behaviour.name} "
            f"({len(behaviour.all_states())} states)"
        )
    for part in capsule.parts.values():
        if part.instance is not None:
            lines.append(render_capsule_structure(part.instance, indent + 1))
        else:
            lines.append(
                f"{pad}  +-- part {part.name} <{part.kind.value}, empty>"
            )
    return "\n".join(lines)
