"""Whole-system integration tests crossing every package boundary."""

import math

import numpy as np
import pytest

from repro import Capsule, HybridModel, Protocol, StateMachine, Streamer
from repro.analysis import MessageTrace, step_metrics
from repro.baselines import BichlerModel, KuhlTranslation
from repro.codegen import generate_python
from repro.core.flowtype import SCALAR
from repro.dataflow import (
    Diagram,
    FirstOrderLag,
    PID,
    Step,
    Sum,
)

SUPER = Protocol.define(
    "Super", outgoing=("enable", "disable"), incoming=("limit",)
)


class GuardedPlant(Streamer):
    """First-order plant that reports a limit crossing and can be gated."""

    state_size = 1
    zero_crossing_names = ("limit",)

    def __init__(self, name, tau=0.5, limit=0.9):
        super().__init__(name)
        self.add_in("u", SCALAR)
        self.add_out("y", SCALAR)
        self.add_sport("sup", SUPER.conjugate())
        self.params.update(tau=tau, limit=limit, enabled=1.0)

    def derivatives(self, t, state):
        u = self.in_scalar("u") * self.params["enabled"]
        return np.array([(u - state[0]) / self.params["tau"]])

    def compute_outputs(self, t, state):
        self.out_scalar("y", state[0])

    def zero_crossings(self, t, state):
        return (state[0] - self.params["limit"],)

    def on_zero_crossing(self, name, t, direction):
        if direction > 0:
            self.sport("sup").send("limit", t)

    def handle_signal(self, sport_name, message):
        self.params["enabled"] = (
            1.0 if message.signal == "enable" else 0.0
        )


class Supervisor(Capsule):
    def __init__(self, instance_name="sup"):
        self.limit_events = []
        super().__init__(instance_name)

    def build_structure(self):
        self.create_port("plant", SUPER.base())

    def build_behaviour(self):
        sm = StateMachine("sup")
        sm.add_state("active")
        sm.add_state("tripped",
                     entry=lambda c, m: c.send("plant", "disable"))
        sm.initial("active")
        sm.add_transition(
            "active", "tripped", trigger=("plant", "limit"),
            action=lambda c, m: c.limit_events.append(m.data),
        )
        return sm


class TestFullStack:
    def build(self):
        model = HybridModel("guarded")
        supervisor = model.add_capsule(Supervisor("sup"))
        plant = model.add_streamer(GuardedPlant("plant"))
        # drive the plant with a constant via a leaf streamer
        from tests.conftest import ConstLeaf

        source = model.add_streamer(ConstLeaf("drive", 2.0))
        model.add_flow(source.dport("y"), plant.dport("u"))
        model.connect_sport(supervisor.port("plant"), plant.sport("sup"))
        model.add_probe("y", plant.dport("y"))
        return model, supervisor, plant

    def test_trip_sequence(self):
        model, supervisor, plant = self.build()
        model.run(until=3.0, sync_interval=0.01)
        # the plant heads to 2.0, crosses 0.9, the supervisor trips and
        # disables the drive; the state machine locks in 'tripped'
        assert supervisor.behaviour.active_path == "tripped"
        assert len(supervisor.limit_events) == 1
        assert supervisor.limit_events[0] == pytest.approx(
            0.5 * math.log(2.0 / 1.1), abs=0.02
        )
        # after the trip the plant decays back below the limit
        assert model.probe("y").y_final[0] < 0.9

    def test_trip_time_is_event_localised(self):
        """The limit signal carries the localised crossing time, far more
        precise than the sync interval."""
        model, supervisor, __ = self.build()
        model.run(until=2.0, sync_interval=0.05)  # coarse sync
        expected = 0.5 * math.log(2.0 / 1.1)
        assert supervisor.limit_events[0] == pytest.approx(
            expected, abs=5e-3
        )

    def test_message_trace_records_boundary_traffic(self):
        model, supervisor, plant = self.build()
        trace = MessageTrace(model.rts).attach()
        model.run(until=3.0, sync_interval=0.01)
        signals = trace.counts_by_signal()
        assert signals.get("limit") == 1
        assert signals.get("disable") == 1

    def test_validation_passes(self):
        model, *_ = self.build()
        assert all(
            v.severity == "warning" for v in model.validate(strict=True)
        )


class TestThreeWayAgreement:
    """Streamer architecture, Kühl translation, Bichler baseline and
    generated code must agree on the same diagram at the same order/step."""

    def diagram(self):
        d = Diagram("loop")
        d.add(Step("ref", amplitude=1.0))
        d.add(Sum("err", signs="+-"))
        d.add(PID("pid", kp=3.0, ki=1.5, tf=0.5))
        d.add(FirstOrderLag("plant", tau=0.4))
        d.connect("ref.out", "err.in1")
        d.connect("plant.out", "err.in2")
        d.connect("err.out", "pid.in")
        d.connect("pid.out", "plant.in")
        return d

    def test_agreement(self):
        h = 0.005
        finals = {}

        diagram = self.diagram()
        diagram.finalise()
        model = HybridModel("streamer")
        model.default_thread.binding.rebind("euler")
        model.default_thread.h = h
        model.add_streamer(diagram)
        model.add_probe("y", diagram.port_at("plant.out"))
        model.run(until=4.0, sync_interval=0.05)
        finals["streamer"] = model.probe("y").y_final[0]

        kuhl = KuhlTranslation(self.diagram(), h=h, probe="plant.out")
        kuhl.run(4.0)
        finals["kuhl"] = kuhl.trajectory.y_final[0]

        bichler = BichlerModel(self.diagram(), h=h, probe="plant.out")
        bichler.run(4.0)
        finals["bichler"] = bichler.trajectory.y_final[0]

        namespace = {}
        exec(compile(
            generate_python(self.diagram(), records=["plant.out"]),
            "<gen>", "exec",
        ), namespace)
        finals["generated"] = namespace["simulate"](4.0, h=h)["plant.out"][-1]

        reference = finals["streamer"]
        for name, value in finals.items():
            assert value == pytest.approx(reference, abs=0.02), name

    def test_step_metrics_of_loop(self):
        diagram = self.diagram()
        diagram.finalise()
        model = HybridModel("m")
        model.default_thread.h = 0.002
        model.add_streamer(diagram)
        model.add_probe("y", diagram.port_at("plant.out"))
        model.run(until=10.0, sync_interval=0.02)
        metrics = step_metrics(model.probe("y"), target=1.0)
        assert abs(metrics.steady_state_error) < 0.01
        assert metrics.settling_time is not None


class TestDeterminism:
    def test_identical_runs_bitwise_equal(self):
        finals = []
        for __ in range(2):
            model = HybridModel("det")
            supervisor = model.add_capsule(Supervisor("sup"))
            plant = model.add_streamer(GuardedPlant("plant"))
            from tests.conftest import ConstLeaf

            source = model.add_streamer(ConstLeaf("drive", 2.0))
            model.add_flow(source.dport("y"), plant.dport("u"))
            model.connect_sport(supervisor.port("plant"),
                                plant.sport("sup"))
            model.add_probe("y", plant.dport("y"))
            model.run(until=2.0, sync_interval=0.01)
            finals.append((
                model.probe("y").y_final[0],
                model.stats()["messages_dispatched"],
                model.stats()["events_fired"],
            ))
        assert finals[0] == finals[1]
