"""Capsules, controllers and the deterministic runtime together."""

import pytest

from tests.conftest import PING, Echo, Pinger

from repro.umlrt.capsule import Capsule, CapsuleError, PartKind
from repro.umlrt.runtime import RTSystem
from repro.umlrt.signal import Priority
from repro.umlrt.statemachine import StateMachine


def wire(rts):
    pinger = rts.add_top(Pinger("pinger"))
    echo = rts.add_top(Echo("echo"))
    pinger.connect(pinger.port("p"), echo.port("p"))
    return pinger, echo


class TestBasicMessaging:
    def test_ping_pong(self, rts):
        pinger, __ = wire(rts)
        rts.run()
        assert pinger.pongs == 1

    def test_multiple_pings(self, rts):
        pinger = rts.add_top(Pinger("pinger", pings=5))
        echo = rts.add_top(Echo("echo"))
        pinger.connect(pinger.port("p"), echo.port("p"))
        rts.run()
        assert pinger.pongs == 5

    def test_message_counting(self, rts):
        wire(rts)
        dispatched = rts.run()
        assert dispatched == 2  # ping + pong
        assert rts.total_dispatched == 2

    def test_quiescence(self, rts):
        wire(rts)
        rts.run()
        assert rts.quiescent()

    def test_determinism(self):
        """Two identical systems produce identical dispatch counts."""
        counts = []
        for __ in range(2):
            rts = RTSystem("t")
            pinger = rts.add_top(Pinger("pinger", pings=7))
            echo = rts.add_top(Echo("echo"))
            pinger.connect(pinger.port("p"), echo.port("p"))
            rts.run()
            counts.append((rts.total_dispatched, pinger.pongs))
        assert counts[0] == counts[1]


class TestControllers:
    def test_capsules_on_separate_controllers(self, rts):
        worker = rts.create_controller("worker")
        pinger = rts.add_top(Pinger("pinger"))
        echo = rts.add_top(Echo("echo"), controller=worker)
        pinger.connect(pinger.port("p"), echo.port("p"))
        rts.run()
        assert pinger.pongs == 1
        assert worker.dispatched == 1  # echo's ping
        assert rts.default_controller.dispatched == 1  # pinger's pong

    def test_duplicate_controller_name(self, rts):
        rts.create_controller("x")
        with pytest.raises(Exception):
            rts.create_controller("x")

    def test_priority_order_across_controllers(self, rts):
        """The globally most urgent message dispatches first."""
        order = []

        class Sink(Capsule):
            def build_structure(self):
                self.create_port("in_", PING.conjugate())

            def build_behaviour(self):
                sm = StateMachine("sink")
                sm.add_state("s")
                sm.initial("s")
                sm.add_transition(
                    "s", trigger=("in_", "ping"), internal=True,
                    action=lambda c, m: order.append(
                        (c.instance_name, m.priority)
                    ),
                )
                return sm

        fast_ctrl = rts.create_controller("fast")
        a = rts.add_top(Sink("a"))
        b = rts.add_top(Sink("b"), controller=fast_ctrl)
        rts.start()
        rts.inject(a.port("in_"), "ping", priority=Priority.LOW)
        rts.inject(b.port("in_"), "ping", priority=Priority.HIGH)
        rts.run()
        assert order[0][0] == "b"  # HIGH before LOW despite send order


class TestCapsuleStructure:
    def test_duplicate_port_rejected(self):
        class Dup(Capsule):
            def build_structure(self):
                self.create_port("x", PING.base())
                self.create_port("x", PING.base())

        rts = RTSystem("t")
        with pytest.raises(CapsuleError):
            rts.add_top(Dup("dup"))

    def test_implicit_timer_port(self):
        capsule = Capsule("c")
        assert "timer" in capsule.ports

    def test_unknown_port_access(self):
        capsule = Capsule("c")
        with pytest.raises(CapsuleError):
            capsule.port("nope")

    def test_fixed_parts_built_recursively(self, rts):
        class Leaf(Capsule):
            pass

        class Mid(Capsule):
            def build_structure(self):
                self.create_part("leaf", Leaf)

        class Top(Capsule):
            def build_structure(self):
                self.create_part("mid", Mid)

        top = rts.add_top(Top("top"))
        assert top.part_instance("mid").part_instance("leaf")
        names = [c.instance_name for c in top.descendants()]
        assert names == ["top.mid", "top.mid.leaf"]
        assert rts.capsule_count() == 3

    def test_part_kinds(self):
        class Opt(Capsule):
            def build_structure(self):
                self.create_part("opt", Capsule, kind=PartKind.OPTIONAL)

        rts = RTSystem("t")
        top = rts.add_top(Opt("top"))
        assert not top.part("opt").occupied  # optional: not auto-built

    def test_unknown_part(self):
        capsule = Capsule("c")
        with pytest.raises(CapsuleError):
            capsule.part("ghost")


class TestInjection:
    def test_inject_validates_receive_set(self, rts):
        echo = rts.add_top(Echo("echo"))
        rts.start()
        with pytest.raises(Exception):
            rts.inject(echo.port("p"), "pong")  # echo's side sends pong

    def test_messages_to_destroyed_capsule_counted(self, rts):
        echo = rts.add_top(Echo("echo"))
        rts.start()
        rts.abandon(echo)
        rts.inject(echo.port("p"), "ping")
        assert rts.messages_to_dead == 1
