"""Property-based tests on the dataflow network against direct math.

Random DAGs of Gain/Sum/Constant blocks are built into a Diagram and the
flattened network's evaluation is compared against a direct recursive
computation over the same random structure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import HybridModel
from repro.core.network import FlatNetwork
from repro.dataflow import Constant, Diagram, Gain, Sum


@st.composite
def dag_specs(draw):
    """A random layered DAG: sources, then gains/sums wired backwards."""
    n_sources = draw(st.integers(min_value=1, max_value=3))
    sources = [
        (f"c{i}", draw(st.floats(min_value=-5, max_value=5)))
        for i in range(n_sources)
    ]
    n_nodes = draw(st.integers(min_value=1, max_value=6))
    nodes = []
    available = [name for name, __ in sources]
    for index in range(n_nodes):
        kind = draw(st.sampled_from(["gain", "sum"]))
        if kind == "gain":
            upstream = draw(st.sampled_from(available))
            k = draw(st.floats(min_value=-3, max_value=3))
            nodes.append(("gain", f"n{index}", k, [upstream]))
        else:
            count = draw(st.integers(min_value=2, max_value=3))
            ups = [draw(st.sampled_from(available)) for __ in range(count)]
            signs = "".join(
                draw(st.sampled_from("+-")) for __ in range(count)
            )
            nodes.append(("sum", f"n{index}", signs, ups))
        available.append(f"n{index}")
    return sources, nodes


def build_diagram(sources, nodes):
    d = Diagram("dag")
    for name, value in sources:
        d.add(Constant(name, value))
    for spec in nodes:
        if spec[0] == "gain":
            __, name, k, ups = spec
            d.add(Gain(name, k=k))
            d.connect(f"{ups[0]}.out", f"{name}.in")
        else:
            __, name, signs, ups = spec
            d.add(Sum(name, signs=signs))
            for index, upstream in enumerate(ups):
                d.connect(f"{upstream}.out", f"{name}.in{index + 1}")
    d.finalise()
    return d


def direct_value(target, sources, nodes):
    """Reference: recursively evaluate the random DAG in plain Python."""
    source_map = dict(sources)
    node_map = {spec[1]: spec for spec in nodes}

    def value(name):
        if name in source_map:
            return source_map[name]
        spec = node_map[name]
        if spec[0] == "gain":
            return spec[2] * value(spec[3][0])
        total = 0.0
        for sign, upstream in zip(spec[2], spec[3]):
            term = value(upstream)
            total += term if sign == "+" else -term
        return total

    return value(target)


class TestNetworkAgainstDirectMath:
    @settings(max_examples=50, deadline=None)
    @given(dag_specs())
    def test_evaluation_matches_direct_computation(self, spec):
        sources, nodes = spec
        diagram = build_diagram(sources, nodes)
        network = FlatNetwork([diagram])
        network.evaluate(0.0, network.initial_state())
        for node_spec in nodes:
            name = node_spec[1]
            measured = diagram.sub(name).dport("out").read_scalar()
            expected = direct_value(name, sources, nodes)
            assert measured == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(dag_specs())
    def test_evaluation_is_idempotent(self, spec):
        """Evaluating twice at the same point changes nothing."""
        sources, nodes = spec
        diagram = build_diagram(sources, nodes)
        network = FlatNetwork([diagram])
        state = network.initial_state()
        network.evaluate(0.0, state)
        first = [
            diagram.sub(spec_[1]).dport("out").read_scalar()
            for spec_ in nodes
        ]
        network.evaluate(0.0, state)
        second = [
            diagram.sub(spec_[1]).dport("out").read_scalar()
            for spec_ in nodes
        ]
        assert first == second

    @settings(max_examples=20, deadline=None)
    @given(dag_specs())
    def test_stateless_dag_has_no_states(self, spec):
        sources, nodes = spec
        network = FlatNetwork([build_diagram(sources, nodes)])
        assert network.state_size == 0
        assert network.rhs(0.0, network.initial_state()).size == 0
