"""Control metrics: step responses, integral criteria, comparisons."""

import math

import numpy as np
import pytest

from repro.analysis import compare_trajectories, iae, ise, itae, step_metrics
from repro.solvers.history import Trajectory


def first_order_step(tau=1.0, target=1.0, t_end=8.0, dt=0.001):
    trajectory = Trajectory(labels=["y"])
    steps = int(t_end / dt) + 1
    for k in range(steps):
        t = k * dt
        trajectory.append(t, [target * (1.0 - math.exp(-t / tau))])
    return trajectory


def underdamped_step(omega=2.0, zeta=0.3, t_end=15.0, dt=0.001):
    """Analytic underdamped second-order step response."""
    trajectory = Trajectory(labels=["y"])
    wd = omega * math.sqrt(1 - zeta ** 2)
    phi = math.acos(zeta)
    steps = int(t_end / dt) + 1
    for k in range(steps):
        t = k * dt
        y = 1.0 - math.exp(-zeta * omega * t) * math.sin(
            wd * t + phi
        ) / math.sqrt(1 - zeta ** 2)
        trajectory.append(t, [y])
    return trajectory


class TestStepMetrics:
    def test_first_order_rise_time(self):
        metrics = step_metrics(first_order_step(tau=1.0), target=1.0)
        # 10->90% rise of a first-order lag = tau * ln(9)
        assert metrics.rise_time == pytest.approx(math.log(9.0), abs=0.01)

    def test_first_order_settling(self):
        metrics = step_metrics(first_order_step(tau=1.0), target=1.0)
        assert metrics.settling_time == pytest.approx(
            math.log(50.0), abs=0.05
        )

    def test_first_order_no_overshoot(self):
        metrics = step_metrics(first_order_step(), target=1.0)
        assert metrics.overshoot == 0.0

    def test_underdamped_overshoot(self):
        zeta = 0.3
        metrics = step_metrics(underdamped_step(zeta=zeta), target=1.0)
        expected = math.exp(-math.pi * zeta / math.sqrt(1 - zeta ** 2))
        assert metrics.overshoot == pytest.approx(expected, abs=0.01)

    def test_underdamped_peak_time(self):
        omega, zeta = 2.0, 0.3
        metrics = step_metrics(underdamped_step(omega, zeta), target=1.0)
        expected = math.pi / (omega * math.sqrt(1 - zeta ** 2))
        assert metrics.peak_time == pytest.approx(expected, abs=0.01)

    def test_steady_state_error(self):
        metrics = step_metrics(first_order_step(target=0.8), target=1.0)
        assert metrics.steady_state_error == pytest.approx(0.2, abs=1e-3)


class TestIntegralCriteria:
    def test_iae_first_order(self):
        """IAE of 1 - exp(-t) toward 1 over [0, inf) = tau."""
        assert iae(first_order_step(tau=2.0, t_end=30.0), 1.0) == \
            pytest.approx(2.0, abs=0.01)

    def test_ise_first_order(self):
        """ISE = tau/2 for the same response."""
        assert ise(first_order_step(tau=2.0, t_end=30.0), 1.0) == \
            pytest.approx(1.0, abs=0.01)

    def test_itae_first_order(self):
        """ITAE = tau^2 for the same response."""
        assert itae(first_order_step(tau=2.0, t_end=40.0), 1.0) == \
            pytest.approx(4.0, abs=0.05)

    def test_ordering(self):
        """Faster response -> smaller IAE."""
        fast = iae(first_order_step(tau=0.5), 1.0)
        slow = iae(first_order_step(tau=2.0, t_end=20.0), 1.0)
        assert fast < slow


class TestCompareTrajectories:
    def test_identical(self):
        a = first_order_step()
        result = compare_trajectories(a, a)
        assert result["max_diff"] == 0.0
        assert result["rms_diff"] == 0.0

    def test_known_offset(self):
        a = first_order_step(target=1.0)
        b = first_order_step(target=1.1)
        result = compare_trajectories(a, b)
        assert result["max_diff"] == pytest.approx(0.1, abs=1e-3)

    def test_disjoint_ranges_rejected(self):
        a = Trajectory()
        a.append(0.0, [0.0])
        a.append(1.0, [0.0])
        b = Trajectory()
        b.append(2.0, [0.0])
        b.append(3.0, [0.0])
        with pytest.raises(ValueError):
            compare_trajectories(a, b)

    def test_overlap_window(self):
        a = first_order_step(t_end=4.0)
        b = first_order_step(t_end=8.0)
        result = compare_trajectories(a, b)
        assert result["t1"] == pytest.approx(4.0)
