"""Deadline-feasibility lint over :mod:`repro.analysis.schedulability`.

"During implementation, capsules and streamers are assigned to different
threads" (paper §2) — so a model carries an implied rate-monotonic task
set: one periodic task per streamer thread (period = sync interval) and
one per capsule controller.  **SCHED001** derives that task set with
:func:`~repro.analysis.schedulability.taskset_from_model` and flags
configurations that are statically infeasible: utilisation above 1 (or a
WCET exceeding its own deadline) is an error — no scheduler can save it
— while tasks failing exact response-time analysis are a warning.

The assumed sync interval comes from :attr:`~repro.check.registry.
CheckConfig.sync_interval` (CLI ``--sync-interval``), since a model does
not fix it until run time.
"""

from __future__ import annotations

from repro.check.context import CheckContext
from repro.check.registry import DEFAULT_REGISTRY as REG

rule = REG.rule


@rule("SCHED001", "statically infeasible rates/deadlines", "sched",
      "warning",
      "paper §2 + Gao/Brown/Capretz: schedulability is decidable from "
      "the model; reject infeasible thread configurations before "
      "running")
def check_deadline_feasibility(ctx: CheckContext) -> None:
    if ctx.model is None:
        return
    from repro.analysis.schedulability import (
        SchedulabilityError, response_time_analysis, taskset_from_model,
    )

    sync_interval = ctx.config.sync_interval
    try:
        taskset = taskset_from_model(ctx.model, sync_interval)
    except SchedulabilityError as exc:
        # a task's estimated WCET already exceeds its period/deadline
        ctx.emit(
            ctx.subject,
            f"infeasible thread configuration at sync interval "
            f"{sync_interval:g}s: {exc}",
            severity="error",
            details={"sync_interval": sync_interval},
        )
        return
    if not taskset.tasks:
        return
    utilisation = taskset.utilisation
    if utilisation > 1.0:
        ctx.emit(
            ctx.subject,
            f"estimated utilisation {utilisation:.2f} exceeds 1.0 at "
            f"sync interval {sync_interval:g}s; the thread set cannot "
            "be scheduled on one processor",
            severity="error",
            details={
                "utilisation": utilisation,
                "sync_interval": sync_interval,
            },
        )
        return
    analysis = response_time_analysis(taskset)
    failing = sorted(
        name for name, entry in analysis.items()
        if entry["schedulable"] != 1.0
    )
    if failing:
        ctx.emit(
            ctx.subject,
            f"response-time analysis fails for {', '.join(failing)} at "
            f"sync interval {sync_interval:g}s (utilisation "
            f"{utilisation:.2f})",
            details={
                "failing": failing,
                "utilisation": utilisation,
                "sync_interval": sync_interval,
            },
        )
