"""Bichler-style baseline: directed equations attached to capsule states.

Following Bichler/Radermacher/Schürr (Real-Time Systems 26), the hybrid
part is *not* moved out of the discrete language: the dataflow equations
are associated with a state of an ordinary capsule, and a periodic timer
drives their evaluation inside run-to-completion steps.

Concretely, one :class:`EquationCapsule` owns the whole diagram.  Its
state machine has a single ``integrating`` state whose directed equations
(the flattened network's RHS) are evaluated on every ``timeout`` message:
one explicit-Euler minor step per RTC step.

The paper's criticism — "because UML is a foundational discrete language,
this method doesn't work efficiently" — shows up measurably:

* every minor integration step costs a full timer-expiry + queue insert +
  priority dispatch + RTC cycle (benchmark C2 counts dispatches and wall
  time per simulated second against the streamer architecture, which pays
  one function call per minor step);
* the capsule cannot use multi-stage or adaptive solvers without breaking
  RTC atomicity, so it is stuck at Euler accuracy;
* timer jitter under queue load directly corrupts the integration grid.

The implementation *shares* the numeric network with the streamer path
(same equations, same flattening), so any measured difference is pure
architecture overhead, not model differences.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.network import FlatNetwork
from repro.dataflow.diagram import Diagram
from repro.solvers.history import Trajectory
from repro.umlrt.capsule import Capsule
from repro.umlrt.runtime import RTSystem
from repro.umlrt.statemachine import StateMachine


class EquationCapsule(Capsule):
    """A capsule whose single state carries the diagram's equations."""

    def __init__(
        self,
        instance_name: str,
        network: FlatNetwork,
        h: float,
    ) -> None:
        self._network = network
        self._h = h
        self._state_vec = network.initial_state()
        self._t = 0.0
        self.equation_evaluations = 0
        super().__init__(instance_name)

    def build_behaviour(self) -> StateMachine:
        sm = StateMachine("equations")
        sm.add_state("integrating")
        sm.initial("integrating")
        # the "directed equations associated with the state": evaluated on
        # each timeout, inside the RTC step
        sm.add_transition(
            "integrating", trigger=("timer", "timeout"), internal=True,
            action=lambda capsule, msg: capsule._euler_step(),
        )
        return sm

    def on_start(self) -> None:
        self.inform_every(self._h)

    def _euler_step(self) -> None:
        network = self._network
        deriv = network.rhs(self._t, self._state_vec)
        self._state_vec = self._state_vec + self._h * deriv
        self._t += self._h
        network.evaluate(self._t, self._state_vec)
        for leaf in network.order:
            leaf.on_sync(self._t)
        self.equation_evaluations += 1

    @property
    def t(self) -> float:
        return self._t

    @property
    def state_vector(self) -> np.ndarray:
        return self._state_vec.copy()


class BichlerModel:
    """Build, run and measure the equations-in-states system."""

    def __init__(
        self, diagram: Diagram, h: float, probe: Optional[str] = None
    ) -> None:
        diagram.finalise()
        self.diagram = diagram
        self.h = h
        self.network = FlatNetwork([diagram])
        self.rts = RTSystem(f"bichler[{diagram.name}]")
        self.capsule = EquationCapsule("equations", self.network, h)
        self.rts.add_top(self.capsule)
        self.trajectory = Trajectory()
        self._probe_port = None
        self._probe_block = None
        if probe is not None:
            self._probe_block = diagram.port_at(probe).owner
            self._probe_port = probe.rpartition(".")[2]

    def run(self, until: float, record_every: int = 1) -> None:
        """Simulate to logical time ``until``; record the probe every
        ``record_every`` minor steps."""
        self.rts.start()
        steps = 0
        t = 0.0
        # the periodic timer accumulates float error (k additions of h);
        # a tiny forward tolerance keeps the k-th tick inside step k
        eps = 1e-9 * self.h
        while t < until - 1e-12:
            t = min(t + self.h, until)
            self.rts.advance_to(t + eps)
            steps += 1
            if self._probe_block is not None and steps % record_every == 0:
                self.trajectory.append(
                    self.capsule.t,
                    self._probe_block.dport(self._probe_port).read_scalar(),
                )

    def metrics(self, simulated: float) -> Dict[str, float]:
        return {
            "messages_total": self.rts.total_dispatched,
            "messages_per_second": self.rts.total_dispatched / simulated,
            "equation_evaluations": self.capsule.equation_evaluations,
            "timeouts": self.rts.timing.timeouts_delivered,
        }
