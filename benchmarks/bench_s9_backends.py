"""Experiment S9 — execution-backend step-rate on the 204-block loop.

The same stress shape as S8 (`pid_plant_diagram(200)`), now run through
the unified :mod:`repro.core.backend` surface: the plan interpreter, the
exec'd Python kernel and (where a C compiler exists) the ctypes-loaded
native kernel, each at O0 and O2.  All programs consume the same
optimized :class:`ExecutionPlan`, so the comparison isolates *execution
strategy* from *plan shape* — and every compiled run is re-asserted
bitwise against the interpreter before its rate counts.

Acceptance bar: ``compiled-python`` >= 5x the interpreter step-rate at
O2.  Headline rates land in ``BENCH_S9.json``.
"""

import time

import pytest

import numpy as np

from benchmarks.conftest import pid_plant_diagram
from repro.core.backend import (
    CompileRequest, compile_program, has_c_compiler,
)

PAD = 200          # 4 rig blocks + 200 pad gains = the 204-block loop
H = 2e-3
T_END = 0.5
RECORDS = ["plant.out"]
WARM_T = 0.02

BACKENDS = ["interpreter", "compiled-python"]
if has_c_compiler():
    BACKENDS.append("native-c")


def build_program(backend, level, cache_dir):
    request = CompileRequest(
        diagram=pid_plant_diagram(PAD), records=RECORDS,
        solver="rk4", h=H, opt_level=level, cache_dir=cache_dir,
    )
    program = compile_program(request, backend)
    assert program.backend == backend
    return program


def step_rate(program):
    """Major steps per second of one compiled program, warmed."""
    program.run(WARM_T)
    program.reset()
    start = time.perf_counter()
    result = program.run(T_END)
    wall = time.perf_counter() - start
    return (T_END / H) / wall, result


@pytest.fixture(scope="module")
def native_cache(tmp_path_factory):
    return tmp_path_factory.mktemp("s9-native-cache")


def test_s9_backend_step_rates(report, bench_json, native_cache):
    rates = {}
    results = {}
    for level in (0, 2):
        for backend in BACKENDS:
            rate, result = step_rate(
                build_program(backend, level, native_cache)
            )
            rates[(backend, level)] = rate
            results[(backend, level)] = result

    # rates only count if the kernels are the interpreter, bitwise
    for level in (0, 2):
        reference = results[("interpreter", level)]
        for backend in BACKENDS[1:]:
            got = results[(backend, level)]
            assert np.array_equal(reference.t, got.t), (backend, level)
            assert np.array_equal(
                reference.series["plant.out"], got.series["plant.out"],
            ), (backend, level)
            assert np.array_equal(
                reference.final_state, got.final_state,
            ), (backend, level)

    py_ratio_o0 = rates[("compiled-python", 0)] / rates[("interpreter", 0)]
    py_ratio_o2 = rates[("compiled-python", 2)] / rates[("interpreter", 2)]

    lines = []
    for level in (0, 2):
        for backend in BACKENDS:
            ratio = rates[(backend, level)] / rates[("interpreter", level)]
            lines.append(
                f"O{level} {backend:<16}: "
                f"{rates[(backend, level)]:10.0f} steps/s ({ratio:.2f}x)"
            )
    if not has_c_compiler():
        lines.append("native-c               : skipped (no C compiler)")
    report(
        f"S9: execution backends on the {PAD + 4}-block loop "
        f"(rk4, h={H}, {T_END} sim-s)",
        lines,
    )

    assert py_ratio_o2 >= 5.0, (
        f"compiled-python only {py_ratio_o2:.2f}x the interpreter "
        "step-rate at O2; acceptance bar is 5x"
    )

    payload = {
        "blocks": PAD + 4,
        "backends": list(BACKENDS),
        "interp_steps_per_s_o0": rates[("interpreter", 0)],
        "interp_steps_per_s_o2": rates[("interpreter", 2)],
        "pykernel_steps_per_s_o0": rates[("compiled-python", 0)],
        "pykernel_steps_per_s_o2": rates[("compiled-python", 2)],
        "pykernel_speedup_o0": py_ratio_o0,
        "pykernel_speedup_o2": py_ratio_o2,
        "bitwise_identical": True,
        "native_available": has_c_compiler(),
    }
    if has_c_compiler():
        payload["native_steps_per_s_o0"] = rates[("native-c", 0)]
        payload["native_steps_per_s_o2"] = rates[("native-c", 2)]
        payload["native_speedup_o2"] = (
            rates[("native-c", 2)] / rates[("interpreter", 2)]
        )
    bench_json("s9", payload)
