"""ExecutionPlan: the compiled intermediate representation of a network.

Flattening a streamer tree (:class:`~repro.core.network.FlatNetwork`)
answers *what* the dataflow graph is; the :class:`ExecutionPlan` answers
*how to run it*.  It is the single plan representation shared by every
execution backend:

* the **interpreter** (:meth:`ExecutionPlan.evaluate` /
  :meth:`ExecutionPlan.rhs`) used by the hybrid scheduler and the solver
  layer;
* the **batch backend** (:mod:`repro.core.batch`), which compiles the
  plan into one vectorised NumPy program integrating N instances at once;
* the **code generators** (:mod:`repro.codegen`), which emit standalone
  Python/C from the node and edge tables instead of re-walking the tree.

The IR is a set of immutable tables:

``nodes``
    One :class:`PlanNode` per behavioural leaf, in evaluation order, with
    its state-vector slice ``[lo, hi)``, topological ``stage`` and thread
    partition index.
``edges``
    One :class:`PlanEdge` per resolved leaf-to-leaf dependency (plus
    observer edges), with ``crosses_thread`` and ``is_feedback`` flags
    precomputed, wrapping the :class:`~repro.core.network.ResolvedEdge`
    that carries the original pad path.
``stages``
    Node indices grouped by dataflow depth: nodes within one stage have
    no forward dependency on each other, so a stage is the unit a
    parallel backend may fan out.
``guards``
    The lifted zero-crossing guard table (:class:`PlanGuard`).

Thread partitioning: :meth:`thread_plan` derives the per-thread sub-plan
(the thread's own nodes, in-thread edges only) used between
synchronisation points; cross-thread edges are simply *absent* from the
view, so the receiving pads stay frozen during a slice, which is exactly
the paper's threads-plus-channels sampling semantics.  All views share
one :class:`PlanCounters`, so analysis counters aggregate across threads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.network import FlatNetwork, ResolvedEdge
    from repro.core.opt import OptConfig, OptReport
    from repro.core.streamer import Streamer


@dataclass(frozen=True)
class PlanNode:
    """One behavioural leaf in the node table."""

    index: int
    leaf: "Streamer"
    #: state-vector slice ``state[lo:hi]`` owned by this leaf
    lo: int
    hi: int
    #: dataflow depth: 1 + max stage of forward producers (0 for sources)
    stage: int
    #: thread partition index (0 when the plan is unpartitioned)
    thread_index: int
    direct_feedthrough: bool
    #: indices into the edge table of the edges feeding this node
    in_edges: Tuple[int, ...]

    @property
    def n_states(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanNode({self.index}, {self.leaf.path()!r}, "
            f"states=[{self.lo}:{self.hi}], stage={self.stage}, "
            f"thread={self.thread_index})"
        )


@dataclass(frozen=True)
class PlanEdge:
    """One resolved dependency in the edge table."""

    index: int
    #: node index of the producer
    src: int
    #: node index of the consumer (== ``src`` for observer edges)
    dst: int
    #: the flattened pad path (propagation + per-flow statistics)
    resolved: "ResolvedEdge"
    #: True if producer and consumer live on different streamer threads;
    #: such edges are sampled only at sync points (frozen during slices)
    crosses_thread: bool
    #: True if the producer sits at/after the consumer in evaluation
    #: order, requiring the second propagation pass
    is_feedback: bool
    #: True for edges ending at observer pads (no consumer leaf)
    is_observer: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = "".join(
            flag for flag, on in (
                ("x", self.crosses_thread),
                ("f", self.is_feedback),
                ("o", self.is_observer),
            ) if on
        )
        return f"PlanEdge({self.src}->{self.dst}{' ' + flags if flags else ''})"


@dataclass(frozen=True)
class PlanGuard:
    """One lifted zero-crossing guard in the guard table."""

    index: int
    #: node index of the owning leaf
    node: int
    leaf: "Streamer"
    #: position in the leaf's ``zero_crossings()`` return value
    slot: int
    name: str
    qualified_name: str


class PlanCounters:
    """Mutable analysis counters shared by a plan and all its views."""

    __slots__ = ("evaluations",)

    def __init__(self) -> None:
        #: number of network evaluations (port refreshes / RHS calls)
        self.evaluations = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanCounters(evaluations={self.evaluations})"


class ExecutionPlan:
    """The immutable compiled execution form of a flat network.

    Build one with :meth:`compile` (or let
    :meth:`repro.core.network.FlatNetwork.plan` cache one for you); derive
    per-thread views with :meth:`thread_plan`.  The structural tables are
    tuples of frozen rows; only the shared :class:`PlanCounters` and the
    pad/flow statistics inside the referenced runtime objects mutate.
    """

    def __init__(
        self,
        nodes: Sequence[PlanNode],
        edges: Sequence[PlanEdge],
        guards: Sequence[PlanGuard],
        state_size: int,
        n_threads: int,
        counters: Optional[PlanCounters] = None,
        opt_config: Optional["OptConfig"] = None,
        opt_report: Optional["OptReport"] = None,
    ) -> None:
        self.nodes: Tuple[PlanNode, ...] = tuple(nodes)
        self.edges: Tuple[PlanEdge, ...] = tuple(edges)
        self.guards: Tuple[PlanGuard, ...] = tuple(guards)
        self.state_size = state_size
        self.n_threads = n_threads
        self.counters = counters if counters is not None else PlanCounters()
        #: optimizer configuration this plan was compiled under (None for
        #: an unoptimized O0 plan) and the rewrite report, if any
        self.opt_config = opt_config
        self.opt_report = opt_report
        stages: Dict[int, List[int]] = {}
        for node in self.nodes:
            stages.setdefault(node.stage, []).append(node.index)
        #: node indices grouped by stage, shallowest first
        self.stages: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(stages[depth]) for depth in sorted(stages)
        )
        self._node_of: Dict[int, PlanNode] = {
            id(node.leaf): node for node in self.nodes
        }
        edge_by_index = {edge.index: edge for edge in self.edges}
        # hot-path caches: flat tuples the interpreter walks per call
        self._schedule: Tuple[
            Tuple["Streamer", Tuple["ResolvedEdge", ...], int, int], ...
        ] = tuple(
            (
                node.leaf,
                tuple(
                    edge_by_index[i].resolved
                    for i in node.in_edges
                    if i in edge_by_index
                ),
                node.lo,
                node.hi,
            )
            for node in self.nodes
        )
        self._feedback: Tuple["ResolvedEdge", ...] = tuple(
            edge.resolved for edge in self.edges
            if edge.is_feedback and not edge.is_observer
        )
        self._observers: Tuple["ResolvedEdge", ...] = tuple(
            edge.resolved for edge in self.edges if edge.is_observer
        )
        self._stateful: Tuple[Tuple["Streamer", int, int], ...] = tuple(
            (node.leaf, node.lo, node.hi)
            for node in self.nodes if node.hi > node.lo
        )
        self._thread_views: Dict[int, "ExecutionPlan"] = {}

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        network: "FlatNetwork",
        leaf_threads: Optional[Mapping[int, int]] = None,
        counters: Optional[PlanCounters] = None,
        opt_level: int = 0,
        opt_config: Optional["OptConfig"] = None,
        protect: Sequence[Any] = (),
    ) -> "ExecutionPlan":
        """Compile ``network`` into an ExecutionPlan.

        ``leaf_threads`` maps ``id(leaf)`` to a thread partition index;
        omitted leaves (or a missing mapping) land on partition 0.  Node
        order is the network's deterministic topological order, so the
        interpreter reproduces the legacy evaluation sequence bit for
        bit.  ``counters`` lets a caller carry analysis counters across
        recompilations (e.g. re-partitioning an already-used network).

        ``opt_level`` / ``opt_config`` select the optimizer pipeline
        (:mod:`repro.core.opt`) run over the freshly compiled plan; at
        the default O0 the plan is the literal graph.  ``protect`` lists
        pads (probe sources) the optimizer must leave untouched.
        """
        from repro.core.network import NetworkError

        order = list(network.order)
        position = {id(leaf): i for i, leaf in enumerate(order)}
        threads = dict(leaf_threads or {})
        n_threads = (max(threads.values()) + 1) if threads else 1

        # edge table ----------------------------------------------------
        edges: List[PlanEdge] = []
        in_edges_of: Dict[int, List[int]] = {id(leaf): [] for leaf in order}
        for resolved in network.edges:
            src_pos = position.get(id(resolved.src_leaf))
            dst_pos = position.get(id(resolved.dst_leaf))
            if src_pos is None or dst_pos is None:  # pragma: no cover
                raise NetworkError(
                    f"edge {resolved!r} references a leaf outside the "
                    "network order"
                )
            index = len(edges)
            edges.append(PlanEdge(
                index=index,
                src=src_pos,
                dst=dst_pos,
                resolved=resolved,
                crosses_thread=(
                    threads.get(id(resolved.src_leaf), 0)
                    != threads.get(id(resolved.dst_leaf), 0)
                ),
                is_feedback=src_pos >= dst_pos,
                is_observer=False,
            ))
            in_edges_of[id(resolved.dst_leaf)].append(index)
        for resolved in network.observer_edges:
            src_pos = position[id(resolved.src_leaf)]
            edges.append(PlanEdge(
                index=len(edges),
                src=src_pos,
                dst=src_pos,
                resolved=resolved,
                crosses_thread=False,
                is_feedback=False,
                is_observer=True,
            ))

        # node table with stages ---------------------------------------
        stage_of: Dict[int, int] = {}
        nodes: List[PlanNode] = []
        for pos, leaf in enumerate(order):
            stage = 0
            for edge_index in in_edges_of[id(leaf)]:
                edge = edges[edge_index]
                if edge.src < pos:  # forward producer: inputs fresh
                    stage = max(stage, stage_of[edge.src] + 1)
            stage_of[pos] = stage
            lo, hi = network.state_slice(leaf)
            nodes.append(PlanNode(
                index=pos,
                leaf=leaf,
                lo=lo,
                hi=hi,
                stage=stage,
                thread_index=threads.get(id(leaf), 0),
                direct_feedthrough=bool(leaf.direct_feedthrough),
                in_edges=tuple(in_edges_of[id(leaf)]),
            ))

        # guard table ---------------------------------------------------
        guards: List[PlanGuard] = []
        for node in nodes:
            for slot, name in enumerate(node.leaf.zero_crossing_names):
                guards.append(PlanGuard(
                    index=len(guards),
                    node=node.index,
                    leaf=node.leaf,
                    slot=slot,
                    name=name,
                    qualified_name=f"{node.leaf.path()}:{name}",
                ))

        plan = cls(nodes, edges, guards, network.state_size, n_threads,
                   counters=counters)
        config = opt_config
        if config is None and opt_level:
            from repro.core.opt import OptConfig

            config = OptConfig.from_level(opt_level)
        if config is not None and config.is_active:
            from repro.core.opt import PlanOptimizer

            plan = PlanOptimizer(config).run(plan, protect=protect)
        return plan

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def thread_plan(self, thread_index: int) -> "ExecutionPlan":
        """The cached sub-plan for one thread partition.

        The view keeps only the thread's own nodes, the in-thread edges
        (cross-thread edges are excluded, so their receiving pads hold
        the last sampled value during a slice) and the observer edges
        rooted in the thread.  Guard localisation happens on the full
        plan at sync points, so views carry no guards.  The full
        ``state_size`` is retained: views integrate the shared global
        state vector, writing only their own slices.
        """
        view = self._thread_views.get(thread_index)
        if view is None:
            keep = {
                node.index for node in self.nodes
                if node.thread_index == thread_index
            }
            nodes = [node for node in self.nodes if node.index in keep]
            edges = [
                edge for edge in self.edges
                if (edge.is_observer and edge.src in keep)
                or (not edge.is_observer
                    and not edge.crosses_thread
                    and edge.src in keep and edge.dst in keep)
            ]
            kept_edges = {edge.index for edge in edges}
            nodes = [
                PlanNode(
                    index=node.index,
                    leaf=node.leaf,
                    lo=node.lo,
                    hi=node.hi,
                    stage=node.stage,
                    thread_index=node.thread_index,
                    direct_feedthrough=node.direct_feedthrough,
                    in_edges=tuple(
                        i for i in node.in_edges if i in kept_edges
                    ),
                )
                for node in nodes
            ]
            view = ExecutionPlan(
                nodes, edges, (), self.state_size, self.n_threads,
                counters=self.counters,
                opt_config=self.opt_config,
                opt_report=self.opt_report,
            )
            self._thread_views[thread_index] = view
        return view

    def node_of(self, leaf: "Streamer") -> PlanNode:
        """The node table row for ``leaf``."""
        from repro.core.network import NetworkError

        node = self._node_of.get(id(leaf))
        if node is None:
            raise NetworkError(
                f"leaf {leaf.path()} is not part of this execution plan"
            )
        return node

    # ------------------------------------------------------------------
    # interpretation (the hot loop)
    # ------------------------------------------------------------------
    def evaluate(self, t: float, state: np.ndarray) -> None:
        """Refresh every DPort covered by this plan at ``(t, state)``.

        Propagation schedule: each node's in-edges, then its outputs, in
        node order; feedback edges and observer edges in a second pass.
        """
        self.counters.evaluations += 1
        for leaf, pre_edges, lo, hi in self._schedule:
            for edge in pre_edges:
                edge.propagate()
            leaf.compute_outputs(t, state[lo:hi])
        for edge in self._feedback:
            edge.propagate()
        for edge in self._observers:
            edge.propagate()

    def rhs(self, t: float, state: np.ndarray) -> np.ndarray:
        """Combined ODE right-hand side over the global state vector."""
        from repro.core.network import NetworkError

        self.evaluate(t, state)
        dstate = np.zeros(self.state_size, dtype=float)
        for leaf, lo, hi in self._stateful:
            deriv = np.asarray(leaf.derivatives(t, state[lo:hi]), dtype=float)
            if deriv.shape != (hi - lo,):
                raise NetworkError(
                    f"{leaf.path()}.derivatives() returned shape "
                    f"{deriv.shape}, expected ({hi - lo},)"
                )
            dstate[lo:hi] = deriv
        return dstate

    def guard_values(
        self,
        t: float,
        state: np.ndarray,
        guards: Optional[Sequence[PlanGuard]] = None,
    ) -> List[float]:
        """Evaluate guards at ``(t, state)`` (ports assumed fresh)."""
        from repro.core.network import NetworkError

        chosen = self.guards if guards is None else guards
        values: List[float] = []
        cache: Dict[int, Sequence[float]] = {}
        for guard in chosen:
            if id(guard.leaf) not in cache:
                node = self.node_of(guard.leaf)
                cache[id(guard.leaf)] = list(
                    guard.leaf.zero_crossings(t, state[node.lo:node.hi])
                )
            leaf_values = cache[id(guard.leaf)]
            if guard.slot >= len(leaf_values):
                raise NetworkError(
                    f"{guard.leaf.path()} declared "
                    f"{len(guard.leaf.zero_crossing_names)} guard names "
                    f"but zero_crossings() returned {len(leaf_values)} "
                    "values"
                )
            values.append(float(leaf_values[guard.slot]))
        return values

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(
        self,
        extra: Optional[Mapping[str, Any]] = None,
        include_param_values: bool = True,
    ) -> str:
        """A stable content hash of the compiled plan.

        Two plans fingerprint identically iff they describe the same
        computation: same leaves (by path, type and parameter values, in
        the same evaluation order with the same state slices, stages and
        thread partitions), same edges (by pad path endpoints and
        cross-thread/feedback/observer classification) and same lifted
        guards.  Object identities and memory addresses never enter the
        hash, so two independently built but structurally identical
        diagrams collide — which is exactly what a content-addressed
        plan cache (:mod:`repro.service.cache`) wants.

        ``extra`` folds caller context that lives outside the plan into
        the key — solver binding, step size, record lists, sweep paths —
        so one structural plan can key several compiled artefacts.

        The hash is recomputed on every call (never memoised): block
        parameters are mutable, and a parameter edit *must* change the
        fingerprint so stale cache entries die by key mismatch rather
        than by explicit invalidation.

        ``include_param_values=False`` hashes parameter *keys* but not
        their values.  The snapshot codec (:mod:`repro.resilience`) uses
        this form: parameters are runtime state that legitimately
        changes mid-run (and is restored from the snapshot), so only the
        structural identity of the plan may gate a restore.  Compiled-
        artefact caches must keep the default — for them a parameter
        value *is* part of the artefact.
        """
        digest = hashlib.sha256()

        def feed(*parts: Any) -> None:
            digest.update(
                "\x1f".join(str(part) for part in parts).encode("utf-8")
            )
            digest.update(b"\x1e")

        feed("plan", self.state_size, self.n_threads)
        for node in self.nodes:
            feed(
                "node", node.index, node.leaf.path(),
                type(node.leaf).__name__, node.lo, node.hi, node.stage,
                node.thread_index, int(node.direct_feedthrough),
            )
            for key in sorted(node.leaf.params):
                if include_param_values:
                    feed("param", key, repr(node.leaf.params[key]))
                else:
                    feed("param", key)
        for edge in self.edges:
            feed(
                "edge", edge.src, edge.dst,
                edge.resolved.src_port.qualified_name,
                edge.resolved.dst_port.qualified_name,
                len(edge.resolved.path),
                int(edge.crosses_thread), int(edge.is_feedback),
                int(edge.is_observer),
            )
        for guard in self.guards:
            feed("guard", guard.node, guard.slot, guard.qualified_name)
        # the optimizer configuration is part of the plan's identity: an
        # O0 and an O2 compile of the same model must never share cache
        # entries, even when the passes happened to rewrite nothing
        if self.opt_config is not None and self.opt_config.is_active:
            feed("opt", self.opt_config.cache_token())
        for key in sorted(extra or {}):
            feed("extra", key, repr(extra[key]))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "nodes": len(self.nodes),
            "edges": sum(1 for e in self.edges if not e.is_observer),
            "observer_edges": len(self._observers),
            "feedback_edges": len(self._feedback),
            "cross_thread_edges": sum(
                1 for e in self.edges if e.crosses_thread
            ),
            "stages": len(self.stages),
            "states": self.state_size,
            "guards": len(self.guards),
            "threads": self.n_threads,
            "evaluations": self.counters.evaluations,
        }

    def describe(self) -> str:
        """A human-readable dump of the tables (debugging aid)."""
        lines = [f"ExecutionPlan: {self.stats()}"]
        by_index = {node.index: node for node in self.nodes}
        for stage_index, stage in enumerate(self.stages):
            lines.append(f"stage {stage_index}:")
            for node_index in stage:
                lines.append(f"  {by_index[node_index]!r}")
        for edge in self.edges:
            lines.append(f"  {edge!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionPlan(nodes={len(self.nodes)}, "
            f"edges={len(self.edges)}, stages={len(self.stages)}, "
            f"states={self.state_size}, threads={self.n_threads})"
        )
