"""Implicit fixed-step methods for stiff plants.

Real control plants (e.g. electrical subsystems with fast parasitics) are
often stiff; explicit solvers then need absurdly small steps.  Backward
Euler (L-stable, order 1) and the trapezoidal rule (A-stable, order 2)
solve the stage equation with a damped Newton iteration using a finite-
difference Jacobian, falling back to more damping when the residual grows.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import RHS, FixedStepSolver, SolverError


def _numerical_jacobian(f: RHS, t: float, y: np.ndarray) -> np.ndarray:
    """Forward-difference Jacobian of ``f`` with per-component scaling."""
    n = y.size
    f0 = np.asarray(f(t, y), dtype=float)
    jac = np.empty((n, n), dtype=float)
    for j in range(n):
        eps = 1e-8 * max(1.0, abs(y[j]))
        y_pert = y.copy()
        y_pert[j] += eps
        jac[:, j] = (np.asarray(f(t, y_pert), dtype=float) - f0) / eps
    return jac


class _NewtonImplicitSolver(FixedStepSolver):
    """Shared Newton machinery for one-stage implicit methods.

    Subclasses define the residual ``r(y_new) = y_new - y - h*phi(...)``
    via :meth:`_residual` and its Jacobian structure via
    :meth:`_residual_jacobian`.
    """

    implicit = True

    def __init__(self, newton_tol: float = 1e-10, max_newton: int = 25) -> None:
        self.newton_tol = newton_tol
        self.max_newton = max_newton
        self.newton_iterations = 0

    def snapshot_state(self):
        # Newton iterates are recomputed from scratch each step, so only
        # the cumulative counter needs to survive a restore
        return {"newton_iterations": self.newton_iterations}

    def restore_state(self, state):
        self.newton_iterations = int(state.get("newton_iterations", 0))

    def _advance(self, f: RHS, t: float, y: np.ndarray, h: float) -> np.ndarray:
        if y.size == 0:
            # Stateless (pure feedthrough) system: the stage equation is
            # vacuous and np.max over the empty residual has no identity.
            return y.copy()
        # Predictor: explicit Euler gives a decent starting point.
        y_new = y + h * np.asarray(f(t, y), dtype=float)
        scale = 1.0 + np.abs(y)
        for iteration in range(self.max_newton):
            residual = self._residual(f, t, y, y_new, h)
            norm = float(np.max(np.abs(residual) / scale))
            if norm < self.newton_tol:
                return y_new
            jac = self._residual_jacobian(f, t, y_new, h)
            try:
                delta = np.linalg.solve(jac, -residual)
            except np.linalg.LinAlgError as exc:
                raise SolverError(
                    f"{self.name}: singular Newton matrix at t={t:.6g}"
                ) from exc
            # Damped update: halve until the residual does not blow up.
            damping = 1.0
            for __ in range(8):
                candidate = y_new + damping * delta
                cand_res = self._residual(f, t, y, candidate, h)
                if float(np.max(np.abs(cand_res) / scale)) <= norm * 1.5:
                    break
                damping *= 0.5
            y_new = y_new + damping * delta
            self.newton_iterations += 1
        raise SolverError(
            f"{self.name}: Newton failed to converge at t={t:.6g} "
            f"(h={h:.3g})"
        )

    def _residual(
        self, f: RHS, t: float, y: np.ndarray, y_new: np.ndarray, h: float
    ) -> np.ndarray:
        raise NotImplementedError

    def _residual_jacobian(
        self, f: RHS, t: float, y_new: np.ndarray, h: float
    ) -> np.ndarray:
        raise NotImplementedError


class BackwardEuler(_NewtonImplicitSolver):
    """Backward Euler: y' taken at the step end.  L-stable, order 1."""

    name = "backward_euler"
    order = 1

    def _residual(self, f, t, y, y_new, h):
        return y_new - y - h * np.asarray(f(t + h, y_new), dtype=float)

    def _residual_jacobian(self, f, t, y_new, h):
        n = y_new.size
        return np.eye(n) - h * _numerical_jacobian(f, t + h, y_new)


class Trapezoidal(_NewtonImplicitSolver):
    """Trapezoidal rule (implicit): A-stable, order 2."""

    name = "trapezoidal"
    order = 2

    def _residual(self, f, t, y, y_new, h):
        f0 = np.asarray(f(t, y), dtype=float)
        f1 = np.asarray(f(t + h, y_new), dtype=float)
        return y_new - y - (h / 2.0) * (f0 + f1)

    def _residual_jacobian(self, f, t, y_new, h):
        n = y_new.size
        return np.eye(n) - (h / 2.0) * _numerical_jacobian(f, t + h, y_new)
