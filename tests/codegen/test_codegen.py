"""Code generation: lowering, Python round trips, C structure."""

import math

import pytest

from repro.codegen import (
    UnsupportedBlockError,
    generate_c,
    generate_python,
    lower,
)
from repro.codegen.common import CLang, PyLang
from repro.core.model import HybridModel
from repro.core.streamer import Streamer
from repro.dataflow import (
    Constant,
    DeadZone,
    Diagram,
    FirstOrderLag,
    Gain,
    Integrator,
    PID,
    Pulse,
    Ramp,
    Saturation,
    Scope,
    SecondOrderSystem,
    Sine,
    StateSpace,
    Step,
    Sum,
    Terminator,
    TransferFunction,
    ZeroOrderHold,
)


def execute(source):
    namespace = {}
    exec(compile(source, "<generated>", "exec"), namespace)
    return namespace


def feedback_diagram():
    d = Diagram("fb")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=4.0, ki=2.0, tf=0.5, u_min=-10.0, u_max=10.0))
    d.add(FirstOrderLag("plant", tau=0.5))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    return d


def everything_diagram():
    """One diagram touching most supported block types."""
    d = Diagram("all")
    d.add(Sine("sine", amplitude=1.0, freq=0.5))
    d.add(Ramp("ramp", slope=0.1))
    d.add(Pulse("pulse", period=2.0, duty=0.5))
    d.add(Sum("mix", signs="+++"))
    d.add(Saturation("sat", lower=-1.5, upper=1.5))
    d.add(DeadZone("dz", width=0.1))
    d.add(Gain("g", k=2.0))
    d.add(SecondOrderSystem("pt2", omega=3.0, zeta=0.7))
    d.add(TransferFunction("tf", num=[1.0], den=[0.2, 1.0]))
    d.add(StateSpace("ss", a=[[-2.0]], b=[1.0], c=[1.0]))
    d.add(Integrator("integ"))
    d.add(ZeroOrderHold("zoh", ts=0.1))
    d.add(Scope("scope"))
    d.connect("sine.out", "mix.in1")
    d.connect("ramp.out", "mix.in2")
    d.connect("pulse.out", "mix.in3")
    d.connect("mix.out", "sat.in")
    d.connect("sat.out", "dz.in")
    d.connect("dz.out", "g.in")
    d.connect("g.out", "pt2.in")
    d.connect("pt2.out", "tf.in")
    d.connect("tf.out", "ss.in")
    d.connect("ss.out", "integ.in")
    d.connect("integ.out", "zoh.in")
    d.connect("zoh.out", "scope.in1")
    return d


class TestLowering:
    def test_evaluation_order_matches_network(self):
        model = lower(feedback_diagram(), PyLang())
        names = [leaf.name for leaf in model.order]
        assert names.index("ref") < names.index("err")
        assert names.index("err") < names.index("pid")

    def test_state_names(self):
        model = lower(feedback_diagram(), PyLang())
        assert len(model.state_names) == 3  # lag(1) + pid(2)

    def test_scope_inputs_recorded_by_default(self):
        model = lower(everything_diagram(), PyLang())
        assert any("scope" in label for label, __ in model.records)

    def test_unsupported_block_raises(self):
        class Custom(Streamer):
            pass

        d = Diagram("d")
        d.add(Constant("c", 1.0))
        d.add_sub(Custom("custom"))
        with pytest.raises(UnsupportedBlockError, match="Custom"):
            lower(d, PyLang())


class TestPythonRoundTrip:
    def test_open_loop_analytic(self):
        d = Diagram("d")
        d.add(Step("s", amplitude=1.0))
        d.add(FirstOrderLag("lag", tau=0.5))
        d.connect("s.out", "lag.in")
        namespace = execute(generate_python(d, records=["lag.out"]))
        result = namespace["simulate"](2.0, h=0.001)
        assert result["lag.out"][-1] == pytest.approx(
            1.0 - math.exp(-4.0), rel=1e-5
        )

    def test_feedback_matches_library(self):
        source = generate_python(feedback_diagram(), records=["plant.out"])
        namespace = execute(source)
        generated = namespace["simulate"](5.0, h=0.002)

        reference = feedback_diagram()
        reference.finalise()
        model = HybridModel("ref")
        model.default_thread.h = 0.002
        model.add_streamer(reference)
        model.add_probe("y", reference.port_at("plant.out"))
        model.run(until=5.0, sync_interval=0.05)

        assert generated["plant.out"][-1] == pytest.approx(
            model.probe("y").y_final[0], abs=1e-6
        )

    def test_everything_diagram_runs(self):
        source = generate_python(everything_diagram(), default_h=0.005)
        namespace = execute(source)
        result = namespace["simulate"](3.0)
        assert len(result["t"]) > 100
        assert all(math.isfinite(v) for v in result["scope.in1"])

    def test_record_every(self):
        d = Diagram("d")
        d.add(Constant("c", 1.0))
        d.add(Integrator("i"))
        d.connect("c.out", "i.in")
        namespace = execute(generate_python(d, records=["i.out"]))
        dense = namespace["simulate"](1.0, h=0.01, record_every=1)
        sparse = namespace["simulate"](1.0, h=0.01, record_every=10)
        assert len(dense["t"]) > len(sparse["t"])

    def test_standalone_no_repro_import(self):
        source = generate_python(feedback_diagram())
        assert "import repro" not in source
        assert "import math" in source


class TestCGeneration:
    def test_structure(self):
        source = generate_c(feedback_diagram(), records=["plant.out"])
        assert source.count("{") == source.count("}")
        assert "#include <math.h>" in source
        assert "static void rhs(" in source
        assert "int main(void)" in source
        assert "#define N_STATES 3" in source

    def test_all_signals_become_array_accesses(self):
        source = generate_c(feedback_diagram())
        # no bare signal variable names survive in C
        assert "v_plant_out =" not in source
        assert "sig[" in source

    def test_sampled_blocks_emit_statics(self):
        source = generate_c(everything_diagram())
        assert "static double h_zoh_held" in source
        assert "sync_step" in source

    def test_csv_header_contains_records(self):
        source = generate_c(feedback_diagram(), records=["plant.out"])
        assert "t,plant.out" in source

    def test_c_expressions_use_c_operators(self):
        lang = CLang()
        assert lang.if_expr("a > b", "1.0", "0.0") == \
            "((a > b) ? (1.0) : (0.0))"
        assert lang.min("a", "b") == "fmin(a, b)"
        assert lang.abs("x") == "fabs(x)"


class TestSignalSubstitution:
    """Whole-identifier signal rewriting in the C renderer.

    A held register whose identifier *embeds* a signal name (block
    ``xv_g_out`` owns ``h_xv_g_out_held``, which contains the Gain
    ``g``'s signal ``v_g_out``) must survive substitution intact:
    sequential ``str.replace`` would corrupt it into ``h_xsig[i]_held``.
    """

    def overlapping_diagram(self):
        d = Diagram("overlap")
        d.add(Step("src", amplitude=1.0))
        d.add(Gain("g", k=2.0))
        d.add(ZeroOrderHold("xv_g_out", ts=0.1))
        d.add(Scope("scope"))
        d.connect("src.out", "g.in")
        d.connect("g.out", "xv_g_out.in")
        d.connect("xv_g_out.out", "scope.in1")
        return d

    def test_embedding_held_identifier_survives(self):
        source = generate_c(self.overlapping_diagram())
        assert "static double h_xv_g_out_held" in source
        assert "h_xv_g_out_held = " in source  # the sync assignment
        assert "h_xsig[" not in source         # the str.replace corruption
        assert "sig[" in source                # substitution still ran

    def test_substituter_is_word_boundary_anchored(self):
        from repro.codegen.cgen import _signal_substituter

        fix = _signal_substituter(
            ["v_a_held", "v_a"], {"v_a_held": 0, "v_a": 1},
        )
        # embedded occurrences stay; whole identifiers are rewritten,
        # longest-first so v_a never clips v_a_held
        assert fix("h_xv_a_held + v_a_held * v_a") == \
            "h_xv_a_held + sig[0] * sig[1]"
        assert fix("no_signals_here") == "no_signals_here"

    def test_generated_overlap_program_compiles_in_python(self):
        """The Python backend of the same diagram still round-trips."""
        source = generate_python(self.overlapping_diagram())
        namespace = execute(source)
        result = namespace["simulate"](0.5, h=1e-2)
        assert len(result["t"]) > 10
        assert all(math.isfinite(v) for v in result["scope.in1"])
