"""The cluster's asyncio HTTP front-end (stdlib only, no frameworks).

A deliberately small HTTP/1.1 server over :func:`asyncio.start_server`
— request line, headers, ``Content-Length`` body, one request per
connection — because the cluster API needs exactly six verbs:

========  ==========================  =====================================
method    path                        meaning
========  ==========================  =====================================
POST      ``/jobs``                   submit a :class:`ClusterJobRequest`
                                      (JSON body) → ``202 {"id": …}``;
                                      shed requests get ``429`` with the
                                      admission reason
GET       ``/jobs``                   every known job's status snapshot
GET       ``/jobs/<id>``              one job's status snapshot
GET       ``/jobs/<id>/result``       block (``?timeout=``) for the result
                                      and return its JSON summary — array
                                      payloads are digested (CRC-32), not
                                      shipped, which is what lets a remote
                                      harness assert bitwise equality
POST      ``/jobs/<id>/cancel``       cooperative cancel
GET       ``/jobs/<id>/events``       chunked NDJSON live-stream of the
                                      job's telemetry channel until it
                                      closes (the bridge from the worker's
                                      forwarded events to the network)
GET       ``/status``                 pool snapshot (workers, queues,
                                      steals, migrations, store stats)
GET       ``/models``                 registered model names
GET       ``/healthz``                liveness probe
========  ==========================  =====================================

Blocking pool calls (``handle.result``, channel pops) are pushed onto
the default executor so the event loop keeps serving while jobs run.
:class:`ClusterHTTPServer` also hosts itself on a daemon thread
(``start()``/``stop()``) so synchronous callers — the CLI, tests, the
S11 benchmark — get a serving endpoint without touching asyncio.
"""

from __future__ import annotations

import asyncio
import json
import threading
import zlib
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.cluster.pool import ClusterJobHandle, WorkerPool
from repro.cluster.requests import (
    ClusterError, ClusterJobRequest, ClusterRejected, registered_models,
)

#: arrays at most this long are inlined into JSON; longer ones are
#: summarised (shape, dtype, CRC-32 digest, endpoints)
INLINE_ARRAY_LIMIT = 64


def _digest(array: np.ndarray) -> str:
    """A stable CRC-32 hex digest of an array's raw bytes."""
    data = np.ascontiguousarray(array)
    return format(zlib.crc32(data.tobytes()) & 0xFFFFFFFF, "08x")


def json_safe(value: Any) -> Any:
    """Recursively convert a telemetry/result payload to JSON types."""
    if isinstance(value, np.ndarray):
        if value.size <= INLINE_ARRAY_LIMIT:
            return [json_safe(v) for v in value.tolist()]
        return {
            "__array__": True,
            "shape": list(value.shape),
            "dtype": str(value.dtype),
            "crc32": _digest(value),
        }
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, float) and (value != value):  # NaN
        return None
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    return repr(value)


def summarise_result(result: Any) -> Dict[str, Any]:
    """A JSON summary of a job result: shapes, endpoints and CRC-32
    digests instead of bulk arrays — compact on the wire, yet strong
    enough for a remote client to assert bitwise equality of runs."""
    if result is None:
        return {"type": "none"}
    name = type(result).__name__
    if name == "SingleRunResult":
        probes = {}
        for probe, trajectory in result.probes.items():
            times = np.asarray(trajectory.times)
            states = np.asarray(trajectory.states)
            probes[probe] = {
                "rows": int(times.shape[0]),
                "t_last": None if times.size == 0 else float(times[-1]),
                "last": None if states.size == 0 else json_safe(
                    np.asarray(states[-1]).ravel()[:8]
                ),
                "times_crc32": _digest(times),
                "states_crc32": _digest(states),
            }
        return {
            "type": "single_run",
            "t_final": float(result.t_final),
            "probes": probes,
            "stats": json_safe(getattr(result, "stats", {})),
        }
    if name == "BatchResult":
        series = {}
        for label, matrix in result.series.items():
            series[label] = {
                "shape": list(np.asarray(matrix).shape),
                "crc32": _digest(np.asarray(matrix)),
            }
        return {
            "type": "batch",
            "n": int(result.n),
            "rows": int(np.asarray(result.t).shape[0]),
            "t_crc32": _digest(np.asarray(result.t)),
            "final_states_crc32": _digest(np.asarray(result.final_states)),
            "series": series,
        }
    if hasattr(result, "to_dict"):
        return {"type": name, **json_safe(result.to_dict())}
    return {"type": name, "repr": repr(result)}


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class ClusterHTTPServer:
    """Serve one :class:`WorkerPool` over HTTP.

    Use as an async component (``await server.serve()``) or, more
    commonly, as a self-hosting thread: ``start()`` binds the socket,
    spins a daemon event-loop thread and returns once the port is
    accepting; ``stop()`` tears it down.  ``port=0`` picks an ephemeral
    port, readable from :attr:`port` after start.
    """

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.pool = pool
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # ------------------------------------------------------------------
    # threaded self-hosting
    # ------------------------------------------------------------------
    def start(self) -> "ClusterHTTPServer":
        if self._thread is not None:
            raise ClusterError("server already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="cluster-http", daemon=True,
        )
        self._thread.start()
        if not self._started.wait(10.0):
            raise ClusterError("HTTP server failed to start within 10s")
        return self

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._bind())
            self._started.set()
            loop.run_forever()
        finally:
            try:
                if self._server is not None:
                    self._server.close()
                    loop.run_until_complete(self._server.wait_closed())
            finally:
                loop.close()

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5.0)
        self._loop = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # asyncio guts
    # ------------------------------------------------------------------
    async def _bind(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve(self) -> None:
        """Bind and serve until cancelled (async entry point)."""
        await self._bind()
        self._started.set()
        async with self._server:
            await self._server.serve_forever()

    async def _handle_connection(self, reader, writer) -> None:
        try:
            method, path, body = await self._read_request(reader)
        except (_HTTPError, asyncio.IncompleteReadError, ValueError) as exc:
            status = exc.status if isinstance(exc, _HTTPError) else 400
            await self._send_json(
                writer, status, {"error": str(exc)},
            )
            return
        try:
            await self._route(method, path, body, writer)
        except _HTTPError as exc:
            await self._send_json(
                writer, exc.status, {"error": exc.message},
            )
        except ClusterRejected as exc:
            await self._send_json(
                writer, 429, {"error": str(exc), "reason": exc.reason},
            )
        except ClusterError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            await self._send_json(
                writer, 500, {"error": f"{type(exc).__name__}: {exc}"},
            )

    async def _read_request(self, reader) -> Tuple[str, str, bytes]:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=30.0,
        )
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HTTPError(400, "malformed request line")
        method, path, __ = parts
        content_length = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, __, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HTTPError(400, "bad Content-Length")
        body = b""
        if content_length:
            if content_length > 8 * 1024 * 1024:
                raise _HTTPError(400, "request body too large")
            body = await asyncio.wait_for(
                reader.readexactly(content_length), timeout=30.0,
            )
        return method.upper(), path, body

    async def _route(self, method, path, body, writer) -> None:
        split = urlsplit(path)
        query = {
            k: v[-1] for k, v in parse_qs(split.query).items()
        }
        segments = [s for s in split.path.split("/") if s]
        if segments == ["healthz"]:
            await self._send_json(writer, 200, {"ok": True})
        elif segments == ["status"] and method == "GET":
            await self._send_json(writer, 200, json_safe(self.pool.status()))
        elif segments == ["models"] and method == "GET":
            await self._send_json(
                writer, 200, {"models": sorted(registered_models())},
            )
        elif segments == ["jobs"] and method == "POST":
            await self._submit(body, writer)
        elif segments == ["jobs"] and method == "GET":
            await self._send_json(writer, 200, {
                "jobs": [h.status() for h in self.pool.jobs()],
            })
        elif len(segments) == 2 and segments[0] == "jobs":
            handle = self._handle_or_404(segments[1])
            if method != "GET":
                raise _HTTPError(405, "use GET for job status")
            await self._send_json(writer, 200, handle.status())
        elif len(segments) == 3 and segments[0] == "jobs":
            handle = self._handle_or_404(segments[1])
            action = segments[2]
            if action == "result" and method == "GET":
                await self._result(handle, query, writer)
            elif action == "cancel" and method == "POST":
                cancelled = self.pool.cancel(handle.id)
                await self._send_json(writer, 200, {
                    "id": handle.id, "cancelled": cancelled,
                    "state": handle.state.value,
                })
            elif action == "events" and method == "GET":
                await self._stream_events(handle, writer)
            else:
                raise _HTTPError(404, f"unknown action {action!r}")
        else:
            raise _HTTPError(404, f"no route for {method} {split.path}")

    def _handle_or_404(self, job_id: str) -> ClusterJobHandle:
        handle = self.pool.job(job_id)
        if handle is None:
            raise _HTTPError(404, f"unknown job {job_id!r}")
        return handle

    async def _submit(self, body: bytes, writer) -> None:
        try:
            data = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"bad JSON body: {exc}")
        request = ClusterJobRequest.from_dict(data)
        handle = self.pool.submit(request)
        await self._send_json(writer, 202, {
            "id": handle.id, "state": handle.state.value,
        })

    async def _result(self, handle, query, writer) -> None:
        try:
            timeout = float(query.get("timeout", 60.0))
        except ValueError:
            raise _HTTPError(400, "bad timeout")
        loop = asyncio.get_running_loop()
        done = await loop.run_in_executor(None, handle.wait, timeout)
        if not done:
            raise _HTTPError(
                408, f"job {handle.id} still {handle.state.value} "
                f"after {timeout:g}s",
            )
        status = handle.status()
        if handle.state.value == "done":
            status["result"] = summarise_result(handle.result_value)
        await self._send_json(writer, 200, status)

    async def _stream_events(self, handle, writer) -> None:
        """Chunked NDJSON: one telemetry event per line, then a final
        status line once the channel closes."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        channel = handle.channel
        try:
            while True:
                item, popped = await loop.run_in_executor(
                    None, channel.pop_item, True, 0.25,
                )
                if popped:
                    await self._write_chunk(writer, {
                        "kind": item.kind, "job_id": item.job_id,
                        "seq": item.seq, "t": json_safe(item.t),
                        "payload": json_safe(item.payload),
                    })
                elif channel.closed:
                    break
            await self._write_chunk(writer, {
                "kind": "end", "job_id": handle.id,
                "state": handle.state.value,
            })
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-stream
        finally:
            writer.close()

    @staticmethod
    async def _write_chunk(writer, obj: Dict[str, Any]) -> None:
        line = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
        writer.write(f"{len(line):x}\r\n".encode("ascii"))
        writer.write(line + b"\r\n")
        await writer.drain()

    async def _send_json(self, writer, status: int, obj: Any) -> None:
        try:
            payload = json.dumps(obj, sort_keys=True).encode("utf-8")
            reason = _REASONS.get(status, "OK")
            writer.write(
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii")
            )
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    def __enter__(self) -> "ClusterHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
