"""Bichler equations-in-states baseline (claim C2)."""

import math

import pytest

from repro.baselines import BichlerModel
from repro.core.model import HybridModel
from repro.dataflow import Diagram, FirstOrderLag, PID, Step, Sum


def lag_diagram():
    d = Diagram("lag")
    d.add(Step("src", amplitude=1.0))
    d.add(FirstOrderLag("plant", tau=0.5))
    d.connect("src.out", "plant.in")
    return d


class TestSemantics:
    def test_matches_analytic_solution(self):
        baseline = BichlerModel(lag_diagram(), h=0.001, probe="plant.out")
        baseline.run(2.0)
        expected = 1.0 - math.exp(-4.0)
        assert baseline.trajectory.y_final[0] == pytest.approx(
            expected, abs=5e-3
        )

    def test_equation_evaluations_counted(self):
        baseline = BichlerModel(lag_diagram(), h=0.01, probe="plant.out")
        baseline.run(1.0)
        assert baseline.capsule.equation_evaluations == 100

    def test_shares_network_with_streamer_path(self):
        """Identical equations: at the same h/solver the trajectories of
        Bichler and the streamer architecture coincide exactly."""
        baseline = BichlerModel(lag_diagram(), h=0.01, probe="plant.out")
        baseline.run(1.0)

        reference = lag_diagram()
        reference.finalise()
        model = HybridModel("ref")
        model.default_thread.binding.rebind("euler")
        model.default_thread.h = 0.01
        model.add_streamer(reference)
        model.add_probe("y", reference.port_at("plant.out"))
        model.run(until=1.0, sync_interval=0.01)

        assert baseline.trajectory.y_final[0] == pytest.approx(
            model.probe("y").y_final[0], abs=1e-9
        )


class TestArchitecturalCost:
    def test_one_dispatch_per_minor_step(self):
        """C2's root cause: every Euler step is a full queued message."""
        baseline = BichlerModel(lag_diagram(), h=0.001, probe="plant.out")
        baseline.run(1.0)
        metrics = baseline.metrics(1.0)
        assert metrics["messages_total"] == 1000
        assert metrics["timeouts"] == 1000

    def test_streamer_path_needs_no_messages(self):
        reference = lag_diagram()
        reference.finalise()
        model = HybridModel("ref")
        model.default_thread.h = 0.001
        model.add_streamer(reference)
        model.run(until=1.0, sync_interval=0.05)
        assert model.stats()["messages_dispatched"] == 0

    def test_message_rate_scales_inversely_with_h(self):
        rates = []
        for h in (0.01, 0.001):
            baseline = BichlerModel(lag_diagram(), h=h, probe="plant.out")
            baseline.run(0.5)
            rates.append(baseline.metrics(0.5)["messages_per_second"])
        assert rates[1] == pytest.approx(rates[0] * 10.0, rel=0.01)

    def test_stuck_at_euler(self):
        """The RTC-embedded integrator is structurally first-order: at a
        fixed h it is an order of magnitude less accurate than the
        streamer thread running RK4 at the same step."""
        h = 0.05
        baseline = BichlerModel(lag_diagram(), h=h, probe="plant.out")
        baseline.run(1.0)
        expected = 1.0 - math.exp(-2.0)
        euler_error = abs(baseline.trajectory.y_final[0] - expected)

        reference = lag_diagram()
        reference.finalise()
        model = HybridModel("ref")  # default thread: RK4
        model.default_thread.h = h
        model.add_streamer(reference)
        model.add_probe("y", reference.port_at("plant.out"))
        model.run(until=1.0, sync_interval=0.05)
        rk4_error = abs(model.probe("y").y_final[0] - expected)

        assert euler_error > 50 * rk4_error
