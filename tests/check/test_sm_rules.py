"""Positive and negative cases for every SM rule."""

from repro.check import run_checks
from repro.umlrt.statemachine import (
    StateMachine,
    add_timeout_transition,
)

from tests.check.builders import (
    TimerCapsule,
    TriggerCapsule,
    capsule_model,
    sm_both_guarded,
    sm_fallback,
    sm_guarded_choice,
    sm_shadowed,
    sm_with_orphan,
)


class TestSM001:
    def test_orphan_state_and_children_reported(self):
        result = run_checks(sm_with_orphan())
        subjects = {d.subject for d in result.by_code("SM001")}
        assert subjects == {"m.orphan", "m.orphan.child"}
        assert all(
            d.severity == "warning" for d in result.by_code("SM001")
        )

    def test_missing_initial_is_an_error(self):
        sm = StateMachine("noinit")
        sm.add_state("a")
        result = run_checks(sm)
        [finding] = result.by_code("SM001")
        assert finding.severity == "error"
        assert "initial" in finding.message

    def test_states_reached_through_choice_are_live(self):
        result = run_checks(sm_guarded_choice())
        assert not result.by_code("SM001")

    def test_composite_initial_drills_down(self):
        sm = StateMachine("deep")
        sm.add_state("outer")
        sm.add_state("outer.inner")
        sm.initial("outer")
        sm.initial("outer.inner", composite="outer")
        assert not run_checks(sm).by_code("SM001")

    def test_fixit_removes_the_state(self):
        sm = sm_with_orphan()
        result = run_checks(sm)
        for finding in result.by_code("SM001"):
            if finding.fixit is not None:
                finding.fixit()
        assert "orphan" not in sm.all_states()
        assert "orphan.child" not in sm.all_states()
        assert not run_checks(sm).by_code("SM001")


class TestSM002:
    def test_definite_shadow_is_an_error_with_details(self):
        result = run_checks(sm_shadowed())
        [finding] = result.by_code("SM002")
        assert finding.severity == "error"
        assert finding.subject == "m.idle"
        assert finding.details["signal"] == "go"
        assert finding.details["shadowed_target"] == "y"
        assert finding.details["winning_target"] == "x"
        assert finding.fixit is not None

    def test_fixit_removes_shadowed_transition(self):
        sm = sm_shadowed()
        [finding] = run_checks(sm).by_code("SM002")
        finding.fixit()
        targets = [t.target for t in sm.state("idle").transitions]
        assert targets == ["x"]
        assert not run_checks(sm).by_code("SM002")

    def test_two_guarded_transitions_warn(self):
        result = run_checks(sm_both_guarded())
        [finding] = result.by_code("SM002")
        assert finding.severity == "warning"
        assert finding.fixit is None

    def test_guarded_then_unguarded_fallback_not_reported(self):
        assert not run_checks(sm_fallback()).by_code("SM002")

    def test_wildcard_port_overlaps_named_port(self):
        sm = StateMachine("m")
        for name in ("idle", "x", "y"):
            sm.add_state(name)
        sm.initial("idle")
        sm.add_transition("idle", "x", trigger="go")  # any port
        sm.add_transition("idle", "y", trigger=("p", "go"))
        assert run_checks(sm).by_code("SM002")

    def test_different_signals_do_not_overlap(self):
        sm = StateMachine("m")
        for name in ("idle", "x", "y"):
            sm.add_state(name)
        sm.initial("idle")
        sm.add_transition("idle", "x", trigger=("p", "go"))
        sm.add_transition("idle", "y", trigger=("p", "stop"))
        assert not run_checks(sm).by_code("SM002")


class TestSM003:
    def test_unknown_port_reported(self):
        model = capsule_model(TriggerCapsule(port="q", signal="cmd"))
        findings = run_checks(model).by_code("SM003")
        assert findings
        assert all(d.severity == "error" for d in findings)
        assert "port" in findings[0].message

    def test_unreceivable_signal_reported(self):
        model = capsule_model(TriggerCapsule(port="p", signal="bogus"))
        findings = run_checks(model).by_code("SM003")
        assert findings
        assert findings[0].details["signal"] == "bogus"

    def test_valid_trigger_clean(self):
        model = capsule_model(TriggerCapsule(port="p", signal="cmd"))
        assert not run_checks(model).by_code("SM003")

    def test_bare_machine_skipped(self):
        # without a capsule there is no port table to check against
        assert not run_checks(sm_shadowed()).by_code("SM003")


class TestSM004:
    def test_timer_without_cancel_reported(self):
        model = capsule_model(TimerCapsule(cancels=False))
        findings = run_checks(model).by_code("SM004")
        assert [d.subject for d in findings] == ["tmr.wait"]

    def test_cancel_on_exit_clean(self):
        model = capsule_model(TimerCapsule(cancels=True))
        assert not run_checks(model).by_code("SM004")

    def test_add_timeout_transition_helper_clean(self):
        sm = StateMachine("m")
        sm.add_state("wait")
        sm.add_state("done")
        sm.initial("wait")
        add_timeout_transition(sm, "wait", 1.0, "done")
        sm.add_transition("done", "wait", trigger="again")
        assert not run_checks(sm).by_code("SM004")


class TestSM005:
    def test_all_guarded_choice_reported(self):
        result = run_checks(sm_guarded_choice())
        [finding] = result.by_code("SM005")
        assert finding.subject == "m.pick"

    def test_else_branch_clean(self):
        sm = sm_guarded_choice()
        sm.choice_points["pick"].add_branch("a")
        assert not run_checks(sm).by_code("SM005")
