"""``python -m repro.cluster`` — serve, submit, status, bench, smoke.

``serve``
    Host a worker pool behind the HTTP front-end until interrupted.
``submit``
    POST one job to a running cluster; optionally stream its telemetry
    and wait for the result summary.
``status``
    Pool snapshot (or one job's status) from a running cluster.
``bench``
    A quick in-process throughput sweep over worker counts (the full
    S11 benchmark lives in ``benchmarks/bench_s11_cluster.py``).
``smoke``
    The self-contained chaos harness CI runs: N workers behind HTTP,
    a sweep of checkpointing jobs, one worker SIGKILLed mid-run; every
    job must complete and every migrated job's result must be
    bitwise-identical (CRC-32 over probe arrays) to an uninterrupted
    rerun of the same request.  Writes a JSON report and exits non-zero
    on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.cluster.client import ClusterClient
from repro.cluster.http import ClusterHTTPServer
from repro.cluster.pool import ClusterConfig, WorkerPool
from repro.cluster.requests import ClusterJobRequest, ClusterRejected


def _parse_json_arg(text: Optional[str], flag: str) -> Dict[str, Any]:
    if not text:
        return {}
    try:
        value = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{flag} must be JSON: {exc}")
    if not isinstance(value, dict):
        raise SystemExit(f"{flag} must be a JSON object")
    return value


def _pool_config(args) -> ClusterConfig:
    return ClusterConfig(
        workers=args.workers,
        default_opt_level=getattr(args, "opt_level", 0),
        queue_limit=getattr(args, "queue_limit", 256),
    )


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    store_root = args.store or tempfile.mkdtemp(prefix="repro-cluster-")
    pool = WorkerPool(store_root, _pool_config(args))
    server = ClusterHTTPServer(pool, host=args.host, port=args.port)
    server.start()
    print(f"cluster: {args.workers} workers, store {store_root}")
    print(f"listening on {server.url}")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
        pool.shutdown()
    return 0


# ----------------------------------------------------------------------
# submit / status
# ----------------------------------------------------------------------
def cmd_submit(args) -> int:
    client = ClusterClient(args.url)
    request = ClusterJobRequest(
        kind=args.kind,
        model=args.model,
        params=_parse_json_arg(args.params, "--params"),
        model_args=_parse_json_arg(args.model_args, "--model-args"),
        client=args.client,
        deadline=args.deadline,
        retries=args.retries,
        checkpoint=not args.no_checkpoint,
        name=args.name,
    )
    try:
        job_id = client.submit(request)
    except ClusterRejected as exc:
        print(f"rejected ({exc.reason}): {exc}", file=sys.stderr)
        return 2
    print(f"submitted {job_id}")
    if args.stream:
        for event in client.stream(job_id):
            print(json.dumps(event, sort_keys=True))
    if args.wait or args.stream:
        status = client.result(job_id, timeout=args.timeout)
        print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def cmd_status(args) -> int:
    client = ClusterClient(args.url)
    snapshot = client.job(args.job) if args.job else client.status()
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# bench (quick inline sweep; full S11 is benchmarks/bench_s11_cluster.py)
# ----------------------------------------------------------------------
def _sweep_requests(jobs: int, client: str = "bench") -> List[ClusterJobRequest]:
    return [
        ClusterJobRequest(
            kind="batch", model="pendulum",
            params={
                "n": 64, "t_end": 1.0, "h": 1e-3,
                # one gain per instance, offset per job
                "sweeps": {"pid.kp": [
                    20.0 + i + 30.0 * k / 63.0 for k in range(64)
                ]},
            },
            model_args={"zeta": 0.05 + 0.001 * (i % 10)},
            client=client, checkpoint=False, name=f"bench-{i:03d}",
        )
        for i in range(jobs)
    ]


def _run_sweep(workers: int, jobs: int, store_root: str) -> Dict[str, Any]:
    with WorkerPool(store_root, ClusterConfig(workers=workers)) as pool:
        started = time.perf_counter()
        handles = [pool.submit(r) for r in _sweep_requests(jobs)]
        for handle in handles:
            handle.result(timeout=600.0)
        wall = time.perf_counter() - started
        status = pool.status()
    return {
        "workers": workers,
        "jobs": jobs,
        "wall_s": wall,
        "jobs_per_s": jobs / wall,
        "steals": status["steals"],
    }


def cmd_bench(args) -> int:
    rows = []
    for workers in args.worker_counts:
        with tempfile.TemporaryDirectory() as store_root:
            row = _run_sweep(workers, args.jobs, store_root)
        rows.append(row)
        print(
            f"workers={row['workers']:>2}  wall={row['wall_s']:7.2f}s  "
            f"throughput={row['jobs_per_s']:6.2f} jobs/s  "
            f"steals={row['steals']}"
        )
    if len(rows) > 1:
        speedup = rows[-1]["jobs_per_s"] / rows[0]["jobs_per_s"]
        print(f"speedup {rows[-1]['workers']}w vs {rows[0]['workers']}w: "
              f"{speedup:.2f}x")
    if args.report:
        Path(args.report).write_text(
            json.dumps({"sweep": rows}, indent=2, sort_keys=True) + "\n"
        )
        print(f"report -> {args.report}")
    return 0


# ----------------------------------------------------------------------
# smoke — the CI chaos harness
# ----------------------------------------------------------------------
def _probe_digests(result_summary: Dict[str, Any]) -> Dict[str, Any]:
    """The bitwise-comparable core of a result summary."""
    if result_summary.get("type") == "single_run":
        return {
            "t_final": result_summary["t_final"],
            "probes": {
                name: (p["times_crc32"], p["states_crc32"], p["rows"])
                for name, p in result_summary["probes"].items()
            },
        }
    if result_summary.get("type") == "batch":
        return {
            "t": result_summary["t_crc32"],
            "final_states": result_summary["final_states_crc32"],
            "series": {
                label: s["crc32"]
                for label, s in result_summary["series"].items()
            },
        }
    return result_summary


def _smoke_request(i: int) -> ClusterJobRequest:
    # long enough to survive until the kill, cheap enough for CI
    return ClusterJobRequest(
        kind="single_run", model="cruise",
        params={
            "t_end": 2.0, "sync_interval": 0.01,
            "checkpoint_every_steps": 40,
        },
        model_args={"setpoint": 20.0 + (i % 17)},
        client=f"smoke-{i % 4}", name=f"smoke-{i:03d}",
    )


def cmd_smoke(args) -> int:
    report: Dict[str, Any] = {
        "workers": args.workers, "jobs": args.jobs, "ok": False,
    }
    store_root = args.store or tempfile.mkdtemp(prefix="repro-smoke-")
    pool = WorkerPool(
        store_root,
        ClusterConfig(workers=args.workers, queue_limit=0),
    )
    server = ClusterHTTPServer(pool).start()
    client = ClusterClient(server.url)
    try:
        client.wait_ready()
        started = time.perf_counter()
        job_ids = [
            client.submit(_smoke_request(i)) for i in range(args.jobs)
        ]
        # let the pool get busy, then kill one busy worker over its knee
        kill_info: Dict[str, Any] = {}
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            busy = [
                w for w in client.status()["workers"] if w["current"]
            ]
            if busy:
                victim = busy[0]
                pid = pool.kill_worker(victim["id"])
                kill_info = {
                    "worker": victim["id"], "pid": pid,
                    "job": victim["current"],
                }
                break
            time.sleep(0.01)
        report["kill"] = kill_info
        if not kill_info:
            report["error"] = "no busy worker to kill"
            return _finish_smoke(report, args)

        outcomes = {
            job_id: client.result(job_id, timeout=args.timeout)
            for job_id in job_ids
        }
        report["wall_s"] = time.perf_counter() - started
        report["completed"] = sum(
            1 for o in outcomes.values() if o["state"] == "done"
        )
        migrated = {
            job_id: o for job_id, o in outcomes.items()
            if o["migrations"] > 0
        }
        report["migrated"] = sorted(migrated)
        if report["completed"] != args.jobs:
            report["error"] = (
                f"only {report['completed']}/{args.jobs} jobs completed"
            )
            return _finish_smoke(report, args)
        if not migrated:
            report["error"] = "the kill migrated no job"
            return _finish_smoke(report, args)

        # every migrated job must be bitwise-identical to an
        # uninterrupted rerun of the same request
        mismatches = []
        for job_id in migrated:
            index = job_ids.index(job_id)
            rerun_request = _smoke_request(index)
            rerun_request.name = f"rerun-{index:03d}"
            rerun_id = client.submit(rerun_request)
            rerun = client.result(rerun_id, timeout=args.timeout)
            a = _probe_digests(outcomes[job_id]["result"])
            b = _probe_digests(rerun["result"])
            if a != b:
                mismatches.append({"job": job_id, "got": a, "want": b})
        report["bitwise_mismatches"] = mismatches
        status = client.status()
        report["steals"] = status["steals"]
        report["migrations"] = status["migrations"]
        report["worker_deaths"] = sum(
            w["deaths"] for w in status["workers"]
        )
        report["ok"] = not mismatches
        return _finish_smoke(report, args)
    finally:
        server.stop()
        pool.shutdown()


def _finish_smoke(report: Dict[str, Any], args) -> int:
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    print(json.dumps(report, indent=2, sort_keys=True))
    if report["ok"]:
        print(
            f"smoke OK: {report['completed']} jobs, "
            f"{len(report['migrated'])} migrated bitwise-identically"
        )
        return 0
    print(f"smoke FAILED: {report.get('error', 'bitwise mismatch')}",
          file=sys.stderr)
    return 1


# ----------------------------------------------------------------------
def _int_list(text: str) -> List[int]:
    try:
        return [int(piece) for piece in text.split(",") if piece]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an int list: {text!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="sharded multi-worker simulation cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="host a cluster over HTTP")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--store", default=None,
                       help="shared store dir (default: a temp dir)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8731)
    serve.add_argument("--opt-level", type=int, default=0)
    serve.add_argument("--queue-limit", type=int, default=256)
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser("submit", help="submit one job")
    submit.add_argument("--url", default="http://127.0.0.1:8731")
    submit.add_argument("--kind", default="single_run",
                        choices=("single_run", "batch", "scenario"))
    submit.add_argument("--model", default="")
    submit.add_argument("--params", default=None, help="JSON object")
    submit.add_argument("--model-args", default=None, help="JSON object")
    submit.add_argument("--client", default="cli")
    submit.add_argument("--deadline", type=float, default=None)
    submit.add_argument("--retries", type=int, default=0)
    submit.add_argument("--no-checkpoint", action="store_true")
    submit.add_argument("--name", default="")
    submit.add_argument("--wait", action="store_true")
    submit.add_argument("--stream", action="store_true")
    submit.add_argument("--timeout", type=float, default=300.0)
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser("status", help="pool or job status")
    status.add_argument("--url", default="http://127.0.0.1:8731")
    status.add_argument("--job", default=None)
    status.set_defaults(func=cmd_status)

    bench = sub.add_parser("bench", help="quick throughput sweep")
    bench.add_argument("--worker-counts", type=_int_list, default=[1, 4])
    bench.add_argument("--jobs", type=int, default=24)
    bench.add_argument("--report", default=None)
    bench.set_defaults(func=cmd_bench)

    smoke = sub.add_parser(
        "smoke", help="CI chaos harness: kill a worker, verify bitwise",
    )
    smoke.add_argument("--workers", type=int, default=4)
    smoke.add_argument("--jobs", type=int, default=50)
    smoke.add_argument("--store", default=None)
    smoke.add_argument("--timeout", type=float, default=300.0)
    smoke.add_argument("--report", default=None)
    smoke.set_defaults(func=cmd_smoke)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
