"""Streaming telemetry and service metrics.

Two complementary observability surfaces for the job service:

* **Per-job event streams** — every job owns a bounded
  :class:`~repro.core.channel.Channel` (the paper's thread-communication
  primitive, reused verbatim: a service consumer is just one more
  receiver on a bounded channel with an overflow policy).  Jobs push
  :class:`TelemetryEvent` records — progress ticks, partial trajectory
  chunks, state transitions — and the engine closes the channel when the
  job reaches a terminal state, so ``for event in handle.stream():``
  terminates naturally.

* **Service-wide metrics** — a :class:`MetricsRegistry` of named
  counters, gauges and histograms (queue depth, cache hit-rate, job
  wall-time).  Histogram summaries reuse the percentile vocabulary of
  :func:`repro.analysis.metrics.percentiles`, so a service dashboard and
  an EXPERIMENTS.md table read the same "p50"/"p95".
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.analysis.metrics import percentiles

#: event kinds a job may emit (terminal states are emitted by the engine)
PROGRESS = "progress"
CHUNK = "chunk"
STATE = "state"
LOG = "log"
#: a retried attempt restored from a checkpoint instead of cold-starting;
#: payload carries the recovered sim-time/steps (resilience layer)
RESUMED = "resumed"
#: static-check findings for a submitted job (lint gate, warn policy);
#: payload carries per-severity counts and the diagnostic records
CHECKS = "checks"
#: execution-backend resolution for a job; payload carries the
#: requested and effective backend names and, on a fallback, the reason
BACKEND = "backend"
#: a cluster job left a dead worker and was re-dispatched to a live one;
#: payload carries the lost worker, the attempt count and what the
#: shared checkpoint store knows about the job (cluster layer)
MIGRATED = "migrated"
#: cluster worker lifecycle (spawned / lost / respawned); payload
#: carries the worker id and, for deaths, the in-flight job if any
WORKER = "worker"
#: deadline-aware admission decision for a submitted job; payload
#: carries admitted/reason plus the predicted cost and completion the
#: decision was based on (see repro.service.admission)
ADMISSION = "admission"


@dataclass(frozen=True)
class TelemetryEvent:
    """One item on a job's telemetry channel."""

    kind: str
    job_id: str
    #: monotonically increasing per-job sequence number
    seq: int
    #: simulation time the event refers to (NaN for untimed events)
    t: float
    payload: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TelemetryEvent({self.kind}, job={self.job_id}, "
            f"seq={self.seq}, t={self.t:g})"
        )


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe point-in-time value (e.g. queue depth)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A bounded-reservoir sample of observations (latencies, sizes).

    Keeps the most recent ``capacity`` observations in a ring; the
    summary reports count over *all* observations ever made but
    percentiles over the retained window — the standard sliding-window
    compromise that keeps memory bounded on a long-lived service.
    """

    __slots__ = ("name", "capacity", "_ring", "_next", "_count", "_lock")

    def __init__(self, name: str, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"histogram capacity must be >= 1: {capacity}")
        self.name = name
        self.capacity = capacity
        self._ring: list = []
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            if len(self._ring) < self.capacity:
                self._ring.append(float(value))
            else:
                self._ring[self._next] = float(value)
                self._next = (self._next + 1) % self.capacity
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def summary(
        self, levels: Tuple[float, ...] = (50.0, 95.0)
    ) -> Dict[str, float]:
        with self._lock:
            window = list(self._ring)
            total = self._count
        out = percentiles(window, levels=levels)
        out["count"] = total
        return out

    def dump(self) -> Dict[str, Any]:
        """Raw transferable state: the retained window plus the lifetime
        count (plain data, picklable — the cross-process wire form)."""
        with self._lock:
            return {"window": list(self._ring), "count": self._count}

    def merge(self, dump: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`dump` into this one.

        Window values enter the ring as fresh observations; the lifetime
        count adds the *dumped* count (not the window length), so counts
        stay exact even when the remote window already wrapped.
        """
        window = list(dump.get("window", ()))
        with self._lock:
            for value in window:
                if len(self._ring) < self.capacity:
                    self._ring.append(float(value))
                else:
                    self._ring[self._next] = float(value)
                    self._next = (self._next + 1) % self.capacity
            self._count += max(int(dump.get("count", 0)), 0)


class MetricsRegistry:
    """A thread-safe, create-on-first-use registry of named metrics.

    One registry per :class:`~repro.service.SimulationService`;
    :meth:`snapshot` renders every metric into one nested plain-dict —
    the shape the service exposes to callers, prints in examples and
    serialises into ``BENCH_*.json`` artefacts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str, capacity: int = 1024) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, capacity)
            return metric

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: metric.value for name, metric in sorted(counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(gauges.items())
            },
            "histograms": {
                name: metric.summary()
                for name, metric in sorted(histograms.items())
            },
        }

    def dump(self) -> Dict[str, Dict[str, Any]]:
        """Transferable raw state of every metric (plain data only).

        Unlike :meth:`snapshot` — which summarises histograms into
        percentiles — a dump keeps raw observation windows, so a
        coordinator can :meth:`merge` worker registries without losing
        distribution information.  This is the form worker processes
        ship back over pickled queues.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: metric.value for name, metric in counters.items()
            },
            "gauges": {
                name: metric.value for name, metric in gauges.items()
            },
            "histograms": {
                name: metric.dump() for name, metric in histograms.items()
            },
        }

    def merge(self, dump: Dict[str, Dict[str, Any]]) -> None:
        """Fold a remote registry's :meth:`dump` into this one.

        Counters add, gauges take the remote value (last-writer-wins —
        remote gauges describe the remote process), histograms merge
        windows and counts.  Used by the job engine's process executor
        and the cluster coordinator to surface worker-side metrics that
        were previously dropped on the floor.
        """
        for name, value in dump.get("counters", {}).items():
            if value:
                self.counter(name).inc(int(value))
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_dump in dump.get("histograms", {}).items():
            self.histogram(name).merge(hist_dump)


class EventEmitter:
    """Sequenced event production bound to one job's channel.

    Emission never blocks a job: the channel's OVERWRITE policy sheds
    the *oldest* events under consumer lag (freshest-data semantics,
    like the paper's control channels), and emitting after the consumer
    vanished is a no-op rather than an error.
    """

    def __init__(self, job_id: str, channel) -> None:
        self.job_id = job_id
        self.channel = channel
        self._seq = itertools.count()

    def emit(
        self,
        kind: str,
        t: float = float("nan"),
        **payload: Any,
    ) -> Optional[TelemetryEvent]:
        event = TelemetryEvent(
            kind=kind,
            job_id=self.job_id,
            seq=next(self._seq),
            t=t,
            payload=payload,
        )
        try:
            self.channel.push(event)
        except Exception:
            return None
        return event
