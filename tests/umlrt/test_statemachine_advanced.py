"""Advanced state-machine semantics: deep history, chained choices,
nested self-transitions and trace bookkeeping."""

import pytest

from repro.umlrt.signal import Message
from repro.umlrt.statemachine import StateMachine, StateMachineError


class FakePort:
    def __init__(self, name="p"):
        self.name = name


def msg(signal, data=None):
    return Message(signal, data=data, port=FakePort())


class Recorder:
    def __init__(self):
        self.log = []

    def note(self, tag):
        def action(capsule, message):
            capsule.log.append(tag)

        return action


def deep_machine(mode="deep"):
    sm = StateMachine("m")
    sm.add_state("work", history=mode)
    sm.add_state("work.phase1")
    sm.add_state("work.phase2")
    sm.add_state("work.phase2.a")
    sm.add_state("work.phase2.b")
    sm.add_state("paused")
    sm.initial("work")
    sm.initial("work.phase1", composite="work")
    sm.initial("work.phase2.a", composite="work.phase2")
    sm.add_transition("work.phase1", "work.phase2", trigger="advance")
    sm.add_transition("work.phase2.a", "work.phase2.b", trigger="inner")
    sm.add_transition("work", "paused", trigger="pause")
    sm.add_transition("paused", "work", trigger="resume")
    return sm


class TestDeepHistory:
    def test_deep_history_restores_innermost(self):
        sm = deep_machine("deep")
        ctx = Recorder()
        sm.start(ctx)
        sm.dispatch(ctx, msg("advance"))
        sm.dispatch(ctx, msg("inner"))
        assert sm.active_path == "work.phase2.b"
        sm.dispatch(ctx, msg("pause"))
        sm.dispatch(ctx, msg("resume"))
        assert sm.active_path == "work.phase2.b"  # innermost restored

    def test_shallow_history_restores_one_level(self):
        sm = deep_machine("shallow")
        ctx = Recorder()
        sm.start(ctx)
        sm.dispatch(ctx, msg("advance"))
        sm.dispatch(ctx, msg("inner"))
        sm.dispatch(ctx, msg("pause"))
        sm.dispatch(ctx, msg("resume"))
        # phase2 restored, but inner config re-drilled through initial
        assert sm.active_path == "work.phase2.a"

    def test_first_entry_uses_initial(self):
        sm = deep_machine("deep")
        ctx = Recorder()
        sm.start(ctx)
        assert sm.active_path == "work.phase1"


class TestChainedChoicePoints:
    def build(self):
        sm = StateMachine("m")
        sm.add_state("start")
        sm.add_state("low")
        sm.add_state("mid")
        sm.add_state("high")
        sm.initial("start")
        first = sm.add_choice("c1")
        first.add_branch("high", guard=lambda c, m: m.data > 100)
        first.add_branch("c2")  # chain to a second choice
        second = sm.add_choice("c2")
        second.add_branch("mid", guard=lambda c, m: m.data > 10)
        second.add_branch("low")
        sm.add_transition("start", "c1", trigger="value")
        return sm

    @pytest.mark.parametrize("value,expected", [
        (500, "high"), (50, "mid"), (5, "low"),
    ])
    def test_chained_resolution(self, value, expected):
        sm = self.build()
        ctx = Recorder()
        sm.start(ctx)
        sm.dispatch(ctx, msg("value", data=value))
        assert sm.active_path == expected

    def test_choice_cycle_detected(self):
        sm = StateMachine("m")
        sm.add_state("a")
        sm.initial("a")
        c1 = sm.add_choice("c1")
        c2 = sm.add_choice("c2")
        c1.add_branch("c2")
        c2.add_branch("c1")
        sm.add_transition("a", "c1", trigger="go")
        ctx = Recorder()
        sm.start(ctx)
        with pytest.raises(StateMachineError, match="cycle"):
            sm.dispatch(ctx, msg("go"))


class TestNestedSelfTransitions:
    def test_composite_self_transition_resets_children(self):
        sm = StateMachine("m")
        log = Recorder()
        sm.add_state("comp", entry=log.note("enter_comp"),
                     exit=log.note("exit_comp"))
        sm.add_state("comp.a")
        sm.add_state("comp.b")
        sm.initial("comp")
        sm.initial("comp.a", composite="comp")
        sm.add_transition("comp.a", "comp.b", trigger="next")
        sm.add_transition("comp", "comp", trigger="reset")
        sm.start(log)
        sm.dispatch(log, msg("next"))
        assert sm.active_path == "comp.b"
        sm.dispatch(log, msg("reset"))
        assert sm.active_path == "comp.a"  # re-drilled via initial
        assert log.log == ["enter_comp", "exit_comp", "enter_comp"]


class TestTraceBookkeeping:
    def test_trace_records_lifecycle(self):
        sm = StateMachine("m")
        sm.trace_enabled = True
        sm.add_state("a")
        sm.add_state("b")
        sm.initial("a")
        sm.add_transition("a", "b", trigger="go")
        ctx = Recorder()
        sm.start(ctx)
        sm.dispatch(ctx, msg("go"))
        sm.dispatch(ctx, msg("bogus"))
        kinds = [kind for kind, __ in sm.trace]
        assert kinds == ["enter", "exit", "fire", "enter", "drop"]

    def test_trace_disabled_by_default(self):
        sm = StateMachine("m")
        sm.add_state("a")
        sm.initial("a")
        sm.start(Recorder())
        assert sm.trace == []
