"""HybridModel -> UML package export."""

import pytest

from tests.conftest import ConstLeaf, IntegratorLeaf

from repro.core.model import HybridModel
from repro.metamodel import (
    figure3_capsule_model,
    from_xmi,
    model_stereotype_census,
    model_to_package,
    to_xmi,
)


def simple_model():
    model = HybridModel("exported")
    const = model.add_streamer(ConstLeaf("src", 1.0))
    integ = model.add_streamer(IntegratorLeaf("integ"))
    model.add_flow(const.dport("y"), integ.dport("u"))
    return model


class TestExport:
    def test_streamers_become_stereotyped_classes(self):
        package = model_to_package(simple_model())
        assert package.classifier("src").stereotypes == ["streamer"]
        assert package.classifier("integ").stereotypes == ["streamer"]

    def test_dports_become_attributes(self):
        package = model_to_package(simple_model())
        attrs = {a.name: a for a in package.classifier("integ").attributes}
        assert "u" in attrs and "y" in attrs
        assert attrs["u"].type_name.startswith("DPort<")

    def test_flows_become_associations(self):
        package = model_to_package(simple_model())
        names = [a.name for a in package.associations]
        assert any("flow_src_integ" in n for n in names)

    def test_solver_tagged_value(self):
        model = simple_model()
        model.scheduler().build()
        package = model_to_package(model)
        assert package.classifier("integ").tagged_values["solver"] == "rk4"
        assert package.classifier("integ").tagged_values["states"] == "1"

    def test_figure3_model_exports_fully(self):
        model, top = figure3_capsule_model()
        model.scheduler().build()
        package = model_to_package(model)
        census = model_stereotype_census(package)
        assert census["streamer"] == 2
        # top capsule + sub capsule + 2 hidden bridges
        assert census["capsule"] == 4
        # capsule containment is a composite association
        composites = [
            a for a in package.associations
            if a.end1.aggregation == "composite"
        ]
        assert composites
        # sport bridges appear as capsule<->streamer associations
        sports = [a for a in package.associations
                  if a.name.startswith("sport_")]
        assert len(sports) == 2

    def test_export_round_trips_through_xmi(self):
        model, __ = figure3_capsule_model()
        model.scheduler().build()
        package = model_to_package(model)
        restored = from_xmi(to_xmi(package))
        assert set(restored.classifiers) == set(package.classifiers)
        assert len(restored.associations) == len(package.associations)

    def test_nested_streamers_export_containment(self):
        from repro.metamodel import figure2_streamer

        model = HybridModel("fig2")
        model.add_streamer(figure2_streamer())
        package = model_to_package(model)
        assert "top_sub1" in package.classifiers
        contains = [a for a in package.associations
                    if "contains" in a.name]
        assert len(contains) == 3
