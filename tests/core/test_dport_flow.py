"""DPorts, flows and relays (rules W1, W2, W5)."""

import pytest

from repro.core.dport import Direction, DPort, DPortError
from repro.core.flow import Flow, FlowError, Relay, fan_out, fan_out_taps, wire_fan_out
from repro.core.flowtype import SCALAR, DataKind, FlowType, FlowTypeError


def record(name, **fields):
    return FlowType.record(name, fields)


class TestDPort:
    def test_scalar_read_write(self):
        port = DPort("p", Direction.OUT, SCALAR)
        port.write(3.5)
        assert port.read_scalar() == 3.5
        assert port.writes == 1 and port.reads == 1

    def test_record_read_write(self):
        ft = record("imu", ax=DataKind.FLOAT, ok=DataKind.BOOL)
        port = DPort("p", Direction.OUT, ft)
        port.write({"ax": 1.0, "ok": True})
        assert port.read() == {"ax": 1.0, "ok": True}

    def test_default_value_is_zeroed(self):
        port = DPort("p", Direction.IN, SCALAR)
        assert port.read_scalar() == 0.0

    def test_scalar_write_to_record_rejected(self):
        ft = record("imu", ax=DataKind.FLOAT, ay=DataKind.FLOAT)
        port = DPort("p", Direction.OUT, ft)
        with pytest.raises(FlowTypeError):
            port.write(1.0)

    def test_nonconforming_record_rejected(self):
        port = DPort("p", Direction.OUT, SCALAR)
        with pytest.raises(FlowTypeError):
            port.write({"wrong": 1.0})

    def test_relay_only_write_rejected(self):
        port = DPort("p", Direction.IN, SCALAR, relay_only=True)
        with pytest.raises(DPortError, match="W5"):
            port.write(1.0)

    def test_relay_only_internal_store_allowed(self):
        port = DPort("p", Direction.IN, SCALAR, relay_only=True)
        port._store(2.0)
        assert port.read_scalar() == 2.0

    def test_read_scalar_on_record_rejected(self):
        ft = record("r", a=DataKind.FLOAT)
        port = DPort("p", Direction.IN, ft)
        with pytest.raises(DPortError):
            port.read_scalar()

    def test_peek_does_not_count(self):
        port = DPort("p", Direction.OUT, SCALAR)
        port.peek()
        assert port.reads == 0


class TestFlow:
    def test_valid_flow(self):
        src = DPort("src", Direction.OUT, SCALAR)
        dst = DPort("dst", Direction.IN, SCALAR)
        flow = Flow(src, dst)
        src.write(7.0)
        flow.propagate()
        assert dst.read_scalar() == 7.0
        assert flow.transfers == 1

    def test_w1_violation_rejected(self):
        big = record("big", x=DataKind.FLOAT, y=DataKind.FLOAT)
        small = record("small", x=DataKind.FLOAT)
        src = DPort("src", Direction.OUT, big)
        dst = DPort("dst", Direction.IN, small)
        with pytest.raises(FlowError, match="W1"):
            Flow(src, dst)

    def test_subset_flow_merges_missing_fields(self):
        small = record("small", x=DataKind.FLOAT)
        big = record("big", x=DataKind.FLOAT, y=DataKind.FLOAT)
        src = DPort("src", Direction.OUT, small)
        dst = DPort("dst", Direction.IN, big)
        flow = Flow(src, dst)
        dst._store({"x": 0.0, "y": 9.0})
        src.write({"x": 5.0})
        flow.propagate()
        assert dst.read() == {"x": 5.0, "y": 9.0}  # y retained

    def test_self_flow_rejected(self):
        port = DPort("p", Direction.OUT, SCALAR)
        with pytest.raises(FlowError):
            Flow(port, port)


class TestRelay:
    def test_two_similar_flows(self):
        relay = Relay("split", SCALAR)
        relay.input._store(4.0)
        relay.propagate()
        assert relay.out_a.read_scalar() == 4.0
        assert relay.out_b.read_scalar() == 4.0

    def test_pads(self):
        relay = Relay("split", SCALAR)
        assert len(relay.pads) == 3
        assert relay.input.is_in
        assert relay.out_a.is_out and relay.out_b.is_out

    def test_record_relay(self):
        ft = record("r", a=DataKind.FLOAT, b=DataKind.BOOL)
        relay = Relay("split", ft)
        relay.input._store({"a": 1.0, "b": True})
        relay.propagate()
        assert relay.out_a.read() == {"a": 1.0, "b": True}


class TestFanOut:
    def test_fan_out_counts(self):
        relays = fan_out("fo", SCALAR, ways=4)
        assert len(relays) == 3
        taps = fan_out_taps(relays)
        assert len(taps) == 4

    def test_fan_out_minimum(self):
        with pytest.raises(FlowError):
            fan_out("fo", SCALAR, ways=1)

    def test_chain_propagation(self):
        relays = fan_out("fo", SCALAR, ways=3)
        flows = wire_fan_out(relays)
        relays[0].input._store(2.5)
        for relay, flow in zip(relays, flows + [None]):
            relay.propagate()
            if flow is not None:
                flow.propagate()
        for tap in fan_out_taps(relays):
            assert tap.read_scalar() == 2.5

    def test_empty_taps(self):
        assert fan_out_taps([]) == []
