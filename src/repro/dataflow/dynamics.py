"""Continuous dynamic blocks: the differential-equation carriers.

These blocks own the continuous state the paper's solvers integrate:
integrators, first/second-order lags, rational transfer functions
(realised in controllable canonical form), general state-space systems and
a PID controller with filtered derivative.

None of them is direct-feedthrough except where D ≠ 0 (StateSpace decides
at construction; PID and TransferFunction with equal degree are
feedthrough), so pure-feedback diagrams remain algebraic-loop free.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dataflow.block import Block, BlockError


class Integrator(Block):
    """``dy/dt = in`` with optional output saturation and reset.

    With ``lower``/``upper`` limits the integrator *clamps in the
    derivative* (anti-windup style): at a saturated bound, inflow pointing
    further out is zeroed.  A capsule can reset the state by sending the
    ``reset`` tuning signal with the new value as payload.
    """

    default_inputs = ("in",)
    state_size = 1

    def __init__(
        self,
        name: str,
        y0: float = 0.0,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> None:
        if lower is not None and upper is not None and lower >= upper:
            raise BlockError(
                f"integrator {name!r}: lower {lower} >= upper {upper}"
            )
        super().__init__(name, y0=float(y0))
        self.lower = lower
        self.upper = upper

    def initial_state(self) -> np.ndarray:
        return np.array([self.params["y0"]], dtype=float)

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        u = self.in_scalar("in")
        y = state[0]
        if self.upper is not None and y >= self.upper and u > 0.0:
            u = 0.0
        if self.lower is not None and y <= self.lower and u < 0.0:
            u = 0.0
        return np.array([u])

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        y = state[0]
        if self.upper is not None:
            y = min(y, self.upper)
        if self.lower is not None:
            y = max(y, self.lower)
        self.out_scalar("out", y)

    def handle_signal(self, sport_name: str, message) -> None:
        if message.signal == "reset":
            value = float(message.data or 0.0)
            self.params["y0"] = value
            self.request_state_reset([value])
            return
        super().handle_signal(sport_name, message)


class FirstOrderLag(Block):
    """``tau * dy/dt + y = k * u`` — the ubiquitous PT1 element."""

    default_inputs = ("in",)
    state_size = 1

    def __init__(
        self, name: str, tau: float = 1.0, k: float = 1.0, y0: float = 0.0
    ) -> None:
        if tau <= 0:
            raise BlockError(f"lag {name!r}: non-positive tau {tau}")
        super().__init__(name, tau=float(tau), k=float(k), y0=float(y0))

    def initial_state(self) -> np.ndarray:
        return np.array([self.params["y0"]], dtype=float)

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        p = self.params
        u = self.in_scalar("in")
        return np.array([(p["k"] * u - state[0]) / p["tau"]])

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", state[0])


class SecondOrderSystem(Block):
    """``y'' + 2ζω y' + ω² y = ω² k u`` — canonical oscillator/PT2."""

    default_inputs = ("in",)
    state_size = 2

    def __init__(
        self,
        name: str,
        omega: float = 1.0,
        zeta: float = 0.7,
        k: float = 1.0,
        y0: float = 0.0,
        v0: float = 0.0,
    ) -> None:
        if omega <= 0:
            raise BlockError(f"pt2 {name!r}: non-positive omega {omega}")
        if zeta < 0:
            raise BlockError(f"pt2 {name!r}: negative zeta {zeta}")
        super().__init__(
            name, omega=float(omega), zeta=float(zeta), k=float(k),
            y0=float(y0), v0=float(v0),
        )

    def initial_state(self) -> np.ndarray:
        return np.array([self.params["y0"], self.params["v0"]], dtype=float)

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        p = self.params
        y, v = state
        u = self.in_scalar("in")
        acc = p["omega"] ** 2 * (p["k"] * u - y) - 2.0 * p["zeta"] * p["omega"] * v
        return np.array([v, acc])

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", state[0])


class TransferFunction(Block):
    """SISO rational transfer function ``num(s)/den(s)``.

    Realised in controllable canonical form.  ``deg(num) <= deg(den)``;
    equal degrees introduce direct feedthrough (D ≠ 0), which the block
    reports so loop detection stays sound.
    """

    default_inputs = ("in",)

    def __init__(
        self, name: str, num: Sequence[float], den: Sequence[float]
    ) -> None:
        num = [float(c) for c in num]
        den = [float(c) for c in den]
        while num and num[0] == 0.0:
            num = num[1:]
        while den and den[0] == 0.0:
            den = den[1:]
        if not den:
            raise BlockError(f"tf {name!r}: zero denominator")
        if len(num) > len(den):
            raise BlockError(
                f"tf {name!r}: improper transfer function "
                f"(deg num {len(num) - 1} > deg den {len(den) - 1})"
            )
        super().__init__(name)
        n = len(den) - 1
        self.n = n
        a0 = den[0]
        den_norm = [c / a0 for c in den]
        num_norm = [c / a0 for c in num]
        # pad numerator to same length as denominator
        num_padded = [0.0] * (len(den_norm) - len(num_norm)) + num_norm
        self.d = num_padded[0]
        # controllable canonical form
        self.a = np.array(den_norm[1:], dtype=float)       # a1..an
        b = np.array(num_padded[1:], dtype=float)           # b1..bn
        self.c = b - self.d * self.a
        self.direct_feedthrough = self.d != 0.0

    @property
    def state_size(self) -> int:  # type: ignore[override]
        return self.n

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        u = self.in_scalar("in")
        if self.n == 0:
            return np.empty(0)
        dstate = np.empty(self.n)
        dstate[:-1] = state[1:]
        dstate[-1] = u - float(self.a[::-1] @ state)
        return dstate

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        u = self.in_scalar("in")
        y = self.d * u
        if self.n:
            y += float(self.c[::-1] @ state)
        self.out_scalar("out", y)


class StateSpace(Block):
    """General LTI system ``x' = Ax + Bu, y = Cx + Du`` (SISO ports).

    ``u`` and ``y`` are scalars; A is ``n×n``, B ``n×1``, C ``1×n``,
    D scalar.  ``direct_feedthrough`` is D ≠ 0.
    """

    default_inputs = ("in",)

    def __init__(
        self,
        name: str,
        a: Sequence[Sequence[float]],
        b: Sequence[float],
        c: Sequence[float],
        d: float = 0.0,
        x0: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name)
        self.a = np.atleast_2d(np.asarray(a, dtype=float))
        self.b = np.asarray(b, dtype=float).reshape(-1)
        self.c = np.asarray(c, dtype=float).reshape(-1)
        self.d = float(d)
        n = self.a.shape[0]
        if self.a.shape != (n, n):
            raise BlockError(f"ss {name!r}: A must be square")
        if self.b.shape != (n,) or self.c.shape != (n,):
            raise BlockError(
                f"ss {name!r}: B/C dimensions must match A ({n})"
            )
        self._n = n
        self.x0 = (
            np.zeros(n) if x0 is None else np.asarray(x0, dtype=float)
        )
        if self.x0.shape != (n,):
            raise BlockError(f"ss {name!r}: x0 must have {n} entries")
        self.direct_feedthrough = self.d != 0.0

    @property
    def state_size(self) -> int:  # type: ignore[override]
        return self._n

    def initial_state(self) -> np.ndarray:
        return self.x0.copy()

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        u = self.in_scalar("in")
        return self.a @ state + self.b * u

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        u = self.in_scalar("in")
        self.out_scalar("out", float(self.c @ state) + self.d * u)


class PID(Block):
    """Continuous PID with filtered derivative and anti-windup clamping.

    ``u = kp·e + ki·∫e + kd·ė_f`` where ``ė_f`` comes from a first-order
    filter of time constant ``tf`` (states: integral, filtered error).
    When ``u_min``/``u_max`` are set, the command saturates and the
    integrator conditionally freezes (clamping anti-windup).
    """

    default_inputs = ("in",)  # the error signal
    state_size = 2
    direct_feedthrough = True

    def __init__(
        self,
        name: str,
        kp: float = 1.0,
        ki: float = 0.0,
        kd: float = 0.0,
        tf: float = 0.01,
        u_min: Optional[float] = None,
        u_max: Optional[float] = None,
    ) -> None:
        if tf <= 0:
            raise BlockError(f"pid {name!r}: non-positive filter tf {tf}")
        super().__init__(
            name, kp=float(kp), ki=float(ki), kd=float(kd), tf=float(tf)
        )
        self.u_min = u_min
        self.u_max = u_max

    def _raw_command(self, state: np.ndarray, e: float) -> float:
        p = self.params
        integral, e_filt = state
        de = (e - e_filt) / p["tf"]
        return p["kp"] * e + p["ki"] * integral + p["kd"] * de

    def _saturate(self, u: float) -> float:
        if self.u_max is not None:
            u = min(u, self.u_max)
        if self.u_min is not None:
            u = max(u, self.u_min)
        return u

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        p = self.params
        e = self.in_scalar("in")
        raw = self._raw_command(state, e)
        saturated = self._saturate(raw)
        # clamping anti-windup: freeze integral while pushing past limits
        d_integral = e
        if raw != saturated and raw * e > 0:
            d_integral = 0.0
        d_filt = (e - state[1]) / p["tf"]
        return np.array([d_integral, d_filt])

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        e = self.in_scalar("in")
        self.out_scalar("out", self._saturate(self._raw_command(state, e)))
