"""Concurrent plan-cache access across OS processes.

Satellite for the cluster PR: ≥4 processes hammer one shared store
directory — get-or-compile the *same* key (single-compile semantics
must hold across processes, not just threads) and *distinct* keys
(no false sharing), with every published artifact CRC-verified (no
torn writes become visible).

The worker functions live at module level so the ``spawn`` start
method can import them; results come back over a queue as plain
tuples.
"""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.cluster.store import ArtifactStore, decode_artifact

PROCESSES = 6
ROUNDS = 5


def _hammer_same_key(store_root, worker_id, results):
    """Everyone compiles the same key; report (compiles, values)."""
    store = ArtifactStore(store_root, compile_timeout=60.0)
    values = []
    for __ in range(ROUNDS):
        value = store.get_or_compile(
            "shared-plan", lambda: {"owner": worker_id, "blob": list(range(500))},
        )
        values.append(value["owner"])
    results.put((worker_id, store.compiles, values))


def _hammer_distinct_keys(store_root, worker_id, results):
    """Each process owns a key but also reads every other key."""
    store = ArtifactStore(store_root, compile_timeout=60.0)
    own = store.get_or_compile(
        f"plan-{worker_id}", lambda: {"owner": worker_id},
    )
    seen = {}
    for other in range(PROCESSES):
        value = store.get_or_compile(
            f"plan-{other}", lambda: {"owner": other},
        )
        seen[other] = value["owner"]
    results.put((worker_id, own["owner"], seen))


def _run_processes(target, store_root):
    ctx = mp.get_context("spawn")
    results = ctx.Queue()
    processes = [
        ctx.Process(target=target, args=(store_root, wid, results))
        for wid in range(PROCESSES)
    ]
    for process in processes:
        process.start()
    collected = [results.get(timeout=120) for __ in processes]
    for process in processes:
        process.join(timeout=30)
        assert process.exitcode == 0
    return collected


class TestCrossProcessSingleCompile:
    def test_same_key_compiles_exactly_once(self, tmp_path):
        collected = _run_processes(_hammer_same_key, str(tmp_path))
        assert len(collected) == PROCESSES
        total_compiles = sum(compiles for __, compiles, __ in collected)
        assert total_compiles == 1, (
            f"single-compile violated: {total_compiles} compiles"
        )
        # every process saw the one published value, every round
        owners = {
            owner for __, __, values in collected for owner in values
        }
        assert len(owners) == 1

    def test_distinct_keys_no_cross_talk(self, tmp_path):
        collected = _run_processes(_hammer_distinct_keys, str(tmp_path))
        for worker_id, own_owner, seen in collected:
            assert own_owner == worker_id
            assert seen == {i: i for i in range(PROCESSES)}

    def test_no_torn_artifacts_on_disk(self, tmp_path):
        _run_processes(_hammer_same_key, str(tmp_path))
        _run_processes(_hammer_distinct_keys, str(tmp_path))
        store = ArtifactStore(tmp_path)
        published = sorted(store.artifacts_dir.rglob("*.art"))
        assert len(published) == 1 + PROCESSES
        for path in published:
            decode_artifact(path.read_bytes())  # raises if torn
        # no lock or temp litter left behind
        assert not list(store.artifacts_dir.rglob("*.lock"))
        assert not list(store.artifacts_dir.rglob("*.tmp-*"))
