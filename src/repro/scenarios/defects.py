"""Defect scenario builders — one per registered check-rule code.

The campaign's ``defect`` family exists to drive the *rules* coverage
dimension: each builder returns a check target (model, diagram or state
machine) seeded with exactly the flaw one rule catches, mirroring the
builders the checker's own tests use.  The registry maps a stable name
to the builder, the codes it must fire and any :class:`~repro.check.
CheckConfig` keywords the rule needs (W12 only reports under
``w12_compat=True``).

``W3`` has no builder: the DPort constructor already rejects a missing
flow type, so the rule is defensively unreachable — 26 of the 27
registered codes are coverable, which is what the campaign's >= 90%
rules bar is calibrated against.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Mapping, NamedTuple

from repro.core.dport import Direction
from repro.core.flowtype import SCALAR, DataKind, FlowType
from repro.core.model import HybridModel
from repro.core.streamer import Streamer
from repro.dataflow import (
    Bias, Constant, Gain, Integrator, MovingAverage, Step,
)
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.statemachine import StateMachine

#: record flow types for the narrowing (STR005) and W1 builders
POS = FlowType.record("pos", {"x": DataKind.FLOAT})
POSVEL = FlowType.record(
    "posvel", {"x": DataKind.FLOAT, "v": DataKind.FLOAT}
)

#: protocol for the capsule builders; the conjugate role receives
#: exactly {"cmd"}
SCN = Protocol.define("Scn", outgoing=("cmd",), incoming=("ack",))


class RecordSource(Streamer):
    """Emits a record flow type on OUT ``out``."""

    def __init__(self, name: str, flow_type: FlowType) -> None:
        super().__init__(name)
        self.add_out("out", flow_type)


class RecordSink(Streamer):
    """Absorbs a record flow type on IN ``in`` (no outputs: a sink)."""

    direct_feedthrough = True

    def __init__(self, name: str, flow_type: FlowType) -> None:
        super().__init__(name)
        self.add_in("in", flow_type)


class TwoOut(Streamer):
    """One IN, two OUTs — for the never-read-output (STR003) builder."""

    direct_feedthrough = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.add_in("u", SCALAR)
        self.add_out("a", SCALAR)
        self.add_out("b", SCALAR)

    def compute_outputs(self, t, state):
        value = self.in_scalar("u")
        self.out_scalar("a", value)
        self.out_scalar("b", -value)


# ----------------------------------------------------------------------
# plan-rule defects (STR001-006)
# ----------------------------------------------------------------------
def str001_loop() -> HybridModel:
    """Gain <-> Bias: a delay-free algebraic loop."""
    model = HybridModel("loop")
    a = model.add_streamer(Gain("a", k=0.5))
    b = model.add_streamer(Bias("b", bias=1.0))
    model.add_flow(a.dport("out"), b.dport("in"))
    model.add_flow(b.dport("out"), a.dport("in"))
    return model


def str002_dead_chain() -> HybridModel:
    """Constant -> Gain -> Gain with an unread tail plus a live probe."""
    model = HybridModel("dead")
    prev = model.add_streamer(Constant("c0", value=1.0))
    for index in range(3):
        gain = model.add_streamer(Gain(f"g{index}", k=2.0))
        model.add_flow(prev.dport("out"), gain.dport("in"))
        prev = gain
    live = model.add_streamer(Step("live"))
    model.add_probe("y", live.dport("out"))
    return model


def str003_never_read() -> HybridModel:
    """A TwoOut block whose ``b`` output dangles."""
    model = HybridModel("tails")
    src = model.add_streamer(Step("src"))
    split = model.add_streamer(TwoOut("split"))
    model.add_flow(src.dport("out"), split.dport("u"))
    model.add_probe("a", split.dport("a"))
    return model


def str004_foldable() -> HybridModel:
    """Constant -> Gain -> Bias, probed: a constant-foldable subgraph."""
    model = HybridModel("fold")
    source = model.add_streamer(Constant("src", value=2.0))
    gain = model.add_streamer(Gain("g", k=3.0))
    bias = model.add_streamer(Bias("b", bias=1.0))
    model.add_flow(source.dport("out"), gain.dport("in"))
    model.add_flow(gain.dport("out"), bias.dport("in"))
    model.add_probe("y", bias.dport("out"))
    return model


def str005_narrowing() -> HybridModel:
    """A POS source driving a POSVEL sink: fields default silently."""
    model = HybridModel("narrow")
    source = model.add_streamer(RecordSource("src", POS))
    sink = model.add_streamer(RecordSink("sink", POSVEL))
    model.add_flow(source.dport("out"), sink.dport("in"))
    return model


def str006_no_emitter() -> HybridModel:
    """A block type without a codegen emitter (kernel-ineligible)."""
    model = HybridModel("noemit")
    src = model.add_streamer(Step("src"))
    avg = model.add_streamer(MovingAverage("avg", ts=0.01, window=4))
    model.add_flow(src.dport("out"), avg.dport("in"))
    model.add_probe("y", avg.dport("out"))
    return model


# ----------------------------------------------------------------------
# W well-formedness defects
# ----------------------------------------------------------------------
def w1_flow_narrowed() -> HybridModel:
    """A flow whose target pad was narrowed *after* wiring.

    The Flow constructor rejects non-subset connections outright, so the
    only way this state exists is post-construction mutation — exactly
    the drift W1 re-validates against.
    """
    model = HybridModel("w1")
    source = model.add_streamer(RecordSource("src", POSVEL))
    sink = model.add_streamer(RecordSink("sink", POSVEL))
    model.add_flow(source.dport("out"), sink.dport("in"))
    sink.dport("in").flow_type = POS  # POSVEL is no subset of POS
    return model


def w2_half_relay() -> HybridModel:
    """A relay with its ``out_b`` branch left dangling."""
    model = HybridModel("w2")
    const = model.add_streamer(Constant("c", value=1.0))
    sink = model.add_streamer(Integrator("a"))
    relay = model.add_relay("split", SCALAR)
    model.add_flow(const.dport("out"), relay.input)
    model.add_flow(relay.out_a, sink.dport("in"))
    model.add_probe("y", sink.dport("out"))
    return model


def w4_behaviour() -> HybridModel:
    """A streamer carrying a (forbidden) behaviour state machine."""
    model = HybridModel("w4")
    streamer = model.add_streamer(Constant("c", value=1.0))
    streamer.behaviour = object()
    return model


def w5_processing_capsule_dport() -> HybridModel:
    """A capsule DPort whose relay-only guarantee was switched off."""
    model = HybridModel("w5")
    capsule = Capsule("cap")
    model.add_capsule(capsule)
    port = model.add_capsule_dport(capsule, "d", Direction.IN, SCALAR)
    port.relay_only = False  # capsules must not process data
    return model


def w6_smuggled_capsule() -> HybridModel:
    """A capsule hidden inside a streamer's sub tree."""
    model = HybridModel("w6")
    top = Streamer("top")
    top.add_sub(Constant("inner", value=1.0))
    top.subs["smuggled"] = Capsule("smuggled")  # bypass the API guard
    model.add_streamer(top)
    return model


def w7_unbridged_sport() -> HybridModel:
    """An SPort never bridged to any capsule port."""
    model = HybridModel("w7")
    streamer = model.add_streamer(Constant("c", value=1.0))
    streamer.add_sport("ctl", SCN.conjugate())
    return model


def w8_undriven_input() -> HybridModel:
    """An IN DPort with no driver (holds its initial value forever)."""
    model = HybridModel("w8")
    integ = model.add_streamer(Integrator("i"))
    model.add_probe("y", integ.dport("out"))
    return model


def w10_double_thread() -> HybridModel:
    """One streamer claimed by two threads' run lists."""
    model = HybridModel("w10")
    gain = model.add_streamer(Gain("g", k=2.0))
    src = model.add_streamer(Step("src"))
    model.add_flow(src.dport("out"), gain.dport("in"))
    model.add_probe("y", gain.dport("out"))
    second = model.create_thread("second")
    second.streamers.append(gain)  # bypass assign(): double ownership
    return model


def w12_compat_loop() -> HybridModel:
    """The STR001 loop, checked with the legacy W12 code enabled."""
    return str001_loop()


# ----------------------------------------------------------------------
# state-machine defects (SM001-005)
# ----------------------------------------------------------------------
def sm001_orphan() -> StateMachine:
    sm = StateMachine("m")
    sm.add_state("a")
    sm.add_state("b")
    sm.add_state("orphan")
    sm.initial("a")
    sm.add_transition("a", "b", trigger="go")
    sm.add_transition("b", "a", trigger="back")
    return sm


def sm002_shadowed() -> StateMachine:
    sm = StateMachine("m")
    for name in ("idle", "x", "y"):
        sm.add_state(name)
    sm.initial("idle")
    sm.add_transition("idle", "x", trigger=("p", "go"))
    sm.add_transition("idle", "y", trigger=("p", "go"))
    sm.add_transition("x", "idle", trigger="reset")
    sm.add_transition("y", "idle", trigger="reset")
    return sm


class _TriggerCapsule(Capsule):
    """A capsule whose machine waits on a signal its port can't carry."""

    def build_structure(self):
        self.create_port("p", SCN.conjugate())

    def build_behaviour(self):
        sm = StateMachine("ctl_sm")
        sm.add_state("idle")
        sm.add_state("busy")
        sm.initial("idle")
        sm.add_transition("idle", "busy", trigger=("p", "bogus"))
        sm.add_transition("busy", "idle", trigger=("p", "bogus"))
        return sm


class _TimerCapsule(Capsule):
    """Arms a timer on state entry and never cancels it on exit."""

    def build_structure(self):
        self.create_port("p", SCN.conjugate())

    def build_behaviour(self):
        def arm(capsule, message):
            capsule._pending = capsule.inform_in(1.0)

        sm = StateMachine("tmr_sm")
        sm.add_state("wait", entry=arm)
        sm.add_state("done")
        sm.initial("wait")
        sm.add_transition("wait", "done", trigger=("p", "cmd"))
        sm.add_transition("done", "wait", trigger=("p", "cmd"))
        return sm


def sm003_bad_trigger() -> HybridModel:
    model = HybridModel("sm3")
    model.add_capsule(_TriggerCapsule("ctl"))
    return model


def sm004_leaky_timer() -> HybridModel:
    model = HybridModel("sm4")
    model.add_capsule(_TimerCapsule("tmr"))
    return model


def sm005_guarded_choice() -> StateMachine:
    sm = StateMachine("m")
    sm.add_state("a")
    sm.add_state("b")
    sm.initial("a")
    choice = sm.add_choice("pick")
    choice.add_branch("b", guard=lambda c, m: False)
    sm.add_transition("a", "pick", trigger="go")
    sm.add_transition("b", "a", trigger="back")
    return sm


# ----------------------------------------------------------------------
# thread / sched defects
# ----------------------------------------------------------------------
def thr001_cross_thread() -> HybridModel:
    model = HybridModel("xt")
    fast = model.create_thread("fast", h=1e-3)
    src = model.add_streamer(Step("src"))
    gain = model.add_streamer(Gain("g", k=2.0), thread=fast)
    model.add_flow(src.dport("out"), gain.dport("in"))
    model.add_probe("y", gain.dport("out"))
    return model


def thr002_shared_state() -> HybridModel:
    model = HybridModel("shared")
    fast = model.create_thread("fast", h=1e-3)
    a = Gain("a", k=2.0)
    b = Gain("b", k=2.0)
    b.params = a.params  # one mutable dict on two threads
    model.add_streamer(a)
    model.add_streamer(b, thread=fast)
    src = model.add_streamer(Step("src"))
    model.add_flow(src.dport("out"), a.dport("in"))
    model.add_flow(src.dport("out"), b.dport("in"))
    model.add_probe("ya", a.dport("out"))
    model.add_probe("yb", b.dport("out"))
    return model


def sched001_infeasible() -> HybridModel:
    model = HybridModel("sched")
    fast = model.create_thread("fast", h=1e-7)
    src = model.add_streamer(Step("src"))
    integ = model.add_streamer(Integrator("i"), thread=fast)
    model.add_flow(src.dport("out"), integ.dport("in"))
    model.add_probe("y", integ.dport("out"))
    return model


def sched002_blocking() -> HybridModel:
    """A fast thread (h=2e-5) sharing a params dict with leaves on a
    slow thread: under the minor-step mapping plain RTA accepts the set
    but the slow thread's critical section blocks the fast one past its
    deadline — blocking ALONE breaks the schedule (SCHED002), and the
    rate asymmetry is a priority inversion (SCHED003)."""
    model = HybridModel("inversion")
    fast = model.create_thread("fast", h=2e-5)
    slow = model.create_thread("slow", h=1e-3)
    src = Step("src")
    a = Gain("a", k=2.0)
    b = Gain("b", k=3.0)
    shared = a.params
    shared.update(src.params)
    b.params = shared
    src.params = shared
    model.add_streamer(src, thread=fast)
    model.add_streamer(a, thread=slow)
    model.add_streamer(b, thread=slow)
    model.add_flow(src.dport("out"), a.dport("in"))
    model.add_flow(a.dport("out"), b.dport("in"))
    model.add_probe("y", b.dport("out"))
    return model


def sched004_no_headroom() -> HybridModel:
    """Feasible at the default sync interval, but only just: checked
    with a 100% sensitivity margin, the interval sits inside the
    forbidden band above the minimum feasible one (SCHED004)."""
    model = HybridModel("tight")
    gain = model.add_streamer(Gain("g", k=0.5))
    integ = model.add_streamer(Integrator("i"))
    model.add_flow(gain.dport("out"), integ.dport("in"))
    model.add_flow(integ.dport("out"), gain.dport("in"))
    model.add_probe("y", integ.dport("out"))
    return model


class DefectSpec(NamedTuple):
    """One registered defect: builder, the codes it must fire, and any
    checker configuration the rule needs to report at all."""

    builder: Callable[[], object]
    expected: FrozenSet[str]
    config: Mapping[str, object]


def _spec(builder, *codes, **config) -> DefectSpec:
    return DefectSpec(builder, frozenset(codes), dict(config))


#: name -> DefectSpec; iterate ``sorted(DEFECTS)`` for determinism
DEFECTS: Dict[str, DefectSpec] = {
    "str001-loop": _spec(str001_loop, "STR001"),
    "str002-dead-chain": _spec(str002_dead_chain, "STR002"),
    "str003-never-read": _spec(str003_never_read, "STR003"),
    "str004-foldable": _spec(str004_foldable, "STR004"),
    "str005-narrowing": _spec(str005_narrowing, "STR005"),
    "str006-no-emitter": _spec(str006_no_emitter, "STR006"),
    "w1-flow-narrowed": _spec(w1_flow_narrowed, "W1"),
    "w2-half-relay": _spec(w2_half_relay, "W2"),
    "w4-behaviour": _spec(w4_behaviour, "W4"),
    "w5-processing-capsule-dport": _spec(
        w5_processing_capsule_dport, "W5"
    ),
    # the smuggled capsule breaks leaf enumeration in unrelated rules
    # (it is exactly the containment violation W6 exists to catch), so
    # this one runs the model category only
    "w6-smuggled-capsule": _spec(
        w6_smuggled_capsule, "W6", categories={"model"}
    ),
    "w7-unbridged-sport": _spec(w7_unbridged_sport, "W7"),
    "w8-undriven-input": _spec(w8_undriven_input, "W8"),
    "w10-double-thread": _spec(w10_double_thread, "W10"),
    "w12-compat-loop": _spec(
        w12_compat_loop, "STR001", "W12", w12_compat=True
    ),
    "sm001-orphan": _spec(sm001_orphan, "SM001"),
    "sm002-shadowed": _spec(sm002_shadowed, "SM002"),
    "sm003-bad-trigger": _spec(sm003_bad_trigger, "SM003"),
    "sm004-leaky-timer": _spec(sm004_leaky_timer, "SM004"),
    "sm005-guarded-choice": _spec(sm005_guarded_choice, "SM005"),
    "thr001-cross-thread": _spec(thr001_cross_thread, "THR001"),
    "thr002-shared-state": _spec(thr002_shared_state, "THR002"),
    "sched001-infeasible": _spec(sched001_infeasible, "SCHED001"),
    "sched002-blocking": _spec(
        sched002_blocking, "SCHED002", "SCHED003"
    ),
    "sched004-no-headroom": _spec(
        sched004_no_headroom, "SCHED004", sched_sensitivity_margin=1.0
    ),
}

#: every code at least one defect builder fires
COVERED_CODES: FrozenSet[str] = frozenset().union(
    *(spec.expected for spec in DEFECTS.values())
)
