"""The pluggable rule registry and per-run configuration.

Every analyzer is a :class:`Rule`: a stable code, a category (``model``,
``plan``, ``sm``, ``thread``, ``sched``), a default severity, a one-line
rationale tying it back to the paper clause or W-rule it enforces, and a
check function ``check(ctx)`` that emits diagnostics through the
:class:`~repro.check.context.CheckContext`.

Rules self-register into the module-level :data:`DEFAULT_REGISTRY` via
the :meth:`RuleRegistry.rule` decorator when their defining module is
imported; embedders can build private registries with a subset or with
extra project-specific rules.

:class:`CheckConfig` carries the per-run knobs: select/disable by code,
per-code severity overrides, suppression patterns, and analysis
parameters (the sync interval assumed by the schedulability lint, the
minimum size of a constant-foldable subgraph worth reporting).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple,
)

from repro.check.diagnostics import SEVERITIES, severity_rank

#: the analyzer families, in the order they run
CATEGORIES = ("model", "plan", "sm", "thread", "sched")


class RuleError(Exception):
    """Raised for ill-formed rules or unknown codes in a config."""


@dataclass(frozen=True)
class Rule:
    """One registered static check."""

    code: str
    title: str
    category: str
    severity: str      # default severity; CheckConfig may override
    rationale: str     # paper clause / W-rule this enforces
    check: Callable = field(compare=False)

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise RuleError(
                f"rule {self.code}: unknown category {self.category!r}; "
                f"expected one of {CATEGORIES}"
            )
        if self.severity not in SEVERITIES:
            raise RuleError(
                f"rule {self.code}: unknown severity {self.severity!r}"
            )


class RuleRegistry:
    """An ordered, code-keyed collection of rules."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def rule(
        self,
        code: str,
        title: str,
        category: str,
        severity: str,
        rationale: str = "",
    ) -> Callable:
        """Decorator: register ``check(ctx)`` under ``code``."""

        def decorate(func: Callable) -> Callable:
            self.add(Rule(code, title, category, severity, rationale, func))
            return func

        return decorate

    def add(self, rule: Rule) -> Rule:
        if rule.code in self._rules:
            raise RuleError(f"duplicate rule code {rule.code!r}")
        self._rules[rule.code] = rule
        return rule

    def get(self, code: str) -> Rule:
        try:
            return self._rules[code]
        except KeyError:
            raise RuleError(f"unknown rule code {code!r}") from None

    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules.values())

    def codes(self) -> Tuple[str, ...]:
        return tuple(self._rules)

    def __contains__(self, code: str) -> bool:
        return code in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def active(self, config: "CheckConfig") -> List[Rule]:
        """The rules this config enables, in registration order.

        A ``select`` entry matches either the exact code or a code
        prefix, so ``--select SCHED`` enables the whole sched family.
        """
        out: List[Rule] = []
        for rule in self._rules.values():
            if config.select is not None and not any(
                rule.code == sel or rule.code.startswith(sel)
                for sel in config.select
            ):
                continue
            if rule.code in config.disable:
                continue
            if (
                config.categories is not None
                and rule.category not in config.categories
            ):
                continue
            out.append(rule)
        return out


#: the registry `run_checks` uses unless told otherwise; populated by
#: the rule modules importing this one (see repro.check.__init__)
DEFAULT_REGISTRY = RuleRegistry()


@dataclass
class CheckConfig:
    """Per-run configuration for the checker."""

    #: run only these codes (None = all registered)
    select: Optional[Set[str]] = None
    #: never run these codes
    disable: Set[str] = field(default_factory=set)
    #: per-code severity overrides, e.g. ``{"STR003": "error"}``
    severity: Dict[str, str] = field(default_factory=dict)
    #: restrict to rule categories (used by the validation compat shim)
    categories: Optional[Set[str]] = None
    #: suppression patterns: ``"CODE"`` or ``"CODE:subject-glob"``
    suppress: Set[str] = field(default_factory=set)
    #: sync interval assumed by the deadline-feasibility lint (SCHED001)
    sync_interval: float = 0.01
    #: SCHED004 warns when the sync interval's headroom over the minimum
    #: feasible interval falls below this fraction
    sched_sensitivity_margin: float = 0.2
    #: smallest constant-foldable subgraph worth reporting (STR004)
    min_fold_size: int = 2
    #: emit the legacy W12 network diagnostic alongside STR001 (the
    #: validation compat wrapper needs the W-code; default off so the
    #: same loop is not reported twice under two codes)
    w12_compat: bool = False

    def __post_init__(self) -> None:
        for code, level in self.severity.items():
            if level not in SEVERITIES:
                raise RuleError(
                    f"severity override for {code}: unknown level {level!r}"
                )

    def effective_severity(self, code: str, default: str) -> str:
        return self.severity.get(code, default)

    def suppressed(self, code: str, subject: str) -> bool:
        for pattern in self.suppress:
            if ":" in pattern:
                pat_code, pat_subject = pattern.split(":", 1)
                if pat_code == code and fnmatch.fnmatch(subject, pat_subject):
                    return True
            elif pattern == code:
                return True
        return False


def suppressed_codes(obj) -> FrozenSet[str]:
    """Inline suppressions attached to a model element.

    Any checked object may carry ``lint_suppress``, an iterable of rule
    codes to silence on that element (and, for a streamer, on diagnostics
    whose subject is one of its ports).  This is the in-source escape
    hatch the examples use for intentional patterns.
    """
    codes: Iterable = getattr(obj, "lint_suppress", ()) or ()
    if isinstance(codes, str):
        codes = (codes,)
    return frozenset(str(code) for code in codes)


def meets_threshold(severity: str, fail_on: str) -> bool:
    """True if ``severity`` is at or above the ``fail_on`` threshold."""
    return severity_rank(severity) >= severity_rank(fail_on)
