"""The ``interpreter`` backend: the reference execution semantics.

Wraps :meth:`ExecutionPlan.evaluate`/``rhs`` plus the live blocks'
``on_sync`` hooks in the uniform :class:`BackendProgram` surface.  This
is the semantic ground truth every other backend is differential-tested
against — it runs the (possibly optimized) plan *directly*, so at O1/O2
it executes the same rewritten node table the kernels were emitted from.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.backend.base import (
    BackendError, BackendProgram, CompileRequest, ExecutionBackend,
    ProgramResult, register_backend,
)
from repro.core.solverbinding import SolverBinding


def resolve_record_ports(plan, records, port_at) -> List[Tuple[str, Any]]:
    """``(label, DPort)`` pairs for a record request.

    Explicit ``"block.port"`` paths resolve through ``port_at``; the
    default mirrors the codegen layer — every Scope input, labelled
    ``"<scope>.<port>"``.
    """
    pairs: List[Tuple[str, Any]] = []
    if records:
        if port_at is None:
            raise BackendError(
                "explicit record paths need a diagram (port_at resolver)"
            )
        for path in records:
            pairs.append((path, port_at(path)))
        return pairs
    for node in plan.nodes:
        if type(node.leaf).__name__ == "Scope":
            for port in node.leaf.dports.values():
                pairs.append((f"{node.leaf.name}.{port.name}", port))
    return pairs


class InterpreterProgram(BackendProgram):
    backend = "interpreter"

    def __init__(
        self,
        plan,
        initial_state: np.ndarray,
        records: List[Tuple[str, Any]],
        solver: Any,
        h: float,
    ) -> None:
        self._plan = plan
        self._initial = np.asarray(initial_state, dtype=float).copy()
        self._records = records
        self._binding = SolverBinding(solver)
        self.h = float(h)
        # blocks are live objects shared with the diagram; capture their
        # pristine discrete state now so reset() can truly rewind (the
        # restore hook mutates — pops — the dict it is given, and e.g.
        # UnitDelay's restore default is 0.0, not its y0)
        self._initial_extra = {
            node.leaf.path(): copy.deepcopy(node.leaf.extra_state())
            for node in plan.nodes
        }
        self._t = 0.0
        self._x = self._initial.copy()
        self._step = 0
        self._cold = True

    # ------------------------------------------------------------------
    @property
    def plan(self):
        return self._plan

    @property
    def t(self) -> float:
        return self._t

    @property
    def x(self) -> np.ndarray:
        return self._x

    def record_labels(self) -> List[str]:
        return [label for label, __ in self._records]

    def fingerprint(self) -> str:
        return self._plan.fingerprint(extra={
            "backend": self.backend,
            "solver": self._binding.strategy_name,
            "records": tuple(self.record_labels()),
        })

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._t = 0.0
        self._x = self._initial.copy()
        self._step = 0
        self._cold = True
        for node in self._plan.nodes:
            node.leaf.restore_extra_state(
                copy.deepcopy(self._initial_extra[node.leaf.path()])
            )
        self._binding.reset()
        self._rewind_observers(None)

    def _rewind_observers(self, t_cursor: Optional[float]) -> None:
        """Truncate live Scope-style trajectories to the cursor.

        Scopes append at every sync and their histories are
        monotone-checked, so rewinding the program must discard the
        samples past the restore point (``None``: all of them) or the
        next sync would be rejected as time going backwards.
        """
        from repro.solvers.history import Trajectory

        for node in self._plan.nodes:
            old = getattr(node.leaf, "trajectory", None)
            if not isinstance(old, Trajectory):
                continue
            fresh = Trajectory(labels=old.labels)
            if t_cursor is not None:
                for t_sample, row in zip(old.times, old.states):
                    if t_sample > t_cursor:
                        break
                    fresh.append(t_sample, row)
            node.leaf.trajectory = fresh

    def _sync(self, t: float) -> None:
        # pads first (each on_sync reads its *pre-sync* input value, the
        # same snapshot the kernels' sync replicas read), then the hooks
        # in plan-node order
        self._plan.evaluate(t, self._x)
        for node in self._plan.nodes:
            node.leaf.on_sync(t)

    def _read_row(self, t: float) -> Tuple[float, ...]:
        self._plan.evaluate(t, self._x)
        return tuple(port.read_scalar() for __, port in self._records)

    def step(self, h: Optional[float] = None) -> float:
        hh = self.h if h is None else float(h)
        if self._cold:
            self._sync(self._t)
            self._cold = False
        result = self._binding.step(self._plan.rhs, self._t, self._x, hh)
        self._x = result.y
        self._t = result.t
        self._step += 1
        self._sync(self._t)
        return self._t

    def run(
        self,
        t_end: float,
        h: Optional[float] = None,
        record_every: int = 1,
    ) -> ProgramResult:
        hh = self.h if h is None else float(h)
        plan = self._plan
        binding = self._binding
        if self._cold:
            self._sync(self._t)
            self._cold = False
        rec_t: List[float] = []
        rows: List[Tuple[float, ...]] = []
        t = self._t
        x = self._x
        step = self._step
        while t < t_end - 1e-12:
            h_step = hh if hh < t_end - t else t_end - t
            if step % record_every == 0:
                rec_t.append(t)
                rows.append(self._read_row(t))
            result = binding.step(plan.rhs, t, x, h_step)
            x = result.y
            t = result.t
            step += 1
            self._t, self._x, self._step = t, x, step
            self._sync(t)
        rec_t.append(t)
        rows.append(self._read_row(t))
        return ProgramResult(
            t=np.asarray(rec_t, dtype=float),
            series={
                label: np.asarray([row[i] for row in rows], dtype=float)
                for i, (label, __) in enumerate(self._records)
            },
            final_state=x.copy(),
            stats={
                "backend": self.backend,
                "steps": step,
                "evaluations": plan.counters.evaluations,
            },
        )

    def rhs(self, t: float, x: np.ndarray) -> np.ndarray:
        return self._plan.rhs(t, np.asarray(x, dtype=float))

    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "t": self._t,
            "step": self._step,
            "cold": self._cold,
            "x": [float(v) for v in self._x],
            "extras": {
                node.leaf.path(): copy.deepcopy(node.leaf.extra_state())
                for node in self._plan.nodes
            },
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        # the binding's trajectory history is monotone-checked; a restore
        # may rewind time, so the history must restart at the cursor
        self._binding.reset()
        self._t = float(state["t"])
        self._step = int(state["step"])
        self._cold = bool(state.get("cold", False))
        self._x = np.asarray(state["x"], dtype=float)
        extras = state.get("extras", {})
        for node in self._plan.nodes:
            extra = extras.get(node.leaf.path())
            if extra is not None:
                node.leaf.restore_extra_state(copy.deepcopy(extra))
        self._rewind_observers(self._t)


class InterpreterBackend(ExecutionBackend):
    name = "interpreter"

    def compile(self, request: CompileRequest) -> InterpreterProgram:
        network = request.resolved_network()
        plan = request.plan
        if plan is None:
            from repro.core.opt import resolve_config

            config = resolve_config(request.opt_level, request.opt_config)
            protect = []
            if config.is_active and request.records:
                port_at = request.port_at()
                if port_at is None:
                    raise BackendError(
                        "explicit records on an optimized plan need a "
                        "diagram to protect the recorded pads"
                    )
                protect = [port_at(path) for path in request.records]
            plan = network.plan(opt_config=config, protect=protect)
        records = resolve_record_ports(
            plan, request.records, request.port_at()
        )
        return InterpreterProgram(
            plan, network.initial_state(), records,
            request.solver, request.h,
        )


register_backend(InterpreterBackend())
