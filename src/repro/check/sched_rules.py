"""Schedulability lints over :mod:`repro.analysis.schedulability`.

"During implementation, capsules and streamers are assigned to different
threads" (paper §2) — so a model carries an implied fixed-priority task
set: one periodic task per streamer thread (period = sync interval) and
one per capsule controller.  Four rules interrogate it:

* **SCHED001** — statically infeasible rates/deadlines: utilisation
  above 1 (or a WCET exceeding its own deadline) is an error — no
  scheduler can save it — while tasks failing plain exact response-time
  analysis are a warning.
* **SCHED002** — blocking-aware RTA failure: with priority-ceiling
  blocking terms derived from the THR002 shared-state facts the set no
  longer meets its deadlines.  The emit carries the per-task
  interference breakdown in ``details`` and flags sets that plain RTA
  (no blocking) would have accepted.
* **SCHED003** — priority-inversion hazard: a slower thread (larger
  minor step) holds mutable state shared with a faster one, so the fast
  thread's response time is hostage to the slow thread's critical
  section.
* **SCHED004** — sensitivity: the configured sync interval sits within
  :attr:`~repro.check.registry.CheckConfig.sched_sensitivity_margin`
  of the minimum feasible interval — feasible today, but with no
  headroom for WCET growth.

The assumed sync interval comes from :attr:`~repro.check.registry.
CheckConfig.sync_interval` (CLI ``--sync-interval``), since a model does
not fix it until run time.
"""

from __future__ import annotations

from repro.check.context import CheckContext
from repro.check.registry import DEFAULT_REGISTRY as REG

rule = REG.rule


@rule("SCHED001", "statically infeasible rates/deadlines", "sched",
      "warning",
      "paper §2 + Gao/Brown/Capretz: schedulability is decidable from "
      "the model; reject infeasible thread configurations before "
      "running")
def check_deadline_feasibility(ctx: CheckContext) -> None:
    if ctx.model is None:
        return
    from repro.analysis.schedulability import (
        SchedulabilityError, response_time_analysis, taskset_from_model,
    )

    sync_interval = ctx.config.sync_interval
    try:
        taskset = taskset_from_model(ctx.model, sync_interval)
    except SchedulabilityError as exc:
        # a task's estimated WCET already exceeds its period/deadline
        ctx.emit(
            ctx.subject,
            f"infeasible thread configuration at sync interval "
            f"{sync_interval:g}s: {exc}",
            severity="error",
            details={"sync_interval": sync_interval},
        )
        return
    if not taskset.tasks:
        return
    utilisation = taskset.utilisation
    if utilisation > 1.0:
        ctx.emit(
            ctx.subject,
            f"estimated utilisation {utilisation:.2f} exceeds 1.0 at "
            f"sync interval {sync_interval:g}s; the thread set cannot "
            "be scheduled on one processor",
            severity="error",
            details={
                "utilisation": utilisation,
                "sync_interval": sync_interval,
            },
        )
        return
    analysis = response_time_analysis(taskset, with_blocking=False)
    failing = sorted(r.name for r in analysis.failing)
    if failing:
        ctx.emit(
            ctx.subject,
            f"response-time analysis fails for {', '.join(failing)} at "
            f"sync interval {sync_interval:g}s (utilisation "
            f"{utilisation:.2f})",
            details={
                "failing": failing,
                "utilisation": utilisation,
                "sync_interval": sync_interval,
            },
        )


@rule("SCHED002", "blocking-aware response-time failure", "sched",
      "warning",
      "priority-ceiling blocking from shared mutable state (THR002 "
      "facts) can break deadlines a blocking-oblivious analysis "
      "accepts")
def check_blocking_aware_rta(ctx: CheckContext) -> None:
    if ctx.model is None:
        return
    from repro.analysis.schedulability import (
        SchedulabilityError, response_time_analysis, taskset_from_model,
    )

    sync_interval = ctx.config.sync_interval
    try:
        # the minor-step (preemptive RTOS) mapping: multirate threads
        # get genuinely different periods, which is where priority-
        # ceiling blocking can break deadlines plain RTA accepts
        taskset = taskset_from_model(
            ctx.model, sync_interval, granularity="minor",
        )
    except SchedulabilityError:
        return  # SCHED001 owns the infeasible-task-set diagnostic
    if not taskset.tasks or taskset.utilisation > 1.0:
        return
    blocked = response_time_analysis(taskset, with_blocking=True)
    if blocked.schedulable:
        return
    plain = response_time_analysis(taskset, with_blocking=False)
    failing = sorted(r.name for r in blocked.failing)
    breakdown = {
        r.name: {
            "response_time": r.response_time,
            "deadline": r.deadline,
            "blocking": r.blocking,
            "converged": r.converged,
            "interference": dict(r.interference),
        }
        for r in blocked.failing
    }
    blocking_only = bool(plain.schedulable)
    qualifier = (
        "blocking alone breaks the set (plain RTA passes)"
        if blocking_only else "the set also fails without blocking"
    )
    ctx.emit(
        ctx.subject,
        f"blocking-aware response-time analysis fails for "
        f"{', '.join(failing)} at sync interval {sync_interval:g}s; "
        f"{qualifier}",
        details={
            "failing": failing,
            "blocking_only": blocking_only,
            "sync_interval": sync_interval,
            "tasks": breakdown,
        },
    )


@rule("SCHED003", "priority-inversion hazard via shared state", "sched",
      "warning",
      "a slower thread holding state shared with a faster one inverts "
      "priorities: the fast thread's response time is bounded by the "
      "slow thread's critical section")
def check_priority_inversion(ctx: CheckContext) -> None:
    if ctx.model is None:
        return
    from repro.analysis.schedulability import shared_state_facts

    threads_by_name = {t.name: t for t in ctx.model.threads}
    for fact in shared_state_facts(ctx.model):
        sharers = [
            threads_by_name[name] for name in fact.threads
            if name in threads_by_name
        ]
        if len(sharers) < 2:
            continue
        fastest = min(sharers, key=lambda t: t.h)
        slowest = max(sharers, key=lambda t: t.h)
        if slowest.h <= fastest.h:
            continue  # same rate: no inversion direction
        ctx.emit(
            fact.sites[0],
            f"thread {slowest.name!r} (h={slowest.h:g}) shares "
            f"{fact.resource} with faster thread {fastest.name!r} "
            f"(h={fastest.h:g}); the slow thread's critical section "
            "can block the fast one (priority inversion)",
            details={
                "resource": fact.resource,
                "sites": list(fact.sites),
                "threads": list(fact.threads),
                "slow_thread": slowest.name,
                "fast_thread": fastest.name,
            },
        )


@rule("SCHED004", "sync interval near infeasibility", "sched",
      "warning",
      "sensitivity analysis: a sync interval within the configured "
      "margin of the minimum feasible one leaves no headroom for WCET "
      "growth")
def check_sync_sensitivity(ctx: CheckContext) -> None:
    if ctx.model is None:
        return
    from repro.analysis.schedulability import (
        SchedulabilityError, min_feasible_sync_interval,
        taskset_from_model,
    )

    sync_interval = ctx.config.sync_interval
    margin = ctx.config.sched_sensitivity_margin
    try:
        taskset = taskset_from_model(ctx.model, sync_interval)
    except SchedulabilityError:
        return  # SCHED001 owns the infeasible diagnostic
    if not taskset.tasks:
        return
    min_sync = min_feasible_sync_interval(
        ctx.model, hi=max(10.0, sync_interval)
    )
    if min_sync is None or min_sync > sync_interval:
        return  # infeasible outright: SCHED001/002 report that
    headroom = (sync_interval - min_sync) / sync_interval
    if headroom >= margin:
        return
    ctx.emit(
        ctx.subject,
        f"sync interval {sync_interval:g}s is within "
        f"{headroom * 100.0:.0f}% of the minimum feasible interval "
        f"{min_sync:.3g}s (margin {margin * 100.0:.0f}%); WCET growth "
        "will break the schedule",
        details={
            "sync_interval": sync_interval,
            "min_feasible_sync_interval": min_sync,
            "headroom": headroom,
            "margin": margin,
        },
    )
