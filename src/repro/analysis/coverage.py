"""State-machine coverage from execution traces.

Model-based testing support: enable tracing on a capsule's machine
(``sm.trace_enabled = True``), exercise the system, then ask which states
were entered and which transitions fired.  The metrics mirror the classic
model-coverage criteria (all-states, all-transitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.umlrt.statemachine import StateMachine


class CoverageError(Exception):
    """Raised when coverage is requested without tracing enabled."""


@dataclass
class CoverageReport:
    """Coverage of one machine after a traced run."""

    states_total: int
    states_visited: Set[str]
    transitions_total: int
    transitions_fired: Set[Tuple[str, str]]
    internal_fired: Set[str]

    @property
    def state_coverage(self) -> float:
        if not self.states_total:
            return 1.0
        return len(self.states_visited) / self.states_total

    @property
    def transition_coverage(self) -> float:
        if not self.transitions_total:
            return 1.0
        fired = len(self.transitions_fired) + len(self.internal_fired)
        return min(1.0, fired / self.transitions_total)

    def unvisited_states(self, machine: StateMachine) -> List[str]:
        return sorted(
            set(machine.all_states()) - self.states_visited
        )


def coverage_of(machine: StateMachine) -> CoverageReport:
    """Compute coverage from the machine's trace.

    A machine with states but no transitions has nothing a trace could
    add: its report is empty-but-valid (no states visited, transition
    coverage vacuously 100%) even without tracing.  Machines that *do*
    have transitions still require ``machine.trace_enabled = True``
    before the run.
    """
    if not machine.trace_enabled:
        if machine.transition_count() == 0:
            return CoverageReport(
                states_total=len(machine.all_states()),
                states_visited=set(),
                transitions_total=0,
                transitions_fired=set(),
                internal_fired=set(),
            )
        raise CoverageError(
            "enable tracing before the run: machine.trace_enabled = True"
        )
    visited: Set[str] = set()
    fired: Set[Tuple[str, str]] = set()
    internal: Set[str] = set()
    for kind, detail in machine.trace:
        if kind == "enter":
            visited.add(detail)
        elif kind == "fire":
            source, __, target = detail.partition(" -> ")
            fired.add((source, target))
        elif kind == "internal":
            internal.add(detail)
    return CoverageReport(
        states_total=len(machine.all_states()),
        states_visited=visited,
        transitions_total=machine.transition_count(),
        transitions_fired=fired,
        internal_fired=internal,
    )


def render_coverage(machine: StateMachine) -> str:
    """A printable coverage summary."""
    report = coverage_of(machine)
    lines = [
        f"state machine {machine.name!r} coverage:",
        f"  states      : {len(report.states_visited)}/"
        f"{report.states_total} ({report.state_coverage:.0%})",
        f"  transitions : "
        f"{len(report.transitions_fired) + len(report.internal_fired)}/"
        f"{report.transitions_total} "
        f"({report.transition_coverage:.0%})",
    ]
    unvisited = report.unvisited_states(machine)
    if unvisited:
        lines.append(f"  never entered: {', '.join(unvisited)}")
    return "\n".join(lines)
