"""The simulation service layer: the runtime between library and system.

:mod:`repro.core` gives one process a compiled
:class:`~repro.core.plan.ExecutionPlan` and backends to run it; this
package turns that into a *concurrent, cache-backed job service* — the
substrate the ROADMAP's "heavy traffic" north star builds on:

* :mod:`repro.service.cache` — a thread-safe, LRU-bounded,
  content-addressed :class:`PlanCache` keyed by plan fingerprints:
  structurally identical requests compile once and share the artefact.
* :mod:`repro.service.jobs` — job specs (single hybrid runs, vectorised
  batch sweeps, codegen), handles with blocking results and telemetry
  streams, and the cooperative cancellation/deadline protocol.
* :mod:`repro.service.engine` — the bounded worker pool: per-job
  deadlines, cancellation, retry-with-backoff for transient failures,
  and queue shedding (:class:`ServiceOverloaded`) under overload.
* :mod:`repro.service.telemetry` — per-job event streams over the
  paper's :class:`~repro.core.channel.Channel` plus a
  :class:`MetricsRegistry` of counters/gauges/latency histograms.

:class:`SimulationService` is the facade gluing them together::

    from repro import BatchJob, SimulationService

    with SimulationService(workers=4) as svc:
        handle = svc.submit(BatchJob(
            diagram_factory=make_loop, n=200, t_end=2.0,
            sweeps={"pid.kp": gains},
        ))
        for event in handle.stream():      # partial trajectories
            ...
        result = handle.result()           # merged BatchResult
        print(svc.metrics_snapshot())      # cache hit-rate, p95, ...
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.service.admission import (
    AdmissionDecision,
    CostModel,
    DeadlineAdmission,
)
from repro.service.cache import CacheError, PlanCache
from repro.service.engine import JobEngine
from repro.service.jobs import (
    BatchJob,
    ChecksFailedError,
    CodegenJob,
    DeadlineInfeasible,
    JobCancelledError,
    JobContext,
    JobError,
    JobHandle,
    JobSpec,
    JobState,
    JobTimeoutError,
    ServiceOverloaded,
    SingleRunJob,
    SingleRunResult,
    TransientJobError,
)
from repro.service.telemetry import (
    BACKEND,
    CHECKS,
    Counter,
    EventEmitter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryEvent,
)

#: lint-gate policies: "off" skips the gate entirely, "warn" admits
#: every job but streams findings as a ``checks`` telemetry event,
#: "enforce" rejects specs with error-severity findings at submission
CHECK_POLICIES = ("off", "warn", "enforce")


class SimulationService:
    """One-stop facade: a plan cache, a job engine and shared metrics.

    Construction wires the three together (the engine hands itself to
    job contexts as ``service`` so jobs reach the cache); ``close`` —
    or leaving the ``with`` block — shuts the workers down.
    """

    def __init__(
        self,
        workers: int = 4,
        queue_limit: int = 64,
        cache_capacity: int = 128,
        executor: str = "thread",
        check_policy: str = "off",
        check_config: Optional[Any] = None,
        default_opt_level: int = 0,
        dispatch: str = "fifo",
        deadline_admission: bool = False,
        admission_margin: float = 1.0,
    ) -> None:
        if check_policy not in CHECK_POLICIES:
            raise ValueError(
                f"check_policy must be one of {CHECK_POLICIES}: "
                f"{check_policy!r}"
            )
        self.check_policy = check_policy
        self.check_config = check_config
        #: plan-optimizer level applied to jobs that don't set their own
        #: ``opt_level``; each level keys the cache separately, so a
        #: service can change its default without serving stale artefacts
        self.default_opt_level = int(default_opt_level)
        self.metrics = MetricsRegistry()
        self.cache = PlanCache(
            capacity=cache_capacity, metrics=self.metrics,
        )
        #: deadline-aware admission (repro.service.admission): predicted
        #: per-kind cost (EMA-calibrated from completed jobs) gates
        #: submission, rejecting jobs whose predicted completion already
        #: misses their deadline; ``dispatch="edf"`` additionally orders
        #: the queue by earliest absolute deadline
        self.admission = (
            DeadlineAdmission(margin=admission_margin)
            if deadline_admission else None
        )
        self.engine = JobEngine(
            workers=workers,
            queue_limit=queue_limit,
            metrics=self.metrics,
            service=self,
            executor=executor,
            dispatch=dispatch,
            admission=self.admission,
        )

    # ------------------------------------------------------------------
    # the lint gate
    # ------------------------------------------------------------------
    def _gate_result(self, spec: JobSpec):
        """Lint the spec's model/diagram once; memoised on the spec.

        Returns the :class:`repro.check.CheckResult`, or ``None`` when
        the spec exposes no factory to build a checkable target from.
        """
        if spec._check_memo is not None:
            return spec._check_memo
        factory = getattr(spec, "model_factory", None)
        diagram = getattr(spec, "diagram_factory", None)
        if factory is not None:
            target = factory()
        elif diagram is not None:
            target = diagram()
            finalise = getattr(target, "finalise", None)
            if callable(finalise) and not getattr(
                target, "_finalised", True
            ):
                target = finalise()
        else:
            return None
        from repro.check import run_checks

        result = run_checks(target, config=self.check_config)
        spec._check_memo = result
        return result

    def _gate(self, spec: JobSpec):
        """Apply the check policy before admission; returns the result
        (or None) so :meth:`submit` can stream findings on warn."""
        result = self._gate_result(spec)
        if result is None:
            return None
        if result.errors:
            self.metrics.counter("checks.failed").inc()
            if self.check_policy == "enforce":
                raise ChecksFailedError(spec.name, result.errors)
        else:
            self.metrics.counter("checks.passed").inc()
        return result

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Enqueue any job spec; sheds with ServiceOverloaded when full.

        With ``check_policy="warn"`` or ``"enforce"`` the spec's model is
        statically linted first (memoised per spec): enforce rejects
        error-level findings with :class:`ChecksFailedError` before the
        job ever reaches the queue; warn admits the job but emits a
        ``checks`` telemetry event carrying the findings.
        """
        result = (
            self._gate(spec) if self.check_policy != "off" else None
        )
        handle = self.engine.submit(spec)
        if result is not None and result.diagnostics:
            EventEmitter(handle.id, handle.channel).emit(
                CHECKS,
                errors=len(result.errors),
                warnings=len(result.warnings),
                infos=len(result.infos),
                diagnostics=[d.to_json() for d in result.diagnostics],
            )
        return handle

    def submit_single_run(self, model_factory, t_end, **options) -> JobHandle:
        """Convenience: submit a :class:`SingleRunJob`."""
        return self.submit(SingleRunJob(
            model_factory=model_factory, t_end=t_end, **options,
        ))

    def submit_batch(self, diagram_factory, n, t_end, **options) -> JobHandle:
        """Convenience: submit a :class:`BatchJob`."""
        return self.submit(BatchJob(
            diagram_factory=diagram_factory, n=n, t_end=t_end, **options,
        ))

    def submit_codegen(self, diagram_factory, **options) -> JobHandle:
        """Convenience: submit a :class:`CodegenJob`."""
        return self.submit(CodegenJob(
            diagram_factory=diagram_factory, **options,
        ))

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """Everything observable in one nested dict: the registry's
        counters/gauges/histograms plus cache stats and live queue
        depth."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.stats()
        snapshot["queue"] = {
            "depth": self.engine.queue_depth,
            "limit": self.engine.queue_limit,
            "workers": self.engine.workers,
        }
        return snapshot

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every queued job to finish."""
        return self.engine.drain(timeout)

    def close(self, wait: bool = True) -> None:
        self.engine.shutdown(wait=wait)

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationService({self.engine!r}, cache={self.cache!r})"
        )


__all__ = [
    "AdmissionDecision",
    "BatchJob",
    "CHECK_POLICIES",
    "CacheError",
    "ChecksFailedError",
    "CodegenJob",
    "CostModel",
    "DeadlineAdmission",
    "DeadlineInfeasible",
    "Counter",
    "EventEmitter",
    "Gauge",
    "Histogram",
    "JobCancelledError",
    "JobContext",
    "JobEngine",
    "JobError",
    "JobHandle",
    "JobSpec",
    "JobState",
    "JobTimeoutError",
    "MetricsRegistry",
    "PlanCache",
    "ServiceOverloaded",
    "SimulationService",
    "SingleRunJob",
    "SingleRunResult",
    "TelemetryEvent",
    "TransientJobError",
]
