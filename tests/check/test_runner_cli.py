"""run_checks dispatch, CheckResult surfaces and the CLI."""

import glob
import json
import os
import textwrap

import pytest

from repro.check import CheckResult, Diagnostic, run_checks
from repro.check.cli import main
from repro.check.context import CheckTargetError

from tests.check.builders import (
    feedback_model,
    loop_model,
    sm_shadowed,
)

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "examples",
)

BAD_FILE = textwrap.dedent(
    """
    from repro.core.model import HybridModel
    from repro.dataflow import Bias, Gain


    def build_bad():
        model = HybridModel("bad")
        a = model.add_streamer(Gain("a", k=0.5))
        b = model.add_streamer(Bias("b", bias=1.0))
        model.add_flow(a.dport("out"), b.dport("in"))
        model.add_flow(b.dport("out"), a.dport("in"))
        return model
    """
)

CLEAN_FILE = textwrap.dedent(
    """
    from repro.core.model import HybridModel
    from repro.dataflow import Gain, Integrator


    def build_clean():
        model = HybridModel("clean")
        gain = model.add_streamer(Gain("a", k=0.5))
        integ = model.add_streamer(Integrator("i"))
        model.add_flow(gain.dport("out"), integ.dport("in"))
        model.add_flow(integ.dport("out"), gain.dport("in"))
        model.add_probe("y", integ.dport("out"))
        return model
    """
)


class TestDispatch:
    def test_unsupported_target_raises(self):
        with pytest.raises(CheckTargetError):
            run_checks(42)

    def test_model_and_machine_surfaces_agree_on_codes(self):
        assert run_checks(loop_model()).by_code("STR001")
        assert run_checks(sm_shadowed()).by_code("SM002")


class TestCheckResult:
    def test_ok_thresholds(self):
        result = run_checks(loop_model())
        assert not result.ok("error")
        assert not result.ok("warning")
        clean = run_checks(feedback_model())
        assert clean.ok("error")

    def test_worst_and_len_and_iter(self):
        result = run_checks(loop_model())
        assert result.worst == "error"
        assert len(result) == len(list(result))

    def test_format_text_mentions_code_and_summary(self):
        text = run_checks(loop_model()).format_text()
        assert "[STR001/error]" in text
        assert "error(s)" in text

    def test_empty_result_formats_clean(self):
        assert CheckResult([], subject="x").format_text() == "x: clean"

    def test_to_json_summary_counts(self):
        out = run_checks(loop_model()).to_json()
        assert out["summary"]["errors"] >= 1
        assert isinstance(out["diagnostics"], list)


class TestCli:
    def test_bad_file_exits_nonzero_with_code(self, tmp_path, capsys):
        path = tmp_path / "bad_model.py"
        path.write_text(BAD_FILE)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "STR001" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean_model.py"
        path.write_text(CLEAN_FILE)
        assert main([str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_report_structure(self, tmp_path, capsys):
        path = tmp_path / "bad_model.py"
        path.write_text(BAD_FILE)
        artefact = tmp_path / "diag.json"
        code = main([
            str(path), "--format", "json",
            "--json-output", str(artefact),
        ])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        [target] = report["targets"]
        assert target["builder"] == "build_bad"
        assert any(
            d["code"] == "STR001" for d in target["diagnostics"]
        )
        assert json.loads(artefact.read_text()) == report

    def test_import_failure_reported_as_chk000(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("import nonexistent_module_xyz\n")
        assert main([str(path)]) == 1

    def test_builder_crash_reported_as_chk000(self, tmp_path, capsys):
        path = tmp_path / "crash.py"
        path.write_text("def build_boom():\n    raise RuntimeError('x')\n")
        assert main([str(path)]) == 1
        assert "CHK000" in capsys.readouterr().out

    def test_no_builders_is_skipped_not_failed(self, tmp_path, capsys):
        path = tmp_path / "script.py"
        path.write_text("def main():\n    pass\n")
        assert main([str(path)]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_fail_on_threshold(self, tmp_path):
        path = tmp_path / "warny.py"
        path.write_text(textwrap.dedent(
            """
            from repro.core.model import HybridModel
            from repro.dataflow import Gain, Step


            def build_warny():
                model = HybridModel("warny")
                src = model.add_streamer(Step("src"))
                gain = model.add_streamer(Gain("g", k=2.0))
                model.add_flow(src.dport("out"), gain.dport("in"))
                return model
            """
        ))
        # dead block: a warning — clean at the default error threshold
        assert main([str(path)]) == 0
        assert main([str(path), "--fail-on", "warning"]) == 1

    def test_disable_and_suppress_flags(self, tmp_path):
        path = tmp_path / "bad_model.py"
        path.write_text(BAD_FILE)
        assert main([str(path), "--disable", "STR001"]) == 0
        assert main([str(path), "--suppress", "STR001"]) == 0

    def test_no_files_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "no files" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "STR001" in out and "SM002" in out


class TestExamples:
    def test_every_shipped_example_lints_clean(self, capsys):
        files = sorted(glob.glob(os.path.join(EXAMPLES, "*.py")))
        assert files, "examples directory not found"
        assert main(files + ["--fail-on", "warning"]) == 0
