"""The W well-formedness rules (DESIGN.md §5), as registry rules.

These are the twelve structural laws extracted from §2 of the paper,
previously hard-wired into ``core/validation.py``.  They now live in the
rule registry — same codes, same severities, same messages — and
``validate_model`` is a thin compatibility wrapper that runs just this
category.  Rules whose facts exist only on a full :class:`~repro.core.
model.HybridModel` (capsule DPorts, SPort bridges, thread ownership)
skip silently on other targets.
"""

from __future__ import annotations

from typing import List

from repro.core.streamer import Streamer
from repro.umlrt.capsule import Capsule

from repro.check.context import CheckContext
from repro.check.registry import DEFAULT_REGISTRY as REG

rule = REG.rule


def _all_streamers(ctx: CheckContext) -> List[Streamer]:
    """Every streamer in the checked tree (tolerates W6 violations)."""
    out: List[Streamer] = []

    def walk(streamer: Streamer) -> None:
        out.append(streamer)
        for sub in streamer.subs.values():
            if isinstance(sub, Streamer):
                walk(sub)

    tops = (
        ctx.model.streamers if ctx.model is not None
        else (ctx.network.tops if ctx.network is not None else [])
    )
    for top in tops:
        walk(top)
    return out


def _all_flows(ctx: CheckContext):
    flows = []
    if ctx.model is not None:
        flows.extend(ctx.model.flows)
    elif ctx.network is not None:
        flows.extend(ctx.network.extra_flows)
    for streamer in _all_streamers(ctx):
        flows.extend(streamer.flows)
    return flows


def _all_relays(ctx: CheckContext):
    relays = []
    if ctx.model is not None:
        relays.extend(ctx.model.relays.values())
    for streamer in _all_streamers(ctx):
        relays.extend(streamer.relays.values())
    return relays


@rule("W1", "flow-type subset connections", "model", "error",
      "paper §2: a flow may only connect a source whose flow type is a "
      "subset of the target's")
def check_flow_types(ctx: CheckContext) -> None:
    for flow in _all_flows(ctx):
        if not flow.source.flow_type.subset_of(flow.target.flow_type):
            ctx.emit(
                repr(flow),
                f"source flow type {flow.source.flow_type.name!r} is not "
                f"a subset of target {flow.target.flow_type.name!r}",
                obj=flow,
            )


@rule("W2", "relay duplication discipline", "model", "error",
      "paper §2: a relay consumes exactly one flow and generates "
      "exactly two")
def check_relays(ctx: CheckContext) -> None:
    flows = _all_flows(ctx)
    for relay in _all_relays(ctx):
        incoming = sum(1 for f in flows if f.target is relay.input)
        out_a = sum(1 for f in flows if f.source is relay.out_a)
        out_b = sum(1 for f in flows if f.source is relay.out_b)
        if incoming != 1:
            ctx.emit(
                relay.name,
                f"relay needs exactly one incoming flow, found {incoming}",
                obj=relay,
            )
        if out_a != 1 or out_b != 1:
            ctx.emit(
                relay.name,
                "relay must generate exactly two flows "
                f"(out_a: {out_a}, out_b: {out_b})",
                obj=relay,
            )


@rule("W3", "port bindings complete", "model", "error",
      "paper §2: every DPort carries a flow type, every SPort a "
      "protocol role")
def check_port_bindings(ctx: CheckContext) -> None:
    for streamer in _all_streamers(ctx):
        for dport in streamer.dports.values():
            if dport.flow_type is None:  # defensive; ctor already rejects
                ctx.emit(
                    dport.qualified_name, "DPort without flow type",
                    obj=dport,
                )
        for sport in streamer.sports.values():
            if sport.role is None:
                ctx.emit(
                    sport.qualified_name, "SPort without protocol role",
                    obj=sport,
                )


@rule("W4", "streamer behaviour is equations", "model", "error",
      "paper §2: streamer behaviour must be a solver computing "
      "equations, never a state machine")
def check_behaviour_kinds(ctx: CheckContext) -> None:
    for streamer in _all_streamers(ctx):
        if getattr(streamer, "behaviour", None) is not None:
            ctx.emit(
                streamer.path(),
                "streamer carries a state machine; streamer behaviour "
                "must be a solver computing equations",
                obj=streamer,
            )


@rule("W5", "capsule DPorts are relay-only", "model", "error",
      "paper §2: capsules process no data; their DPorts only relay")
def check_capsule_dports(ctx: CheckContext) -> None:
    if ctx.model is None:
        return
    for (capsule_name, port_name), dport in ctx.model.capsule_dports.items():
        if not dport.relay_only:
            ctx.emit(
                f"{capsule_name}.{port_name}",
                "capsule DPorts must be relay-only; capsules process no "
                "data",
                obj=dport,
            )


@rule("W6", "streamers never contain capsules", "model", "error",
      "paper §2 / Figure 2: containment is capsule→streamer, never the "
      "reverse")
def check_containment(ctx: CheckContext) -> None:
    for streamer in _all_streamers(ctx):
        for sub in streamer.subs.values():
            if isinstance(sub, Capsule):
                ctx.emit(
                    streamer.path(),
                    f"streamer contains capsule {sub.instance_name!r}; "
                    "streamers never contain capsules",
                    obj=streamer,
                )


@rule("W7", "SPorts are bridged", "model", "warning",
      "paper §2: an SPort exists to exchange signals with a capsule "
      "port; an unbridged one is dead weight")
def check_sport_bridges(ctx: CheckContext) -> None:
    if ctx.model is None:
        return
    for streamer, sport in ctx.model.all_sports():
        if not sport.connected:
            ctx.emit(
                sport.qualified_name,
                "SPort is not connected to any capsule port",
                obj=streamer,
            )


@rule("W8", "single drivers and connectivity", "model", "warning",
      "paper §2: every IN DPort has at most one driver; undriven "
      "inputs hold their initial value")
def check_network(ctx: CheckContext) -> None:
    if ctx.network_error is not None:
        # flattening failed outright: double driver or pad cycle (W8),
        # or — only possible in strict mode — an algebraic loop (W12)
        message = str(ctx.network_error)
        code = "W12" if "algebraic" in message else "W8"
        ctx.emit(ctx.subject, message, severity="error", code=code)
        return
    if ctx.unconnected_inputs is None:
        return
    for port in ctx.unconnected_inputs:
        ctx.emit(
            port.qualified_name,
            "IN DPort has no driver; it will hold its initial value",
            obj=port.owner,
        )


@rule("W10", "thread partition is sound", "model", "warning",
      "paper §2: capsules and streamers are assigned to different "
      "threads; each streamer to exactly one")
def check_threads(ctx: CheckContext) -> None:
    if ctx.model is None:
        return
    for top in ctx.model.streamers:
        if top.thread is None:
            ctx.emit(
                top.path(),
                "top streamer not yet assigned to a thread; the default "
                "thread will adopt it at build time",
                obj=top,
            )
    seen = {}
    for thread in ctx.model.threads:
        for streamer in thread.streamers:
            if id(streamer) in seen:
                ctx.emit(
                    streamer.path(),
                    f"streamer on two threads: {seen[id(streamer)]} and "
                    f"{thread.name}",
                    severity="error",
                    obj=streamer,
                )
            seen[id(streamer)] = thread.name


@rule("W12", "no algebraic loops (legacy code)", "model", "error",
      "paper §2: delay-free feedthrough cycles are unsolvable by "
      "forward propagation (detailed report: STR001)")
def check_algebraic_compat(ctx: CheckContext) -> None:
    # STR001 is the first-class report (full cycle path).  The W12 code
    # is kept for the validate_model() compatibility surface and only
    # emitted when explicitly asked for, so one loop is not reported
    # twice under two codes in a default run.
    if not ctx.config.w12_compat or not ctx.cycles:
        return
    stuck = sorted(leaf.path() for cycle in ctx.cycles for leaf in cycle)
    ctx.emit(
        ctx.subject,
        "algebraic loop (W12) among direct-feedthrough streamers: "
        + ", ".join(stuck),
    )
