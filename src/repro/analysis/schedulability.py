"""Fixed-priority schedulability analysis.

"During implementation, capsules and streamers are assigned to different
threads" (paper §2) — which immediately raises the real-time question: is
that thread set schedulable?  This module is the static engine answering
it, in the direction "Integrating Schedulability Analysis with UML-RT"
(PAPERS.md) points:

* :func:`liu_layland_bound` / :func:`utilisation_test` — the sufficient
  utilisation test ``U <= n(2^(1/n) - 1)``;
* :func:`response_time_analysis` — exact (necessary & sufficient)
  iterative RTA for constrained-deadline task sets under
  deadline-monotonic priorities, extended with priority-ceiling blocking
  terms, release jitter and (suspension-oblivious) self-suspension, run
  per processor partition;
* :func:`first_fit_partition` — a first-fit decreasing-utilisation
  partitioner onto N processors, each bin verified by exact RTA;
* :func:`sensitivity` / :func:`min_feasible_sync_interval` — binary
  searches for the maximum sustainable WCET scale and the smallest
  feasible sync interval;
* :func:`taskset_from_model` — derive a periodic task per streamer
  thread (period = sync interval, cost measured or estimated) plus one
  per capsule controller, with shared-resource facts
  (:func:`shared_state_sharers`, the same scan THR002 lints) turned into
  critical sections for the blocking bound.

Numerical care: the RTA fixed point iterates with an epsilon-guarded
ceiling (``ceil(3.0000000000000004) == 4`` would over-count interference
by a whole job) and an epsilon convergence test; a non-converged
iteration is reported explicitly (``converged=False``) instead of
silently returning the last iterate.

All results are typed dataclasses; every one carries ``as_dict()`` for
JSON callers (the check rules, the ``--explain-sched`` report, CI
artifacts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING, Dict, Iterable, Iterator, List, Mapping, Optional,
    Sequence, Tuple,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import HybridModel
    from repro.core.streamer import Streamer

#: relative guard for the interference ceiling: a ratio landing a few
#: ulps above an integer (``3.0000000000000004``) must still count as
#: exactly that integer's worth of preemptions
CEIL_EPS = 1e-9

#: relative convergence tolerance for the RTA fixed point
FIXPOINT_EPS = 1e-12


class SchedulabilityError(Exception):
    """Raised on malformed task sets."""


def _ceil_eps(ratio: float, eps: float = CEIL_EPS) -> int:
    """``ceil`` that forgives floating-point overshoot just above an
    integer, so ``R/T`` landing on ``3.0000000000000004`` contributes
    3 preemptions, not 4."""
    return max(0, math.ceil(ratio - eps * max(1.0, abs(ratio))))


@dataclass(frozen=True)
class CriticalSection:
    """One lock of a named shared resource for ``duration`` time units."""

    resource: str
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SchedulabilityError(
                f"critical section on {self.resource!r}: negative "
                f"duration {self.duration}"
            )


@dataclass(frozen=True)
class Task:
    """A periodic task: worst-case cost, period, deadline (= period if
    omitted), release jitter, self-suspension, an optional explicit
    priority (smaller = more urgent; deadline-monotonic otherwise), a
    processor partition and the critical sections it holds."""

    name: str
    wcet: float
    period: float
    deadline: Optional[float] = None
    jitter: float = 0.0
    self_suspension: float = 0.0
    priority: Optional[int] = None
    partition: str = "cpu0"
    critical_sections: Tuple[CriticalSection, ...] = ()

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise SchedulabilityError(f"{self.name}: non-positive WCET")
        if self.period <= 0:
            raise SchedulabilityError(f"{self.name}: non-positive period")
        if self.jitter < 0:
            raise SchedulabilityError(f"{self.name}: negative jitter")
        if self.self_suspension < 0:
            raise SchedulabilityError(
                f"{self.name}: negative self-suspension"
            )
        if self.effective_deadline < self.wcet:
            raise SchedulabilityError(
                f"{self.name}: deadline {self.effective_deadline} < WCET "
                f"{self.wcet}"
            )

    @property
    def effective_deadline(self) -> float:
        return self.period if self.deadline is None else self.deadline

    @property
    def utilisation(self) -> float:
        return self.wcet / self.period

    @property
    def resources(self) -> Tuple[str, ...]:
        return tuple(cs.resource for cs in self.critical_sections)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "wcet": self.wcet,
            "period": self.period,
            "deadline": self.effective_deadline,
            "jitter": self.jitter,
            "self_suspension": self.self_suspension,
            "priority": self.priority,
            "partition": self.partition,
            "critical_sections": [
                {"resource": cs.resource, "duration": cs.duration}
                for cs in self.critical_sections
            ],
        }


@dataclass
class TaskSet:
    """A set of periodic tasks under fixed priorities."""

    tasks: List[Task] = field(default_factory=list)

    def add(self, task: Task) -> "TaskSet":
        self.tasks.append(task)
        return self

    @property
    def utilisation(self) -> float:
        return sum(task.utilisation for task in self.tasks)

    def rate_monotonic_order(self) -> List[Task]:
        """Shorter period = higher priority; name breaks ties."""
        return sorted(self.tasks, key=lambda t: (t.period, t.name))

    def deadline_monotonic_order(self) -> List[Task]:
        """Explicit priority first, then shorter deadline, then period;
        name breaks the remaining ties.  Deadline-monotonic priority
        assignment is optimal for constrained-deadline fixed-priority
        sets (Leung & Whitehead), so this is the engine's default."""
        return sorted(
            self.tasks,
            key=lambda t: (
                t.priority if t.priority is not None else math.inf,
                t.effective_deadline, t.period, t.name,
            ),
        )

    def partitions(self) -> Dict[str, "TaskSet"]:
        """Tasks grouped by processor partition, insertion-ordered."""
        out: Dict[str, TaskSet] = {}
        for task in self.tasks:
            out.setdefault(task.partition, TaskSet()).add(task)
        return out

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)


def liu_layland_bound(n: int) -> float:
    """The Liu & Layland utilisation bound for ``n`` tasks."""
    if n <= 0:
        raise SchedulabilityError(f"need n >= 1 tasks, got {n}")
    return n * (2.0 ** (1.0 / n) - 1.0)


@dataclass(frozen=True)
class UtilisationResult:
    """Outcome of the sufficient Liu–Layland test."""

    tasks: int
    utilisation: float
    bound: float
    passes: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "tasks": self.tasks,
            "utilisation": self.utilisation,
            "bound": self.bound,
            "passes": self.passes,
        }


def utilisation_test(taskset: TaskSet) -> UtilisationResult:
    """Sufficient test: schedulable if U <= bound(n)."""
    n = len(taskset.tasks)
    u = taskset.utilisation
    return UtilisationResult(
        tasks=n, utilisation=u, bound=liu_layland_bound(n),
        passes=bool(u <= liu_layland_bound(n)),
    )


# ----------------------------------------------------------------------
# blocking: priority-ceiling bound
# ----------------------------------------------------------------------
def blocking_terms(ordered: Sequence[Task]) -> Dict[str, float]:
    """Per-task worst-case blocking under the priority-ceiling protocol.

    A task can be blocked at most once, by the single longest critical
    section of any *lower*-priority task locking a resource whose
    ceiling (the highest priority among its users) is at or above the
    task's own priority.  ``ordered`` must already be in priority order
    (index 0 = highest).
    """
    rank = {task.name: index for index, task in enumerate(ordered)}
    ceiling: Dict[str, int] = {}
    for task in ordered:
        for cs in task.critical_sections:
            current = ceiling.get(cs.resource, len(ordered))
            ceiling[cs.resource] = min(current, rank[task.name])
    blocking: Dict[str, float] = {}
    for index, task in enumerate(ordered):
        worst = 0.0
        for lower in ordered[index + 1:]:
            for cs in lower.critical_sections:
                if ceiling[cs.resource] <= index:
                    worst = max(worst, cs.duration)
        blocking[task.name] = worst
    return blocking


# ----------------------------------------------------------------------
# exact RTA
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskResponse:
    """One task's exact response-time analysis outcome."""

    name: str
    response_time: float
    deadline: float
    schedulable: bool
    converged: bool
    iterations: int
    blocking: float
    jitter: float
    self_suspension: float
    partition: str
    #: higher-priority task -> total preemption time charged at the
    #: fixed point (the per-task interference breakdown SCHED002 ships)
    interference: Mapping[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "response_time": self.response_time,
            "deadline": self.deadline,
            "schedulable": self.schedulable,
            "converged": self.converged,
            "iterations": self.iterations,
            "blocking": self.blocking,
            "jitter": self.jitter,
            "self_suspension": self.self_suspension,
            "partition": self.partition,
            "interference": dict(self.interference),
        }


@dataclass
class RTAResult:
    """Per-task responses of one analysis run, in priority order."""

    responses: Tuple[TaskResponse, ...]
    policy: str = "dm"

    @property
    def schedulable(self) -> bool:
        """Every task converged and meets its deadline."""
        return all(r.schedulable and r.converged for r in self.responses)

    @property
    def failing(self) -> List[TaskResponse]:
        return [
            r for r in self.responses
            if not r.schedulable or not r.converged
        ]

    def __getitem__(self, name: str) -> TaskResponse:
        for response in self.responses:
            if response.name == name:
                return response
        raise KeyError(name)

    def __iter__(self) -> Iterator[TaskResponse]:
        return iter(self.responses)

    def __len__(self) -> int:
        return len(self.responses)

    def items(self) -> List[Tuple[str, TaskResponse]]:
        return [(r.name, r) for r in self.responses]

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {r.name: r.as_dict() for r in self.responses}


def _analyse_partition(
    ordered: Sequence[Task],
    with_blocking: bool,
    max_iterations: int,
) -> List[TaskResponse]:
    blocking = (
        blocking_terms(ordered) if with_blocking
        else {task.name: 0.0 for task in ordered}
    )
    out: List[TaskResponse] = []
    for index, task in enumerate(ordered):
        higher = ordered[:index]
        base = (
            task.wcet + blocking[task.name] + task.self_suspension
        )
        response = base
        converged = False
        iterations = 0
        breakdown: Dict[str, float] = {}
        for iterations in range(1, max_iterations + 1):
            breakdown = {
                other.name: _ceil_eps(
                    (response + other.jitter) / other.period
                ) * other.wcet
                for other in higher
            }
            next_response = base + sum(breakdown.values())
            if abs(next_response - response) <= FIXPOINT_EPS * max(
                1.0, abs(next_response)
            ):
                response = next_response
                converged = True
                break
            response = next_response
            if response + task.jitter > task.effective_deadline:
                # already past the deadline: the fixed point can only
                # grow, so the verdict is settled
                converged = True
                break
        out.append(TaskResponse(
            name=task.name,
            response_time=response,
            deadline=task.effective_deadline,
            schedulable=bool(
                converged
                and response + task.jitter <= task.effective_deadline
            ),
            converged=converged,
            iterations=iterations,
            blocking=blocking[task.name],
            jitter=task.jitter,
            self_suspension=task.self_suspension,
            partition=task.partition,
            interference=breakdown,
        ))
    return out


def response_time_analysis(
    taskset: TaskSet,
    max_iterations: int = 10_000,
    with_blocking: bool = True,
    policy: str = "dm",
) -> RTAResult:
    """Exact RTA per processor partition.

    The fixed point solved per task is::

        R = C + B + S + sum over hp(i) of ceil((R + J_j) / T_j) * C_j

    with ``B`` the priority-ceiling blocking bound, ``S`` the
    (suspension-oblivious) self-suspension and ``J`` release jitter; the
    task is schedulable iff ``R + J_i <= D_i``.  ``policy`` selects the
    priority order: ``"dm"`` (deadline-monotonic, the default) or
    ``"rm"`` (rate-monotonic); explicit :attr:`Task.priority` values
    always win over either.
    """
    if policy not in ("dm", "rm"):
        raise SchedulabilityError(
            f"unknown priority policy {policy!r}; use 'dm' or 'rm'"
        )
    responses: List[TaskResponse] = []
    for __, partition in taskset.partitions().items():
        ordered = (
            partition.deadline_monotonic_order() if policy == "dm"
            else sorted(
                partition.tasks,
                key=lambda t: (
                    t.priority if t.priority is not None else math.inf,
                    t.period, t.name,
                ),
            )
        )
        responses.extend(
            _analyse_partition(ordered, with_blocking, max_iterations)
        )
    return RTAResult(responses=tuple(responses), policy=policy)


def taskset_schedulable(
    taskset: TaskSet, with_blocking: bool = True
) -> bool:
    """True iff every task meets its deadline under exact RTA."""
    return response_time_analysis(
        taskset, with_blocking=with_blocking
    ).schedulable


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
@dataclass
class PartitionResult:
    """Outcome of first-fit partitioning onto N processors."""

    #: task name -> assigned partition label
    assignment: Dict[str, str]
    #: the re-labelled task set (only placed tasks)
    taskset: TaskSet
    #: per-partition exact RTA of the placed tasks
    analysis: Dict[str, RTAResult]
    #: tasks no processor could accept
    unassigned: Tuple[str, ...]

    @property
    def feasible(self) -> bool:
        return not self.unassigned and all(
            result.schedulable for result in self.analysis.values()
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "assignment": dict(self.assignment),
            "feasible": self.feasible,
            "unassigned": list(self.unassigned),
            "analysis": {
                label: result.as_dict()
                for label, result in self.analysis.items()
            },
        }


def first_fit_partition(
    taskset: TaskSet,
    processors: int,
    with_blocking: bool = True,
) -> PartitionResult:
    """First-fit decreasing-utilisation partitioning onto N processors.

    Tasks are offered to ``cpu0..cpuN-1`` in decreasing utilisation
    order; a bin accepts a task when the bin's *exact RTA* (not just a
    utilisation bound) stays schedulable with it included.  Critical
    sections ride along, so blocking is re-evaluated inside each bin.
    """
    if processors < 1:
        raise SchedulabilityError(
            f"need at least one processor, got {processors}"
        )
    bins: Dict[str, List[Task]] = {
        f"cpu{index}": [] for index in range(processors)
    }
    assignment: Dict[str, str] = {}
    unassigned: List[str] = []
    for task in sorted(
        taskset.tasks, key=lambda t: (-t.utilisation, t.name)
    ):
        placed = False
        for label, bin_tasks in bins.items():
            candidate = TaskSet([
                replace(existing, partition=label)
                for existing in bin_tasks
            ] + [replace(task, partition=label)])
            if response_time_analysis(
                candidate, with_blocking=with_blocking
            ).schedulable:
                bin_tasks.append(replace(task, partition=label))
                assignment[task.name] = label
                placed = True
                break
        if not placed:
            unassigned.append(task.name)
    placed_set = TaskSet([
        task for bin_tasks in bins.values() for task in bin_tasks
    ])
    analysis = {
        label: response_time_analysis(
            TaskSet(list(bin_tasks)), with_blocking=with_blocking,
        )
        for label, bin_tasks in bins.items() if bin_tasks
    }
    return PartitionResult(
        assignment=assignment,
        taskset=placed_set,
        analysis=analysis,
        unassigned=tuple(unassigned),
    )


# ----------------------------------------------------------------------
# sensitivity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SensitivityResult:
    """How much headroom the task set has before infeasibility."""

    #: largest uniform WCET scale that stays schedulable
    wcet_scale_max: float
    #: utilisation at that scale
    utilisation_at_max: float
    #: the unscaled utilisation
    utilisation: float

    @property
    def headroom(self) -> float:
        """Fraction of the current WCETs still growable (0 = critical)."""
        return max(0.0, self.wcet_scale_max - 1.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "wcet_scale_max": self.wcet_scale_max,
            "utilisation_at_max": self.utilisation_at_max,
            "utilisation": self.utilisation,
            "headroom": self.headroom,
        }


def _scaled(taskset: TaskSet, scale: float) -> Optional[TaskSet]:
    """The task set with every WCET (and critical section) scaled, or
    ``None`` when the scale breaks a task invariant (WCET > deadline)."""
    try:
        return TaskSet([
            replace(
                task,
                wcet=task.wcet * scale,
                critical_sections=tuple(
                    CriticalSection(cs.resource, cs.duration * scale)
                    for cs in task.critical_sections
                ),
            )
            for task in taskset.tasks
        ])
    except SchedulabilityError:
        return None


def sensitivity(
    taskset: TaskSet,
    with_blocking: bool = True,
    iterations: int = 48,
) -> SensitivityResult:
    """Binary search the maximum sustainable uniform WCET scale.

    Schedulability is monotone in a uniform WCET scale (every term of
    the RTA recurrence grows with it), so bisection between the last
    known-good and first known-bad scale converges to the critical
    scaling factor — the classic sensitivity-analysis headroom number.
    """
    if not taskset.tasks:
        raise SchedulabilityError("sensitivity of an empty task set")

    def feasible(scale: float) -> bool:
        scaled = _scaled(taskset, scale)
        return scaled is not None and response_time_analysis(
            scaled, with_blocking=with_blocking
        ).schedulable

    if not feasible(1.0):
        # find how far it must *shrink* instead
        lo, hi = 0.0, 1.0
    else:
        lo, hi = 1.0, 2.0
        while feasible(hi) and hi < 2.0 ** 40:
            lo, hi = hi, hi * 2.0
    for __ in range(iterations):
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return SensitivityResult(
        wcet_scale_max=lo,
        utilisation_at_max=taskset.utilisation * lo,
        utilisation=taskset.utilisation,
    )


def min_feasible_sync_interval(
    model: "HybridModel",
    lo: float = 1e-6,
    hi: float = 10.0,
    iterations: int = 48,
    with_blocking: bool = True,
    **taskset_kwargs: object,
) -> Optional[float]:
    """Smallest sync interval whose derived task set stays schedulable.

    Bisects on the interval fed to :func:`taskset_from_model`.  Returns
    ``None`` when even ``hi`` is infeasible (the model cannot be saved
    by slowing down); returns ``lo`` when the whole range is feasible.
    """

    def feasible(interval: float) -> bool:
        try:
            derived = taskset_from_model(
                model, interval, **taskset_kwargs
            )
        except SchedulabilityError:
            return False
        if not derived.tasks:
            return True
        return response_time_analysis(
            derived, with_blocking=with_blocking
        ).schedulable

    if not feasible(hi):
        return None
    if feasible(lo):
        return lo
    good, bad = hi, lo
    for __ in range(iterations):
        mid = math.sqrt(good * bad)  # bisect in log space
        if feasible(mid):
            good = mid
        else:
            bad = mid
    return good


# ----------------------------------------------------------------------
# model derivation
# ----------------------------------------------------------------------
#: streamer infrastructure attributes; everything else in ``vars(leaf)``
#: is model payload and participates in the shared-state scan (the same
#: convention THR002 uses)
INFRA_ATTRS = frozenset(
    ("name", "parent", "dports", "sports", "subs", "relays", "flows",
     "thread")
)


def _mutable_types() -> tuple:
    import numpy as np

    return (dict, list, set, bytearray, np.ndarray)


@dataclass(frozen=True)
class SharedStateFact:
    """One mutable object reachable from leaves on several threads."""

    #: stable resource label, e.g. ``"shared:dict:plant.params"``
    resource: str
    #: ``"leaf.attr"`` sites holding the object
    sites: Tuple[str, ...]
    #: thread names touching it (>= 2 by construction)
    threads: Tuple[str, ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "resource": self.resource,
            "sites": list(self.sites),
            "threads": list(self.threads),
        }


def shared_state_sharers(
    leaves: Iterable["Streamer"],
    thread_name: Mapping[int, str],
) -> List[SharedStateFact]:
    """The THR002 fact table: mutable objects shared across threads.

    Scans every leaf's payload attributes for the *same* mutable Python
    object (dict, list, set, bytearray, ndarray) reachable from leaves
    on different threads — an unsynchronised back door around Channels
    that both the race lint (THR002) and the blocking bound (each such
    object is a lock in any real implementation) consume.
    """
    mutable = _mutable_types()
    holders: Dict[int, List[Tuple["Streamer", str, object]]] = {}
    for leaf in leaves:
        for attr, value in vars(leaf).items():
            if attr.startswith("_") or attr in INFRA_ATTRS:
                continue
            if not isinstance(value, mutable):
                continue
            if isinstance(value, (dict, list, set)) and not value:
                continue  # distinct empties carry no shared state
            holders.setdefault(id(value), []).append((leaf, attr, value))

    facts: List[SharedStateFact] = []
    for sharers in holders.values():
        if len(sharers) < 2:
            continue
        threads = {
            thread_name.get(id(leaf), "") for leaf, __, __v in sharers
        }
        threads.discard("")
        if len(threads) < 2:
            continue
        first_leaf, first_attr, value = sharers[0]
        facts.append(SharedStateFact(
            resource=(
                f"shared:{type(value).__name__}:"
                f"{first_leaf.path()}.{first_attr}"
            ),
            sites=tuple(
                f"{leaf.path()}.{attr}" for leaf, attr, __ in sharers
            ),
            threads=tuple(sorted(threads)),
        ))
    return facts


def shared_state_facts(model: "HybridModel") -> List[SharedStateFact]:
    """Shared-state facts for a whole model (leaves + thread map)."""
    thread_name: Dict[int, str] = {}
    leaves: List["Streamer"] = []
    for thread in model.threads:
        for top in thread.streamers:
            for leaf in top.leaves():
                thread_name[id(leaf)] = thread.name
                leaves.append(leaf)
    return shared_state_sharers(leaves, thread_name)


#: per-leaf per-minor-step cost estimate used when no measurement is
#: supplied (10µs per leaf evaluation, the historic heuristic)
LEAF_STEP_COST = 1e-5


def taskset_from_model(
    model: "HybridModel",
    sync_interval: float,
    streamer_wcet: Optional[Dict[str, float]] = None,
    controller_wcet: float = 1e-4,
    controller_period: Optional[float] = None,
    controller_jitter: float = 0.0,
    include_shared_state: bool = True,
    granularity: str = "sync",
) -> TaskSet:
    """Derive a fixed-priority task set from a hybrid model.

    Two mappings, selected by ``granularity``:

    * ``"sync"`` (default) — one task per streamer thread with period
      equal to the sync interval and WCET covering the whole slice
      (measured via ``streamer_wcet[thread name]`` or estimated as
      ``minor steps per slice × 10µs`` per leaf).  Priorities mirror
      the cooperative scheduler's execution order (threads in
      declaration order, then controllers), so the static model and
      the runtime agree on who preempts whom.  This is the "does every
      slice fit before the sync point" question SCHED001 asks.
    * ``"minor"`` — one task per thread with period equal to the
      thread's *minor step* ``h`` and WCET of one minor step (``10µs``
      per leaf).  This is the preemptive-RTOS mapping: multirate
      threads genuinely have different periods, priorities are
      deadline-monotonic, and priority-ceiling blocking through shared
      state can break deadlines a blocking-oblivious analysis accepts
      (the SCHED002 question).

    Each capsule controller becomes a task at ``controller_period``
    (default: the sync interval) with ``controller_wcet`` and
    ``controller_jitter`` release jitter (message-dispatch latency).

    With ``include_shared_state`` (the default), every mutable object
    shared across threads (:func:`shared_state_facts`) becomes a
    resource whose critical section on each sharing thread is that
    thread's cost share of the holding leaves — the conservative "the
    whole access is inside the lock" bound feeding the priority-ceiling
    blocking term.
    """
    if sync_interval <= 0:
        raise SchedulabilityError(
            f"non-positive sync interval: {sync_interval}"
        )
    if granularity not in ("sync", "minor"):
        raise SchedulabilityError(
            f"unknown granularity {granularity!r}; use 'sync' or 'minor'"
        )
    facts = shared_state_facts(model) if include_shared_state else []
    #: thread name -> [(resource, duration)] from the shared-state scan
    sections: Dict[str, List[CriticalSection]] = {}
    taskset = TaskSet()
    priority = 0
    for thread in model.threads:
        if not thread.streamers and not thread.leaves:
            continue
        leaves = thread.leaves or [
            leaf for top in thread.streamers for leaf in top.leaves()
        ]
        if granularity == "minor":
            period = thread.h
            steps_per_period = 1
        else:
            period = sync_interval
            steps_per_period = max(
                1, int(round(sync_interval / thread.h))
            )
        if streamer_wcet and thread.name in streamer_wcet:
            wcet = streamer_wcet[thread.name]
        else:
            wcet = max(
                1e-9, steps_per_period * len(leaves) * LEAF_STEP_COST
            )
        per_leaf = wcet / max(1, len(leaves))
        leaf_paths = {leaf.path() for leaf in leaves}
        for fact in facts:
            if thread.name not in fact.threads:
                continue
            held = sum(
                1 for site in fact.sites
                if site.rsplit(".", 1)[0] in leaf_paths
            )
            if held:
                sections.setdefault(thread.name, []).append(
                    CriticalSection(fact.resource, per_leaf * held)
                )
        taskset.add(Task(
            f"streamer:{thread.name}", wcet=wcet, period=period,
            # execution-order priorities in sync mode (the cooperative
            # runtime's truth); deadline-monotonic in minor mode (the
            # preemptive mapping's optimal assignment)
            priority=priority if granularity == "sync" else None,
            critical_sections=tuple(sections.get(thread.name, ())),
        ))
        priority += 1
    period = controller_period or sync_interval
    for controller in model.rts.controllers:
        if not controller.capsules:
            continue
        taskset.add(Task(
            f"controller:{controller.name}",
            wcet=controller_wcet,
            period=period,
            jitter=controller_jitter,
            priority=priority if granularity == "sync" else None,
        ))
        priority += 1
    return taskset


# ----------------------------------------------------------------------
# the full report (``--explain-sched``)
# ----------------------------------------------------------------------
def sched_report(
    model: "HybridModel",
    sync_interval: float,
    streamer_wcet: Optional[Dict[str, float]] = None,
    with_blocking: bool = True,
) -> Dict[str, object]:
    """Everything the engine knows about one model, JSON-shaped.

    The ``--explain-sched`` CLI surface: the derived task set, the
    utilisation test, exact RTA with and without blocking (so priority
    inversion shows up as the delta), the shared-state facts, and both
    sensitivity numbers (max WCET scale, min feasible sync interval).
    """
    taskset = taskset_from_model(
        model, sync_interval, streamer_wcet=streamer_wcet,
    )
    report: Dict[str, object] = {
        "model": model.name,
        "sync_interval": sync_interval,
        "tasks": [task.as_dict() for task in taskset.tasks],
        "shared_state": [
            fact.as_dict() for fact in shared_state_facts(model)
        ],
    }
    if not taskset.tasks:
        report["empty"] = True
        return report
    report["utilisation"] = utilisation_test(taskset).as_dict()
    rta = response_time_analysis(taskset, with_blocking=with_blocking)
    report["rta"] = rta.as_dict()
    report["schedulable"] = rta.schedulable
    # the minor-step (preemptive) mapping, with and without blocking:
    # the delta is the priority-inversion cost of shared state
    try:
        minor = taskset_from_model(
            model, sync_interval, granularity="minor",
        )
    except SchedulabilityError as exc:
        report["rta_minor_error"] = str(exc)
    else:
        blocked = response_time_analysis(minor, with_blocking=True)
        plain = response_time_analysis(minor, with_blocking=False)
        report["rta_minor"] = blocked.as_dict()
        report["rta_minor_no_blocking"] = plain.as_dict()
        report["blocking_only_failure"] = bool(
            plain.schedulable and not blocked.schedulable
        )
    report["sensitivity"] = sensitivity(
        taskset, with_blocking=with_blocking
    ).as_dict()
    min_sync = min_feasible_sync_interval(
        model, with_blocking=with_blocking, streamer_wcet=streamer_wcet,
    )
    report["min_feasible_sync_interval"] = min_sync
    if min_sync is not None and sync_interval > 0:
        report["sync_headroom"] = (sync_interval - min_sync) / sync_interval
    return report
