"""Experiment S3 — code generation round trip.

The paper's workflow ends "until generation code".  This bench measures
generation cost for both backends and proves the Python round trip: the
generated module (no ``repro`` import) reproduces the library simulation
of the same diagram to RK4 accuracy.
"""

import math

import pytest

from benchmarks.conftest import pid_plant_diagram
from repro.codegen import generate_c, generate_python
from repro.core.model import HybridModel


def test_s3_python_generation_cost(benchmark):
    source = benchmark(
        lambda: generate_python(pid_plant_diagram(8),
                                records=["plant.out"])
    )
    assert "def simulate" in source


def test_s3_c_generation_cost(benchmark):
    source = benchmark(
        lambda: generate_c(pid_plant_diagram(8), records=["plant.out"])
    )
    assert "int main(void)" in source
    assert source.count("{") == source.count("}")


def test_s3_round_trip_fidelity(benchmark, report, bench_json):
    h = 0.002
    results = {}

    def round_trip():
        source = generate_python(
            pid_plant_diagram(0), records=["plant.out"], default_h=h
        )
        namespace = {}
        exec(compile(source, "<gen>", "exec"), namespace)
        generated = namespace["simulate"](4.0, h=h)
        results["generated"] = generated["plant.out"][-1]
        results["loc"] = len(source.splitlines())

    benchmark(round_trip)

    diagram = pid_plant_diagram(0)
    diagram.finalise()
    model = HybridModel("ref")
    model.default_thread.h = h
    model.add_streamer(diagram)
    model.add_probe("y", diagram.port_at("plant.out"))
    model.run(until=4.0, sync_interval=0.05)
    reference = model.probe("y").y_final[0]

    diff = abs(results["generated"] - reference)
    report("S3: generated-code round trip (PID loop)", [
        f"library simulation final : {reference:.8f}",
        f"generated module final   : {results['generated']:.8f}",
        f"difference               : {diff:.2e}",
        f"generated Python         : {results['loc']} lines, "
        "stdlib-only",
    ])
    assert diff < 1e-6
    bench_json("s3", {
        "round_trip_difference": diff,
        "generated_python_loc": results["loc"],
    })


def test_s3_generated_code_speed(benchmark, report, bench_json):
    """The generated flat loop outruns the reflective simulator — the
    reason code generation is the deployment path."""
    import time

    h = 0.002
    source = generate_python(pid_plant_diagram(0),
                             records=["plant.out"], default_h=h)
    namespace = {}
    exec(compile(source, "<gen>", "exec"), namespace)
    simulate = namespace["simulate"]

    benchmark(lambda: simulate(2.0, h=h, record_every=100))

    start = time.perf_counter()
    simulate(2.0, h=h, record_every=100)
    generated_wall = time.perf_counter() - start

    diagram = pid_plant_diagram(0)
    diagram.finalise()
    model = HybridModel("ref")
    model.default_thread.h = h
    model.add_streamer(diagram)
    start = time.perf_counter()
    model.run(until=2.0, sync_interval=0.05)
    library_wall = time.perf_counter() - start

    report("S3: generated code vs in-library simulation (2 sim-s)", [
        f"generated module: {generated_wall * 1e3:8.1f} ms",
        f"library         : {library_wall * 1e3:8.1f} ms",
        f"speedup         : {library_wall / generated_wall:8.1f}x",
    ])
    assert generated_wall < library_wall
    bench_json("s3", {
        "generated_wall_ms": generated_wall * 1e3,
        "library_wall_ms": library_wall * 1e3,
        "speedup": library_wall / generated_wall,
    })
