"""ModelBuilder: a fluent, path-addressed front end over HybridModel.

The builder lets scripts (and generated code) wire models with dotted path
strings instead of object references::

    model = (
        ModelBuilder("thermo")
        .thread("plant_thread", solver="rk45", h=1e-3)
        .streamer(RoomThermal("room"), thread="plant_thread")
        .capsule(Thermostat("stat"))
        .sport_link("stat.env", "room.ctrl")
        .probe("temperature", "room.temp")
        .build()
    )

Paths: ``"top.sub.leaf.port"`` for DPorts/SPorts inside the streamer
hierarchy; ``"capsuleInstance.port"`` for capsule ports.  ``build()``
validates and returns the finished :class:`~repro.core.model.HybridModel`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.dport import DPort
from repro.core.flowtype import FlowType
from repro.core.model import HybridModel
from repro.core.sport import SPort
from repro.core.streamer import Streamer, StreamerError
from repro.core.channel import ChannelPolicy
from repro.umlrt.capsule import Capsule
from repro.umlrt.port import Port


class BuilderError(Exception):
    """Raised on unresolvable paths or misuse of the builder."""


class ModelBuilder:
    """Fluent construction of hybrid models by dotted paths."""

    def __init__(self, name: str = "model", t0: float = 0.0) -> None:
        self.model = HybridModel(name, t0)
        self._capsules: Dict[str, Capsule] = {}

    # ------------------------------------------------------------------
    def thread(
        self, name: str, solver: Any = "rk4", h: float = 1e-3, **kw: Any
    ) -> "ModelBuilder":
        self.model.create_thread(name, solver, h, **kw)
        return self

    def controller(self, name: str) -> "ModelBuilder":
        self.model.create_controller(name)
        return self

    def streamer(
        self, streamer: Streamer, thread: Optional[str] = None
    ) -> "ModelBuilder":
        chosen = None
        if thread is not None:
            chosen = self._find_thread(thread)
        self.model.add_streamer(streamer, chosen)
        return self

    def capsule(
        self, capsule: Capsule, controller: Optional[str] = None
    ) -> "ModelBuilder":
        chosen = None
        if controller is not None:
            matches = [
                c for c in self.model.rts.controllers if c.name == controller
            ]
            if not matches:
                raise BuilderError(f"unknown controller {controller!r}")
            chosen = matches[0]
        self.model.add_capsule(capsule, chosen)
        self._capsules[capsule.instance_name] = capsule
        return self

    # ------------------------------------------------------------------
    def flow(self, source_path: str, target_path: str) -> "ModelBuilder":
        """Model-level flow between two DPorts addressed by path."""
        self.model.add_flow(
            self.dport(source_path), self.dport(target_path)
        )
        return self

    def relay(self, name: str, flow_type: FlowType) -> "ModelBuilder":
        self.model.add_relay(name, flow_type)
        return self

    def sport_link(
        self,
        capsule_port_path: str,
        sport_path: str,
        capacity: int = 64,
        policy: ChannelPolicy = ChannelPolicy.OVERWRITE,
    ) -> "ModelBuilder":
        """Bridge ``"capsule.port"`` to ``"streamer...sport"``."""
        self.model.connect_sport(
            self.capsule_port(capsule_port_path),
            self.sport(sport_path),
            capacity=capacity,
            policy=policy,
        )
        return self

    def probe(self, name: str, dport_path: str) -> "ModelBuilder":
        self.model.add_probe(name, self.dport(dport_path))
        return self

    def build(self, strict: bool = True) -> HybridModel:
        """Validate and hand over the model."""
        self.model.validate(strict=strict)
        return self.model

    # ------------------------------------------------------------------
    # path resolution
    # ------------------------------------------------------------------
    def find_streamer(self, path: str) -> Streamer:
        parts = path.split(".")
        node: Optional[Streamer] = None
        for top in self.model.streamers:
            if top.name == parts[0]:
                node = top
                break
        if node is None:
            raise BuilderError(f"unknown top streamer {parts[0]!r}")
        for part in parts[1:]:
            try:
                node = node.sub(part)
            except StreamerError:
                raise BuilderError(
                    f"no sub-streamer {part!r} under {node.path()}"
                ) from None
        return node

    def dport(self, path: str) -> DPort:
        streamer_path, __, port_name = path.rpartition(".")
        if not streamer_path:
            raise BuilderError(f"DPort path needs at least 'streamer.port': {path!r}")
        # relay pads: "<relay>.in/out_a/out_b" at model level
        relay = self.model.relays.get(streamer_path)
        if relay is not None:
            pads = {"in": relay.input, "out_a": relay.out_a,
                    "out_b": relay.out_b}
            if port_name not in pads:
                raise BuilderError(
                    f"relay {streamer_path!r} has no pad {port_name!r}"
                )
            return pads[port_name]
        # capsule relay DPorts: "capsule.dport"
        key = (streamer_path, port_name)
        if key in self.model.capsule_dports:
            return self.model.capsule_dports[key]
        streamer = self.find_streamer(streamer_path)
        try:
            return streamer.dport(port_name)
        except StreamerError:
            raise BuilderError(
                f"streamer {streamer.path()} has no DPort {port_name!r}"
            ) from None

    def sport(self, path: str) -> SPort:
        streamer_path, __, port_name = path.rpartition(".")
        if not streamer_path:
            raise BuilderError(f"SPort path needs 'streamer.sport': {path!r}")
        streamer = self.find_streamer(streamer_path)
        try:
            return streamer.sport(port_name)
        except StreamerError:
            raise BuilderError(
                f"streamer {streamer.path()} has no SPort {port_name!r}"
            ) from None

    def capsule_port(self, path: str) -> Port:
        capsule_name, __, port_name = path.rpartition(".")
        if not capsule_name:
            raise BuilderError(f"port path needs 'capsule.port': {path!r}")
        capsule = self._capsules.get(capsule_name)
        if capsule is None:
            # search parts of registered capsules by full instance name
            for top in self._capsules.values():
                for descendant in top.descendants():
                    if descendant.instance_name == capsule_name:
                        capsule = descendant
                        break
                if capsule is not None:
                    break
        if capsule is None:
            raise BuilderError(f"unknown capsule {capsule_name!r}")
        return capsule.port(port_name)

    def _find_thread(self, name: str):
        for thread in self.model.threads:
            if thread.name == name:
                return thread
        raise BuilderError(f"unknown streamer thread {name!r}")
