"""Batch backend: N instances in one state matrix, bit-identical to N
sequential interpreter runs for fixed-step solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import (
    BatchError, BatchSimulator, simulate_sequential,
)
from repro.dataflow.diagram import Diagram
from repro.dataflow.discrete import ZeroOrderHold
from repro.dataflow.dynamics import PID, FirstOrderLag
from repro.dataflow.math_blocks import Sum
from repro.dataflow.sources import Sine, Step


RECORDS = ["plant.out", "pid.out"]


def pid_loop_diagram(kp: float = 3.0) -> Diagram:
    """Step -> Sum(+-) -> PID -> FirstOrderLag with unity feedback."""
    d = Diagram("loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", "+-"))
    d.add(PID("pid", kp=kp, ki=1.5, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.4))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    return d


class TestBitwiseIdentity:
    N = 100

    def test_batch_equals_n_sequential_runs(self):
        sweeps = {"pid.kp": np.linspace(0.5, 5.0, self.N)}
        batch = BatchSimulator(
            pid_loop_diagram(), self.N, solver="rk4", h=2e-3,
            records=RECORDS, sweeps=sweeps,
        ).run(0.2)
        reference = simulate_sequential(
            pid_loop_diagram, self.N, 0.2, solver="rk4", h=2e-3,
            records=RECORDS, sweeps=sweeps,
        )
        assert np.array_equal(batch.t, reference.t)
        for label in RECORDS:
            assert batch.series[label].shape == (len(batch.t), self.N)
            assert np.array_equal(
                batch.series[label], reference.series[label]
            ), f"series {label} diverged from the sequential reference"
        assert np.array_equal(batch.final_states, reference.final_states)

    def test_bitwise_for_every_fixed_step_solver(self):
        sweeps = {"plant.tau": np.linspace(0.2, 1.0, 5)}
        for solver in ("euler", "heun", "rk4"):
            batch = BatchSimulator(
                pid_loop_diagram(), 5, solver=solver, h=5e-3,
                records=RECORDS, sweeps=sweeps,
            ).run(0.1)
            reference = simulate_sequential(
                pid_loop_diagram, 5, 0.1, solver=solver, h=5e-3,
                records=RECORDS, sweeps=sweeps,
            )
            for label in RECORDS:
                assert np.array_equal(
                    batch.series[label], reference.series[label]
                ), f"{solver}: series {label} diverged"

    def test_unswept_batch_rows_are_identical(self):
        batch = BatchSimulator(
            pid_loop_diagram(), 4, solver="rk4", h=1e-2, records=RECORDS,
        ).run(0.1)
        plant = batch.series["plant.out"]
        for i in range(1, 4):
            assert np.array_equal(plant[:, 0], plant[:, i])


class TestBatchResult:
    def test_instance_view(self):
        sweeps = {"pid.kp": np.array([1.0, 2.0, 4.0])}
        batch = BatchSimulator(
            pid_loop_diagram(), 3, solver="rk4", h=1e-2,
            records=RECORDS, sweeps=sweeps,
        ).run(0.1)
        one = batch.instance(2)
        assert np.array_equal(one["t"], batch.t)
        assert np.array_equal(
            one["plant.out"], batch.series["plant.out"][:, 2]
        )
        # higher kp drives the plant harder
        assert (
            batch.series["plant.out"][-1, 2]
            > batch.series["plant.out"][-1, 0]
        )

    def test_record_every_thins_rows(self):
        full = BatchSimulator(
            pid_loop_diagram(), 2, solver="euler", h=1e-2, records=RECORDS,
        ).run(0.1, record_every=1)
        thin = BatchSimulator(
            pid_loop_diagram(), 2, solver="euler", h=1e-2, records=RECORDS,
        ).run(0.1, record_every=5)
        assert len(thin.t) < len(full.t)
        # the final instant is always recorded
        assert thin.t[-1] == full.t[-1]

    def test_stats(self):
        batch = BatchSimulator(
            pid_loop_diagram(), 2, solver="rk4", h=1e-2, records=RECORDS,
            sweeps={"pid.kp": [1.0, 2.0]},
        ).run(0.05)
        assert batch.stats["instances"] == 2
        assert batch.stats["minor_steps"] == 5
        assert batch.stats["sweeps"] == ["pid.kp"]


class TestRejections:
    def test_adaptive_solver_rejected(self):
        with pytest.raises(BatchError, match="fixed-step"):
            BatchSimulator(pid_loop_diagram(), 3, solver="rk45")

    def test_wrong_sweep_length(self):
        with pytest.raises(BatchError, match="expected 3"):
            BatchSimulator(
                pid_loop_diagram(), 3,
                sweeps={"pid.kp": [1.0, 2.0]},
            )

    def test_unknown_sweep_block(self):
        with pytest.raises(BatchError, match="nosuch"):
            BatchSimulator(
                pid_loop_diagram(), 2,
                sweeps={"nosuch.kp": [1.0, 2.0]},
            )

    def test_unknown_sweep_param(self):
        with pytest.raises(BatchError, match="quux"):
            BatchSimulator(
                pid_loop_diagram(), 2,
                sweeps={"pid.quux": [1.0, 2.0]},
            )

    def test_folded_parameter_rejected(self):
        """Sine folds ``2*pi*freq`` into a literal at lowering time, so
        sweeping ``freq`` silently could not work — it must raise."""
        d = Diagram("s")
        d.add(Sine("src", freq=2.0))
        d.add(FirstOrderLag("lag", tau=0.3))
        d.connect("src.out", "lag.in")
        with pytest.raises(BatchError, match="freq"):
            BatchSimulator(
                d, 3, records=["lag.out"],
                sweeps={"src.freq": [1.0, 2.0, 3.0]},
            )

    def test_bad_x0_shape(self):
        with pytest.raises(BatchError, match="x0"):
            BatchSimulator(
                pid_loop_diagram(), 3, records=RECORDS,
                x0=np.zeros((3, 99)),
            )

    def test_n_must_be_positive(self):
        with pytest.raises(BatchError, match="instance"):
            BatchSimulator(pid_loop_diagram(), 0)


class TestX0Override:
    def test_initial_condition_sweep(self):
        d = Diagram("decay")
        d.add(Step("ref", amplitude=0.0))
        d.add(FirstOrderLag("lag", tau=0.5))
        d.connect("ref.out", "lag.in")
        x0 = np.array([[0.0], [1.0], [2.0]])
        batch = BatchSimulator(
            d, 3, solver="rk4", h=1e-2, records=["lag.out"], x0=x0,
        ).run(0.1)
        lag = batch.series["lag.out"]
        assert lag[0, 0] == 0.0
        assert lag[0, 1] == pytest.approx(1.0)
        # free decay from different starts stays ordered
        assert lag[-1, 0] < lag[-1, 1] < lag[-1, 2]


class TestSampledBlocks:
    def test_zero_order_hold_runs_batched(self):
        """Sampled blocks execute in the batch program (no bitwise claim
        against the interpreter: codegen uses the closed-form sample
        grid, the interpreter walks it incrementally)."""
        d = Diagram("zoh")
        d.add(Sine("src", freq=1.0))
        d.add(ZeroOrderHold("hold", ts=0.05))
        d.add(FirstOrderLag("lag", tau=0.2))
        d.connect("src.out", "hold.in")
        d.connect("hold.out", "lag.in")
        batch = BatchSimulator(
            d, 4, solver="rk4", h=1e-2, records=["hold.out", "lag.out"],
        ).run(0.3)
        assert batch.series["hold.out"].shape == (len(batch.t), 4)
        assert np.all(np.isfinite(batch.series["lag.out"]))
        # the hold output is piecewise constant: few distinct values
        distinct = len(np.unique(np.round(batch.series["hold.out"][:, 0], 12)))
        assert distinct <= 8
