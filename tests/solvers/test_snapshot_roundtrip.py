"""Snapshot/restore round-trip property for every registered solver.

The contract (:meth:`repro.solvers.base.SolverBase.snapshot_state`): a
fresh instance of the same solver class, fed the captured state, must
continue an integration *bitwise* identically to the uninterrupted
instance — FSAL slots, PI error history and counters included.  The
state must also survive the resilience codec's wire format, since that
is how it travels inside checkpoints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import decode_blob, encode_blob
from repro.solvers.registry import available_solvers, make_solver


def rhs(t, y):
    """A mildly stiff nonlinear oscillator (shape-preserving for batch)."""
    return np.stack([y[1], -25.0 * y[0] - 0.4 * y[1] * np.abs(y[1])])


Y0 = np.array([1.0, 0.0])
H0 = 1e-2
SPLIT = 25
TOTAL = 50


def drive(solver, t, y, h, steps):
    """Step ``steps`` times, threading h_next like a solver binding."""
    ts, ys = [], []
    for __ in range(steps):
        result = solver.step(rhs, t, y, h)
        t, y, h = result.t, result.y, result.h_next
        ts.append(t)
        ys.append(np.asarray(y, dtype=float).copy())
    return t, y, h, ts, ys


@pytest.mark.parametrize("name", available_solvers())
def test_round_trip_is_bitwise(name):
    # uninterrupted reference
    ref = make_solver(name)
    __, __, __, ref_ts, ref_ys = drive(ref, 0.0, Y0.copy(), H0, TOTAL)

    # first leg, then snapshot through the codec wire format
    first = make_solver(name)
    t, y, h, ts, ys = drive(first, 0.0, Y0.copy(), H0, SPLIT)
    blob = encode_blob({
        "solver": first.snapshot_state(),
        "t": t, "y": y, "h": h,
    })
    del first

    # second leg on a fresh instance restored from the blob
    doc = decode_blob(blob)
    second = make_solver(name)
    second.restore_state(doc["solver"])
    __, __, __, ts2, ys2 = drive(
        second, doc["t"], np.asarray(doc["y"], dtype=float), doc["h"],
        TOTAL - SPLIT,
    )
    ts.extend(ts2)
    ys.extend(ys2)

    assert ts == ref_ts, f"{name}: time grid diverged after restore"
    for i, (got, want) in enumerate(zip(ys, ref_ys)):
        assert np.array_equal(got, want), (
            f"{name}: state diverged at step {i} after restore"
        )


@pytest.mark.parametrize("name", available_solvers())
def test_snapshot_is_plain_data(name):
    solver = make_solver(name)
    drive(solver, 0.0, Y0.copy(), H0, 5)
    state = solver.snapshot_state()
    # must survive the codec (raises SnapshotError on live objects)
    assert decode_blob(encode_blob(state)).keys() == state.keys()


@pytest.mark.parametrize("name", available_solvers())
def test_restore_rejects_nothing_it_produced(name):
    # restoring a freshly captured state twice is harmless
    solver = make_solver(name)
    drive(solver, 0.0, Y0.copy(), H0, 3)
    state = solver.snapshot_state()
    solver.restore_state(state)
    solver.restore_state(state)
