"""The PlanOptimizer: rewrites ExecutionPlan tables pass by pass.

The optimizer works on a small mutable mirror of the plan's node/edge
tables (:class:`_WNode` / :class:`_WEdge`), mutates it through the
enabled passes and rebuilds a fresh :class:`~repro.core.plan.
ExecutionPlan` — the plan constructor re-derives stages, schedules and
every hot-path cache from the tables, so the rewritten plan drops into
the interpreter, thread views, batch backend and code generators
unchanged.

Safety invariants shared by all passes:

* only *rewritable* leaves are touched: stateless, no SPorts (so no
  mid-run ``set_<param>`` retuning can invalidate frozen parameters),
  no zero-crossing guards, no discrete extra state;
* *protected* leaves are untouchable: anything owning or wired through
  a probed pad, and anything carrying a symbolic (swept) parameter —
  the batch backend's SweepVar rows must survive to the emitted source;
* state-vector layout is preserved: only stateless nodes are ever
  removed, and surviving nodes keep their original ``[lo, hi)`` slices,
  so ``initial_state()``, snapshots and thread views stay compatible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.dport import DPort
from repro.core.network import ResolvedEdge
from repro.core.plan import ExecutionPlan, PlanEdge, PlanGuard, PlanNode
from repro.core.streamer import Streamer

from repro.core.opt.config import OptConfig, OptReport
from repro.core.opt.synth import (
    FoldedBlock, FusedChain, PadCopy, stage_spec,
)

_EMPTY_STATE = np.zeros(0, dtype=float)

#: block types the fusion pass understands (single affine-expressible op)
_FUSABLE_TYPES = ("Gain", "Bias", "Sum")


class _WNode:
    """Mutable working copy of one PlanNode row."""

    __slots__ = ("leaf", "lo", "hi", "thread_index", "origin_path")

    def __init__(self, node: PlanNode) -> None:
        self.leaf = node.leaf
        self.lo = node.lo
        self.hi = node.hi
        self.thread_index = node.thread_index
        self.origin_path = node.leaf.path()


class _WEdge:
    """Mutable working copy of one PlanEdge row."""

    __slots__ = ("src", "dst", "resolved", "is_observer")

    def __init__(
        self,
        src: _WNode,
        dst: _WNode,
        resolved: ResolvedEdge,
        is_observer: bool,
    ) -> None:
        self.src = src
        self.dst = dst
        self.resolved = resolved
        self.is_observer = is_observer


def _is_rewritable(leaf: Streamer) -> bool:
    """No state, no events, no signal side channel, no held registers —
    the leaf's behaviour is fully described by its dataflow ports."""
    return (
        int(leaf.state_size) == 0
        and not leaf.sports
        and not tuple(leaf.zero_crossing_names)
        and not leaf.extra_state()
    )


def _in_data_ports(leaf: Streamer) -> List[DPort]:
    return [
        pad for pad in leaf.dports.values()
        if pad.is_in and not pad.relay_only
    ]


def _out_data_ports(leaf: Streamer) -> List[DPort]:
    return [
        pad for pad in leaf.dports.values()
        if pad.is_out and not pad.relay_only
    ]


def _edge_pads(resolved: ResolvedEdge) -> List[DPort]:
    """Every pad an edge touches: endpoints plus all hop pads."""
    pads = [resolved.src_port, resolved.dst_port]
    for hop in resolved.path:
        for attr in ("source", "target", "input", "out_a", "out_b"):
            pad = getattr(hop, attr, None)
            if isinstance(pad, DPort):
                pads.append(pad)
    return pads


class PlanOptimizer:
    """Runs the configured pass pipeline over one ExecutionPlan."""

    def __init__(self, config: OptConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def run(
        self,
        plan: ExecutionPlan,
        protect: Sequence[DPort] = (),
    ) -> ExecutionPlan:
        """Optimize ``plan``; returns a new plan (or ``plan`` itself when
        the configuration is inactive).  ``protect`` lists pads whose
        owners and wiring must survive untouched (probed pads)."""
        if not self.config.is_active:
            return plan
        report = OptReport(self.config)
        report.input_nodes = len(plan.nodes)
        nodes = [_WNode(node) for node in plan.nodes]
        edges = [
            _WEdge(
                nodes[edge.src], nodes[edge.dst],
                edge.resolved, edge.is_observer,
            )
            for edge in plan.edges
        ]
        protected = self._protected(nodes, edges, protect)
        if self.config.dce:
            self._pass_dce(nodes, edges, protected, report)
        if self.config.fold:
            self._pass_fold(nodes, edges, protected, report)
        if self.config.cse:
            self._pass_cse(nodes, edges, protected, report)
        if self.config.fuse:
            self._pass_fuse(nodes, edges, protected, report)
        report.output_nodes = len(nodes)
        return self._rebuild(plan, nodes, edges, report)

    # ------------------------------------------------------------------
    # protection
    # ------------------------------------------------------------------
    def _protected(
        self,
        nodes: List[_WNode],
        edges: List[_WEdge],
        protect: Sequence[DPort],
    ) -> Set[int]:
        protected_pads = {id(pad) for pad in protect}
        flagged: Set[int] = set()
        for wn in nodes:
            if any(
                getattr(value, "symbol", None) is not None
                for value in wn.leaf.params.values()
            ):
                flagged.add(id(wn))  # swept parameter: must stay symbolic
            elif protected_pads and any(
                id(pad) in protected_pads
                for pad in wn.leaf.dports.values()
            ):
                flagged.add(id(wn))
        if protected_pads:
            for we in edges:
                if any(
                    id(pad) in protected_pads
                    for pad in _edge_pads(we.resolved)
                ):
                    flagged.add(id(we.src))
                    flagged.add(id(we.dst))
        return flagged

    # ------------------------------------------------------------------
    # pass 1: dead-code elimination
    # ------------------------------------------------------------------
    def _pass_dce(
        self,
        nodes: List[_WNode],
        edges: List[_WEdge],
        protected: Set[int],
        report: OptReport,
    ) -> None:
        observed = {id(we.src) for we in edges if we.is_observer}
        producers: Dict[int, List[_WNode]] = {}
        for we in edges:
            if not we.is_observer:
                producers.setdefault(id(we.dst), []).append(we.src)
        live: Set[int] = set()
        stack: List[_WNode] = []
        for wn in nodes:
            is_root = (
                id(wn) in protected
                or id(wn) in observed
                or not _is_rewritable(wn.leaf)
                or not _out_data_ports(wn.leaf)  # a sink: alive by effect
            )
            if is_root:
                live.add(id(wn))
                stack.append(wn)
        while stack:
            wn = stack.pop()
            for src in producers.get(id(wn), ()):
                if id(src) not in live:
                    live.add(id(src))
                    stack.append(src)
        dead = [wn for wn in nodes if id(wn) not in live]
        if not dead:
            return
        dead_ids = {id(wn) for wn in dead}
        nodes[:] = [wn for wn in nodes if id(wn) not in dead_ids]
        edges[:] = [
            we for we in edges
            if id(we.src) not in dead_ids and id(we.dst) not in dead_ids
        ]
        report.dce_removed = [wn.origin_path for wn in dead]

    # ------------------------------------------------------------------
    # pass 2: constant folding
    # ------------------------------------------------------------------
    def _pass_fold(
        self,
        nodes: List[_WNode],
        edges: List[_WEdge],
        protected: Set[int],
        report: OptReport,
    ) -> None:
        position = {id(wn): i for i, wn in enumerate(nodes)}
        candidates: Dict[int, _WNode] = {
            id(wn): wn for wn in nodes
            if id(wn) not in protected
            and _is_rewritable(wn.leaf)
            and getattr(wn.leaf, "time_invariant", False)
            and not isinstance(wn.leaf, (FoldedBlock, FusedChain))
            and _out_data_ports(wn.leaf)
            and (wn.leaf.direct_feedthrough
                 or not _in_data_ports(wn.leaf))
        }
        # a feedback in-edge delivers the *previous* step's value on the
        # first evaluation — freezing it would change step one, so such
        # nodes never fold
        for we in edges:
            if (
                not we.is_observer
                and id(we.dst) in candidates
                and position[id(we.src)] >= position[id(we.dst)]
            ):
                del candidates[id(we.dst)]
        if not candidates:
            return
        in_edges: Dict[int, List[_WEdge]] = {key: [] for key in candidates}
        for we in edges:
            if not we.is_observer and id(we.dst) in candidates:
                in_edges[id(we.dst)].append(we)

        # STR004's fixpoint: a candidate folds when every input is driven
        # and every driver already folds (constants seed the iteration)
        foldable: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for key, wn in candidates.items():
                if key in foldable:
                    continue
                feeding = in_edges[key]
                if len(feeding) < len(_in_data_ports(wn.leaf)):
                    continue  # an undriven input: statically unknown
                if all(id(we.src) in foldable for we in feeding):
                    foldable.add(key)
                    changed = True
        if not foldable:
            return

        # evaluate the folded subgraph once, with the original blocks'
        # own compute_outputs — the frozen pads are bitwise what every
        # later step would have recomputed
        for wn in nodes:
            if id(wn) in foldable:
                for we in in_edges[id(wn)]:
                    we.resolved.propagate()
                wn.leaf.compute_outputs(0.0, _EMPTY_STATE)

        out_edges: Dict[int, List[_WEdge]] = {}
        observed: Set[int] = set()
        for we in edges:
            if we.is_observer:
                observed.add(id(we.src))
            else:
                out_edges.setdefault(id(we.src), []).append(we)
        boundary = {
            key for key in foldable
            if key in observed
            or any(
                id(we.dst) not in foldable
                for we in out_edges.get(key, ())
            )
        }
        interior = foldable - boundary
        # edges internal to the folded subgraph disappear with it
        edges[:] = [
            we for we in edges
            if we.is_observer
            or id(we.src) not in foldable
            or id(we.dst) not in foldable
        ]
        nodes[:] = [wn for wn in nodes if id(wn) not in interior]
        for wn in nodes:
            if id(wn) in boundary:
                report.constants.append(wn.origin_path)
                wn.leaf = FoldedBlock(wn.leaf)
        report.folded = [
            wn.origin_path
            for wn in candidates.values()
            if id(wn) in foldable
        ]

    # ------------------------------------------------------------------
    # pass 3: common-subexpression elimination
    # ------------------------------------------------------------------
    def _pass_cse(
        self,
        nodes: List[_WNode],
        edges: List[_WEdge],
        protected: Set[int],
        report: OptReport,
    ) -> None:
        position = {id(wn): i for i, wn in enumerate(nodes)}
        in_edges: Dict[int, List[_WEdge]] = {}
        out_edges: Dict[int, List[_WEdge]] = {}
        observed: Set[int] = set()
        for we in edges:
            if we.is_observer:
                observed.add(id(we.src))
            else:
                in_edges.setdefault(id(we.dst), []).append(we)
                out_edges.setdefault(id(we.src), []).append(we)

        rep_of: Dict[int, _WNode] = {}

        def rep(wn: _WNode) -> _WNode:
            while id(wn) in rep_of:
                wn = rep_of[id(wn)]
            return wn

        seen: Dict[Tuple, _WNode] = {}
        removed: Set[int] = set()
        for wn in nodes:
            leaf = wn.leaf
            if (
                id(wn) in protected
                or id(wn) in observed
                or not _is_rewritable(leaf)
                or not getattr(leaf, "time_invariant", False)
                or isinstance(leaf, (FoldedBlock, FusedChain))
            ):
                continue
            feeding = in_edges.get(id(wn), [])
            if len(feeding) != len(_in_data_ports(leaf)):
                continue  # undriven inputs: pad defaults are per-object
            # two nodes fed by the same source are only equivalent when
            # both read the *current* step's value — forward edges only
            if any(
                position[id(we.src)] >= position[id(wn)] for we in feeding
            ):
                continue
            outs = out_edges.get(id(wn), [])
            # merging must not turn a feedback edge into a forward one
            # (consumers would see this step's value instead of the
            # previous step's) — require all consumers strictly after
            if any(
                position[id(we.dst)] <= position[id(wn)] for we in outs
            ):
                continue
            signature = (
                type(leaf).__name__,
                wn.thread_index,
                tuple(sorted(
                    (key, repr(value))
                    for key, value in leaf.params.items()
                )),
                tuple(sorted(
                    (
                        we.resolved.dst_port.name,
                        id(rep(we.src)),
                        we.resolved.src_port.name,
                    )
                    for we in feeding
                )),
            )
            keeper = seen.get(signature)
            if keeper is None:
                seen[signature] = wn
                continue
            rep_pads = {
                pad.name: pad for pad in _out_data_ports(keeper.leaf)
            }
            if any(
                we.resolved.src_port.name not in rep_pads for we in outs
            ):
                continue  # pragma: no cover - same type implies same pads
            for we in outs:
                rep_pad = rep_pads[we.resolved.src_port.name]
                we.resolved = ResolvedEdge(
                    keeper.leaf, rep_pad,
                    we.resolved.dst_leaf, we.resolved.dst_port,
                    [PadCopy(rep_pad, we.resolved.dst_port)],
                )
                we.src = keeper
                out_edges.setdefault(id(keeper), []).append(we)
            removed.add(id(wn))
            rep_of[id(wn)] = keeper
            report.cse_merged.append(
                (wn.origin_path, keeper.origin_path)
            )
        if not removed:
            return
        nodes[:] = [wn for wn in nodes if id(wn) not in removed]
        edges[:] = [
            we for we in edges
            if id(we.src) not in removed and id(we.dst) not in removed
        ]

    # ------------------------------------------------------------------
    # pass 4: gain/sum/affine fusion
    # ------------------------------------------------------------------
    def _pass_fuse(
        self,
        nodes: List[_WNode],
        edges: List[_WEdge],
        protected: Set[int],
        report: OptReport,
    ) -> None:
        position = {id(wn): i for i, wn in enumerate(nodes)}
        in_edges: Dict[int, List[_WEdge]] = {}
        out_edges: Dict[int, List[_WEdge]] = {}
        observed: Set[int] = set()
        for we in edges:
            if we.is_observer:
                observed.add(id(we.src))
            else:
                in_edges.setdefault(id(we.dst), []).append(we)
                out_edges.setdefault(id(we.src), []).append(we)

        def member_ok(wn: _WNode) -> bool:
            leaf = wn.leaf
            feeding = in_edges.get(id(wn), ())
            return (
                id(wn) not in protected
                and type(leaf).__name__ in _FUSABLE_TYPES
                and _is_rewritable(leaf)
                and getattr(leaf, "time_invariant", False)
                and len(feeding) == 1
                # the in-edge must stay forward once retargeted at the
                # tail's slot — a feedback feed could flip to forward and
                # deliver this step's value instead of the previous one
                and position[id(feeding[0].src)] < position[id(wn)]
                and len(_out_data_ports(leaf)) == 1
                and all(pad._is_scalar for pad in leaf.dports.values())
            )

        def links_to(a: _WNode, b: _WNode) -> bool:
            outs = out_edges.get(id(a), ())
            if len(outs) != 1 or id(a) in observed:
                return False
            edge = outs[0]
            return (
                edge.dst is b
                and a.thread_index == b.thread_index
                and position[id(a)] < position[id(b)]
            )

        consumed: Set[int] = set()
        chains: List[List[_WNode]] = []
        for wn in nodes:
            if id(wn) in consumed or not member_ok(wn):
                continue
            chain = [wn]
            current = wn
            while True:
                outs = out_edges.get(id(current), ())
                if len(outs) != 1:
                    break
                follower = outs[0].dst
                if (
                    id(follower) in consumed
                    or not member_ok(follower)
                    or not links_to(current, follower)
                ):
                    break
                chain.append(follower)
                current = follower
            if len(chain) >= 2:
                chains.append(chain)
                consumed.update(id(member) for member in chain)

        if not chains:
            return
        interior_ids: Set[int] = set()
        for chain in chains:
            head, tail = chain[0], chain[-1]
            specs = [
                stage_spec(
                    member.leaf,
                    in_edges[id(member)][0].resolved.dst_port,
                )
                for member in chain
            ]
            head_edge = in_edges[id(head)][0]
            fused = FusedChain(
                [member.leaf for member in chain],
                specs,
                in_pad=head_edge.resolved.dst_port,
                out_pad=_out_data_ports(tail.leaf)[0],
                reassociate=self.config.allows_reassociation,
            )
            report.fused_chains.append(
                tuple(member.origin_path for member in chain)
            )
            # the fused node takes the tail's table slot; the head's
            # incoming edge now feeds it directly
            tail.leaf = fused
            head_edge.dst = tail
            interior_ids.update(id(member) for member in chain[:-1])
        nodes[:] = [wn for wn in nodes if id(wn) not in interior_ids]
        edges[:] = [
            we for we in edges
            if id(we.src) not in interior_ids
            and id(we.dst) not in interior_ids
        ]

    # ------------------------------------------------------------------
    # rebuild
    # ------------------------------------------------------------------
    def _rebuild(
        self,
        plan: ExecutionPlan,
        nodes: List[_WNode],
        edges: List[_WEdge],
        report: OptReport,
    ) -> ExecutionPlan:
        position = {id(wn): i for i, wn in enumerate(nodes)}
        plan_edges: List[PlanEdge] = []
        in_edges_of: Dict[int, List[int]] = {
            i: [] for i in range(len(nodes))
        }
        for we in edges:
            src_pos = position[id(we.src)]
            index = len(plan_edges)
            if we.is_observer:
                plan_edges.append(PlanEdge(
                    index=index, src=src_pos, dst=src_pos,
                    resolved=we.resolved, crosses_thread=False,
                    is_feedback=False, is_observer=True,
                ))
                continue
            dst_pos = position[id(we.dst)]
            plan_edges.append(PlanEdge(
                index=index, src=src_pos, dst=dst_pos,
                resolved=we.resolved,
                crosses_thread=(
                    we.src.thread_index != we.dst.thread_index
                ),
                is_feedback=src_pos >= dst_pos,
                is_observer=False,
            ))
            in_edges_of[dst_pos].append(index)

        plan_nodes: List[PlanNode] = []
        stage_of: Dict[int, int] = {}
        for pos, wn in enumerate(nodes):
            stage = 0
            for edge_index in in_edges_of[pos]:
                edge = plan_edges[edge_index]
                if edge.src < pos:
                    stage = max(stage, stage_of[edge.src] + 1)
            stage_of[pos] = stage
            plan_nodes.append(PlanNode(
                index=pos,
                leaf=wn.leaf,
                lo=wn.lo,
                hi=wn.hi,
                stage=stage,
                thread_index=wn.thread_index,
                direct_feedthrough=bool(wn.leaf.direct_feedthrough),
                in_edges=tuple(in_edges_of[pos]),
            ))

        guards: List[PlanGuard] = []
        for node in plan_nodes:
            for slot, name in enumerate(node.leaf.zero_crossing_names):
                guards.append(PlanGuard(
                    index=len(guards),
                    node=node.index,
                    leaf=node.leaf,
                    slot=slot,
                    name=name,
                    qualified_name=f"{node.leaf.path()}:{name}",
                ))

        return ExecutionPlan(
            plan_nodes, plan_edges, guards,
            plan.state_size, plan.n_threads,
            counters=plan.counters,
            opt_config=self.config,
            opt_report=report,
        )
