"""Shared lowering and per-block emitters for code generation.

``lower(diagram)`` flattens a dataflow diagram (reusing the exact network
resolution the simulator uses, so generated code and simulation agree on
evaluation order) and produces a :class:`LoweredModel`: named signals,
state layout, and per-block emitted code.

Emitters build *portable expressions* through a :class:`Lang` object, so
one emitter serves both the Python and the C backend.  Every block type of
:mod:`repro.dataflow` that can be expressed without dynamic containers is
supported; anything else raises :class:`UnsupportedBlockError` naming the
block, which is the documented extension point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.network import FlatNetwork
from repro.core.streamer import Streamer
from repro.dataflow.diagram import Diagram


class CodegenError(Exception):
    """Raised on unlowerable models."""


class UnsupportedBlockError(CodegenError):
    """Raised when a block type has no emitter."""


# ----------------------------------------------------------------------
# target-language abstraction
# ----------------------------------------------------------------------
class Lang:
    """Portable expression construction; subclassed per target."""

    name = "abstract"

    def num(self, value: float) -> str:
        return repr(float(value))

    def min(self, a: str, b: str) -> str:
        raise NotImplementedError

    def max(self, a: str, b: str) -> str:
        raise NotImplementedError

    def abs(self, a: str) -> str:
        raise NotImplementedError

    def sin(self, a: str) -> str:
        raise NotImplementedError

    def floor(self, a: str) -> str:
        raise NotImplementedError

    def fmod(self, a: str, b: str) -> str:
        raise NotImplementedError

    def if_expr(self, cond: str, then: str, otherwise: str) -> str:
        raise NotImplementedError


class PyLang(Lang):
    name = "python"

    def min(self, a, b):
        return f"min({a}, {b})"

    def max(self, a, b):
        return f"max({a}, {b})"

    def abs(self, a):
        return f"abs({a})"

    def sin(self, a):
        return f"math.sin({a})"

    def floor(self, a):
        return f"math.floor({a})"

    def fmod(self, a, b):
        return f"math.fmod({a}, {b})"

    def if_expr(self, cond, then, otherwise):
        return f"(({then}) if ({cond}) else ({otherwise}))"


class CLang(Lang):
    name = "c"

    def min(self, a, b):
        return f"fmin({a}, {b})"

    def max(self, a, b):
        return f"fmax({a}, {b})"

    def abs(self, a):
        return f"fabs({a})"

    def sin(self, a):
        return f"sin({a})"

    def floor(self, a):
        return f"floor({a})"

    def fmod(self, a, b):
        return f"fmod({a}, {b})"

    def if_expr(self, cond, then, otherwise):
        return f"(({cond}) ? ({then}) : ({otherwise}))"


# ----------------------------------------------------------------------
# lowered model
# ----------------------------------------------------------------------
@dataclass
class BlockCode:
    """Emitted code fragments for one block."""

    #: assignments computing the block's output signals (topological slot)
    output_lines: List[str] = field(default_factory=list)
    #: one expression per continuous state component (dstate/dt)
    deriv_exprs: List[str] = field(default_factory=list)
    #: held-variable names and initial values (sampled blocks)
    held_vars: List[Tuple[str, float]] = field(default_factory=list)
    #: statements run once per major step, after integration
    sync_lines: List[str] = field(default_factory=list)


@dataclass
class LoweredModel:
    """Everything a backend needs to emit a complete program."""

    name: str
    order: List[Streamer]
    state_names: List[str]
    initial_state: List[float]
    signal_names: List[str]
    code: Dict[int, BlockCode]
    records: List[Tuple[str, str]]  # (label, signal var)
    state_slice: Dict[int, Tuple[int, int]]


def _san(name: str) -> str:
    out = "".join(ch if ch.isalnum() else "_" for ch in name)
    return out if not out[:1].isdigit() else f"b_{out}"


class _Ctx:
    """Naming context handed to emitters."""

    def __init__(self, network: FlatNetwork, lang: Lang) -> None:
        self.network = network
        self.lang = lang
        self._input_of: Dict[Tuple[int, str], str] = {}
        for edge in network.edges:
            self._input_of[(id(edge.dst_leaf), edge.dst_port.name)] = (
                self.signal(edge.src_leaf, edge.src_port.name)
            )

    @staticmethod
    def signal(leaf: Streamer, port: str) -> str:
        return f"v_{_san(leaf.name)}_{_san(port)}"

    def input(self, leaf: Streamer, port: str) -> str:
        """Signal var feeding an IN port ('0.0' if unconnected)."""
        return self._input_of.get((id(leaf), port), "0.0")

    def state(self, leaf: Streamer, index: int) -> str:
        lo, hi = self.network.state_slice(leaf)
        if index >= hi - lo:
            raise CodegenError(
                f"{leaf.path()}: state index {index} out of range"
            )
        return f"x[{lo + index}]"

    def held(self, leaf: Streamer, suffix: str = "held") -> str:
        return f"h_{_san(leaf.name)}_{suffix}"


Emitter = Callable[[Streamer, _Ctx], BlockCode]
_EMITTERS: Dict[str, Emitter] = {}


def register_emitter(class_name: str):
    """Register an emitter for a block class (extension point)."""

    def deco(fn: Emitter) -> Emitter:
        _EMITTERS[class_name] = fn
        return fn

    return deco


# ----------------------------------------------------------------------
# emitters: sources
# ----------------------------------------------------------------------
@register_emitter("Constant")
def _emit_constant(block, ctx):
    out = ctx.signal(block, "out")
    return BlockCode(
        output_lines=[f"{out} = {ctx.lang.num(block.params['value'])}"]
    )


@register_emitter("Step")
def _emit_step(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    expr = lang.if_expr(
        f"t >= {lang.num(p['t_step'])}",
        f"{lang.num(p['offset'])} + {lang.num(p['amplitude'])}",
        lang.num(p["offset"]),
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("Ramp")
def _emit_ramp(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    shifted = f"(t - {lang.num(p['t_start'])})"
    expr = f"{lang.num(p['slope'])} * {lang.max(shifted, '0.0')}"
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("Sine")
def _emit_sine(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    two_pi_f = 2.0 * 3.141592653589793 * p["freq"]
    angle = f"{lang.num(two_pi_f)} * t + {lang.num(p['phase'])}"
    expr = (
        f"{lang.num(p['amplitude'])} * {lang.sin(angle)}"
        f" + {lang.num(p['offset'])}"
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("Pulse")
def _emit_pulse(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    phase = f"{lang.fmod('t', lang.num(p['period']))} / {lang.num(p['period'])}"
    expr = lang.if_expr(
        f"({phase}) < {lang.num(p['duty'])}", lang.num(p["amplitude"]), "0.0"
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("TimeSource")
def _emit_timesource(block, ctx):
    out = ctx.signal(block, "out")
    return BlockCode(
        output_lines=[f"{out} = t * {ctx.lang.num(block.params['scale'])}"]
    )


# ----------------------------------------------------------------------
# emitters: arithmetic
# ----------------------------------------------------------------------
@register_emitter("Gain")
def _emit_gain(block, ctx):
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    return BlockCode(
        output_lines=[f"{out} = {ctx.lang.num(block.params['k'])} * {u}"]
    )


@register_emitter("Bias")
def _emit_bias(block, ctx):
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    return BlockCode(
        output_lines=[f"{out} = {u} + {ctx.lang.num(block.params['bias'])}"]
    )


@register_emitter("Sum")
def _emit_sum(block, ctx):
    out = ctx.signal(block, "out")
    terms = []
    for index, sign in enumerate(block.params["signs"]):
        u = ctx.input(block, f"in{index + 1}")
        terms.append(f"{'+' if sign == '+' else '-'} {u}")
    return BlockCode(output_lines=[f"{out} = {' '.join(terms)}"])


@register_emitter("Product")
def _emit_product(block, ctx):
    out = ctx.signal(block, "out")
    factors = " * ".join(
        ctx.input(block, f"in{i + 1}") for i in range(block.params["n"])
    )
    return BlockCode(output_lines=[f"{out} = {factors}"])


@register_emitter("Abs")
def _emit_abs(block, ctx):
    out = ctx.signal(block, "out")
    return BlockCode(
        output_lines=[f"{out} = {ctx.lang.abs(ctx.input(block, 'in'))}"]
    )


# ----------------------------------------------------------------------
# emitters: nonlinearities
# ----------------------------------------------------------------------
@register_emitter("Saturation")
def _emit_saturation(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    expr = lang.min(
        lang.num(p["upper"]), lang.max(lang.num(p["lower"]), u)
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("DeadZone")
def _emit_deadzone(block, ctx):
    lang = ctx.lang
    w = lang.num(block.params["width"])
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    expr = lang.if_expr(
        f"{u} > {w}", f"{u} - {w}",
        lang.if_expr(f"{u} < -{w}", f"{u} + {w}", "0.0"),
    )
    return BlockCode(output_lines=[f"{out} = {expr}"])


@register_emitter("Quantizer")
def _emit_quantizer(block, ctx):
    lang = ctx.lang
    step = lang.num(block.params["step"])
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    expr = f"{step} * {lang.floor(f'{u} / {step} + 0.5')}"
    return BlockCode(output_lines=[f"{out} = {expr}"])


# ----------------------------------------------------------------------
# emitters: dynamics
# ----------------------------------------------------------------------
@register_emitter("Integrator")
def _emit_integrator(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    x = ctx.state(block, 0)
    y = x
    deriv = u
    if block.upper is not None:
        y = lang.min(lang.num(block.upper), y)
        deriv = lang.if_expr(
            f"{x} >= {lang.num(block.upper)} and {u} > 0.0"
            if lang.name == "python"
            else f"{x} >= {lang.num(block.upper)} && {u} > 0.0",
            "0.0", deriv,
        )
    if block.lower is not None:
        y = lang.max(lang.num(block.lower), y)
        deriv = lang.if_expr(
            f"{x} <= {lang.num(block.lower)} and {u} < 0.0"
            if lang.name == "python"
            else f"{x} <= {lang.num(block.lower)} && {u} < 0.0",
            "0.0", deriv,
        )
    return BlockCode(
        output_lines=[f"{out} = {y}"], deriv_exprs=[deriv]
    )


@register_emitter("FirstOrderLag")
def _emit_lag(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    x = ctx.state(block, 0)
    return BlockCode(
        output_lines=[f"{out} = {x}"],
        deriv_exprs=[
            f"({lang.num(p['k'])} * {u} - {x}) / {lang.num(p['tau'])}"
        ],
    )


@register_emitter("SecondOrderSystem")
def _emit_pt2(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    x0, x1 = ctx.state(block, 0), ctx.state(block, 1)
    omega2 = lang.num(p["omega"] ** 2)
    damp = lang.num(2.0 * p["zeta"] * p["omega"])
    return BlockCode(
        output_lines=[f"{out} = {x0}"],
        deriv_exprs=[
            x1,
            f"{omega2} * ({lang.num(p['k'])} * {u} - {x0}) - {damp} * {x1}",
        ],
    )


@register_emitter("PID")
def _emit_pid(block, ctx):
    lang = ctx.lang
    p = block.params
    out = ctx.signal(block, "out")
    e = ctx.input(block, "in")
    integral, e_filt = ctx.state(block, 0), ctx.state(block, 1)
    de = f"(({e}) - {e_filt}) / {lang.num(p['tf'])}"
    raw = (
        f"{lang.num(p['kp'])} * ({e}) + {lang.num(p['ki'])} * {integral} "
        f"+ {lang.num(p['kd'])} * ({de})"
    )
    saturated = raw
    if block.u_max is not None:
        saturated = lang.min(lang.num(block.u_max), saturated)
    if block.u_min is not None:
        saturated = lang.max(lang.num(block.u_min), saturated)
    d_integral = e
    if block.u_max is not None or block.u_min is not None:
        cond_and = " and " if lang.name == "python" else " && "
        d_integral = lang.if_expr(
            f"({raw}) != ({saturated}){cond_and}({raw}) * ({e}) > 0.0",
            "0.0", e,
        )
    return BlockCode(
        output_lines=[f"{out} = {saturated}"],
        deriv_exprs=[d_integral, de],
    )


@register_emitter("TransferFunction")
def _emit_tf(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    n = block.n
    states = [ctx.state(block, i) for i in range(n)]
    y_terms = [f"{lang.num(block.d)} * {u}"] if block.d else []
    for i, coeff in enumerate(block.c[::-1]):
        if coeff:
            y_terms.append(f"{lang.num(coeff)} * {states[i]}")
    y_expr = " + ".join(y_terms) if y_terms else "0.0"
    derivs = [states[i + 1] for i in range(n - 1)] if n > 1 else []
    last_terms = [u]
    for i, coeff in enumerate(block.a[::-1]):
        if coeff:
            last_terms.append(f"- {lang.num(coeff)} * {states[i]}")
    if n >= 1:
        derivs.append(" ".join(last_terms))
    return BlockCode(output_lines=[f"{out} = {y_expr}"], deriv_exprs=derivs)


@register_emitter("StateSpace")
def _emit_ss(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    n = block.a.shape[0]
    states = [ctx.state(block, i) for i in range(n)]
    y_terms = [
        f"{lang.num(block.c[i])} * {states[i]}"
        for i in range(n) if block.c[i]
    ]
    if block.d:
        y_terms.append(f"{lang.num(block.d)} * {u}")
    derivs = []
    for i in range(n):
        terms = [
            f"{lang.num(block.a[i, j])} * {states[j]}"
            for j in range(n) if block.a[i, j]
        ]
        if block.b[i]:
            terms.append(f"{lang.num(block.b[i])} * {u}")
        derivs.append(" + ".join(terms) if terms else "0.0")
    return BlockCode(
        output_lines=[
            f"{out} = {' + '.join(y_terms) if y_terms else '0.0'}"
        ],
        deriv_exprs=derivs,
    )


# ----------------------------------------------------------------------
# emitters: sampled blocks (held state + sync updates)
# ----------------------------------------------------------------------
def _next_sample_expr(lang: Lang, ts: str) -> str:
    # round t to the nearest grid index before advancing, so a time a few
    # ulps below a grid point does not cause a double sample
    ratio = f"t / {ts} + 0.5"
    return f"({lang.floor(ratio)} + 1.0) * {ts}"


@register_emitter("ZeroOrderHold")
def _emit_zoh(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    held = ctx.held(block)
    nxt = ctx.held(block, "next")
    ts = lang.num(block.params["ts"])
    cond = f"t + 1e-12 >= {nxt}"
    advance = _next_sample_expr(lang, ts)
    return BlockCode(
        output_lines=[f"{out} = {held}"],
        held_vars=[(held, 0.0), (nxt, 0.0)],
        sync_lines=[
            f"{held} = {lang.if_expr(cond, u, held)}",
            f"{nxt} = {lang.if_expr(cond, advance, nxt)}",
        ],
    )


@register_emitter("UnitDelay")
def _emit_unit_delay(block, ctx):
    lang = ctx.lang
    out = ctx.signal(block, "out")
    u = ctx.input(block, "in")
    held = ctx.held(block)
    store = ctx.held(block, "store")
    nxt = ctx.held(block, "next")
    ts = lang.num(block.params["ts"])
    cond = f"t + 1e-12 >= {nxt}"
    advance = _next_sample_expr(lang, ts)
    return BlockCode(
        output_lines=[f"{out} = {held}"],
        held_vars=[(held, 0.0), (store, block._store), (nxt, 0.0)],
        sync_lines=[
            f"{held} = {lang.if_expr(cond, store, held)}",
            f"{store} = {lang.if_expr(cond, u, store)}",
            f"{nxt} = {lang.if_expr(cond, advance, nxt)}",
        ],
    )


@register_emitter("Scope")
def _emit_scope(block, ctx):
    return BlockCode()  # recording handled by the backend


@register_emitter("Terminator")
def _emit_terminator(block, ctx):
    return BlockCode()


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def lower(
    diagram: Diagram,
    lang: Lang,
    records: Optional[List[str]] = None,
) -> LoweredModel:
    """Flatten ``diagram`` and emit per-block code for ``lang``.

    ``records`` is a list of ``"block.port"`` paths to record each step;
    defaults to every Scope input and every dangling leaf OUT port.
    """
    diagram.finalise()
    network = FlatNetwork([diagram])
    ctx = _Ctx(network, lang)
    code: Dict[int, BlockCode] = {}
    for leaf in network.order:
        emitter = _EMITTERS.get(type(leaf).__name__)
        if emitter is None:
            raise UnsupportedBlockError(
                f"no code emitter for block type "
                f"{type(leaf).__name__!r} ({leaf.path()}); supported: "
                f"{sorted(_EMITTERS)}"
            )
        code[id(leaf)] = emitter(leaf, ctx)

    state_names: List[str] = []
    slice_of: Dict[int, Tuple[int, int]] = {}
    for leaf in network.order:
        lo, hi = network.state_slice(leaf)
        slice_of[id(leaf)] = (lo, hi)
        for i in range(hi - lo):
            state_names.append(f"{_san(leaf.name)}_{i}")

    signal_names = sorted({
        ctx.signal(leaf, port.name)
        for leaf in network.order
        for port in leaf.dports.values()
        if port.is_out
    })

    record_pairs: List[Tuple[str, str]] = []
    if records:
        for path in records:
            port = diagram.port_at(path)
            if port.is_out:
                record_pairs.append((path, ctx.signal(port.owner, port.name)))
            else:
                record_pairs.append((path, ctx.input(port.owner, port.name)))
    else:
        for leaf in network.order:
            if type(leaf).__name__ == "Scope":
                for port in leaf.dports.values():
                    record_pairs.append((
                        f"{leaf.name}.{port.name}",
                        ctx.input(leaf, port.name),
                    ))

    return LoweredModel(
        name=diagram.name,
        order=list(network.order),
        state_names=state_names,
        initial_state=[float(v) for v in network.initial_state()],
        signal_names=signal_names,
        code=code,
        records=record_pairs,
        state_slice=slice_of,
    )
