"""Discrete blocks, sinks and the Diagram wiring helper."""

import numpy as np
import pytest

from repro.core.model import HybridModel
from repro.dataflow import (
    Constant,
    Diagram,
    DiscretePID,
    DiscreteTransferFunction,
    FirstOrderLag,
    Gain,
    MovingAverage,
    Scope,
    Step,
    Sum,
    Terminator,
    TimeSource,
    UnitDelay,
    ZeroOrderHold,
)
from repro.dataflow.block import BlockError
from repro.dataflow.diagram import DiagramError


def run(diagram, until=1.0, sync=0.1, h=0.01):
    diagram.finalise()
    model = HybridModel("t")
    model.default_thread.h = h
    model.add_streamer(diagram)
    model.run(until=until, sync_interval=sync)
    return model


class TestZeroOrderHold:
    def test_holds_between_samples(self):
        d = Diagram("d")
        d.add(TimeSource("t"))
        d.add(ZeroOrderHold("zoh", ts=0.5))
        d.add(Scope("scope"))
        d.connect("t.out", "zoh.in")
        d.connect("zoh.out", "scope.in1")
        run(d, until=1.0, sync=0.1)
        samples = d.sub("scope").trajectory
        # at t in [0, 0.5): holds sample taken at 0; then at 0.5 etc.
        assert samples.sample(0.3)[0] == pytest.approx(0.0)
        assert samples.sample(0.7)[0] == pytest.approx(0.5)

    def test_sample_count(self):
        d = Diagram("d")
        d.add(TimeSource("t"))
        d.add(ZeroOrderHold("zoh", ts=0.25))
        d.connect("t.out", "zoh.in")
        run(d, until=1.0, sync=0.05)
        assert d.sub("zoh").samples_taken == 5  # t = 0, .25, .5, .75, 1.0

    def test_validation(self):
        with pytest.raises(BlockError):
            ZeroOrderHold("z", ts=0.0)


class TestUnitDelay:
    def test_delays_one_sample(self):
        d = Diagram("d")
        d.add(TimeSource("t"))
        d.add(UnitDelay("z", ts=0.25, y0=-1.0))
        d.add(Scope("scope"))
        d.connect("t.out", "z.in")
        d.connect("z.out", "scope.in1")
        run(d, until=1.0, sync=0.05)
        samples = d.sub("scope").trajectory
        # after the sample at t=0.5 the delayed output is t=0.25's input
        assert samples.sample(0.6)[0] == pytest.approx(0.25)


class TestMovingAverage:
    def test_averages_window(self):
        d = Diagram("d")
        d.add(Step("s", t_step=0.0, amplitude=1.0))
        d.add(MovingAverage("ma", ts=0.1, window=4))
        d.connect("s.out", "ma.in")
        run(d, until=1.0, sync=0.05)
        # all samples equal 1 -> mean 1
        d.sub("ma").compute_outputs(1.0, np.empty(0))
        assert d.sub("ma").dport("out").read_scalar() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(BlockError):
            MovingAverage("m", ts=0.1, window=0)


class TestDiscreteTransferFunction:
    def test_accumulator(self):
        """H(z) = 1/(1 - z^-1): a discrete accumulator of its input."""
        d = Diagram("d")
        d.add(Constant("c", 1.0))
        d.add(DiscreteTransferFunction("acc", num=[1.0], den=[1.0, -1.0],
                                       ts=0.1))
        d.connect("c.out", "acc.in")
        run(d, until=1.0, sync=0.1)
        block = d.sub("acc")
        # 11 samples (t = 0..1.0 step 0.1) each adding 1
        assert block.samples_taken == 11
        block.compute_outputs(1.0, np.empty(0))
        assert block.dport("out").read_scalar() == pytest.approx(11.0)

    def test_validation(self):
        with pytest.raises(BlockError):
            DiscreteTransferFunction("d", num=[1.0], den=[0.0, 1.0])


class TestDiscretePID:
    def test_regulates_lag(self):
        d = Diagram("d")
        d.add(Step("ref", amplitude=1.0))
        d.add(Sum("err", signs="+-"))
        d.add(DiscretePID("pid", kp=1.0, ki=2.0, ts=0.05))
        d.add(FirstOrderLag("plant", tau=0.5))
        d.connect("ref.out", "err.in1")
        d.connect("plant.out", "err.in2")
        d.connect("err.out", "pid.in")
        d.connect("pid.out", "plant.in")
        d.expose("y", "plant.out")
        model = HybridModel("t")
        model.default_thread.h = 0.005
        model.add_streamer(d)
        model.add_probe("y", d.dport("y"))
        model.run(until=8.0, sync_interval=0.05)
        assert model.probe("y").y_final[0] == pytest.approx(1.0, abs=0.02)

    def test_output_clamped(self):
        pid = DiscretePID("p", kp=100.0, ts=0.1, u_max=1.0, u_min=-1.0)
        assert pid.sample(0.0, 10.0) == 1.0
        assert pid.sample(0.1, -10.0) == -1.0


class TestScopeAndTerminator:
    def test_scope_multichannel(self):
        d = Diagram("d")
        d.add(Constant("a", 1.0))
        d.add(Constant("b", 2.0))
        d.add(Scope("scope", channels=2, labels=["a", "b"]))
        d.connect("a.out", "scope.in1")
        d.connect("b.out", "scope.in2")
        run(d, until=0.5, sync=0.1)
        trajectory = d.sub("scope").trajectory
        assert trajectory.labels == ["a", "b"]
        assert trajectory.y_final.tolist() == [1.0, 2.0]

    def test_terminator_absorbs(self):
        d = Diagram("d")
        d.add(Constant("c", 1.0))
        d.add(Terminator("t"))
        d.connect("c.out", "t.in")
        model = run(d)
        assert model.validate(strict=True) == []  # no W8 warning... almost
        # terminator consumed the flow; only warnings may remain
        assert all(v.severity == "warning" for v in model.validate(False))


class TestDiagramWiring:
    def test_automatic_fanout_relays(self):
        d = Diagram("d")
        d.add(Constant("c", 1.0))
        d.add(Gain("g1"))
        d.add(Gain("g2"))
        d.add(Gain("g3"))
        d.connect("c.out", "g1.in")
        d.connect("c.out", "g2.in")
        d.connect("c.out", "g3.in")
        d.finalise()
        assert len(d.all_relays()) == 2  # 3-way fan-out = 2 relays

    def test_fanout_values(self):
        d = Diagram("d")
        d.add(Constant("c", 5.0))
        d.add(Gain("g1", k=1.0))
        d.add(Gain("g2", k=2.0))
        d.connect("c.out", "g1.in")
        d.connect("c.out", "g2.in")
        model = run(d)
        assert d.sub("g1").dport("out").read_scalar() == 5.0
        assert d.sub("g2").dport("out").read_scalar() == 10.0

    def test_unknown_block_path(self):
        d = Diagram("d")
        with pytest.raises(DiagramError):
            d.connect("ghost.out", "also.in")

    def test_connect_after_finalise_rejected(self):
        d = Diagram("d")
        d.add(Constant("c", 1.0))
        d.finalise()
        with pytest.raises(DiagramError):
            d.connect("c.out", "c.out")

    def test_expose_in_direction(self):
        d = Diagram("d")
        d.add(Gain("g"))
        boundary = d.expose("u", "g.in")
        assert boundary.relay_only
        assert boundary.is_in
