"""The HTTP front-end and client: submit/status/result/cancel/stream."""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.client import ClusterClient, ClusterClientError
from repro.cluster.http import ClusterHTTPServer, json_safe, summarise_result
from repro.cluster.pool import ClusterConfig, WorkerPool
from repro.cluster.requests import ClusterJobRequest, ClusterRejected


@pytest.fixture(scope="module")
def cluster():
    """(pool, client) behind a live ephemeral-port HTTP server."""
    with tempfile.TemporaryDirectory(prefix="repro-http-") as root:
        pool = WorkerPool(Path(root), ClusterConfig(workers=2))
        server = ClusterHTTPServer(pool).start()
        client = ClusterClient(server.url)
        client.wait_ready()
        try:
            yield pool, client
        finally:
            server.stop()
            pool.shutdown()


def lag_request(**overrides):
    base = dict(
        kind="single_run", model="lag",
        params={"t_end": 0.4, "sync_interval": 0.05}, checkpoint=False,
    )
    base.update(overrides)
    return ClusterJobRequest(**base)


class TestEndpoints:
    def test_healthz_and_models(self, cluster):
        __, client = cluster
        assert client.healthz()
        assert {"cruise", "lag", "pendulum"} <= set(client.models())

    def test_submit_result_roundtrip(self, cluster):
        __, client = cluster
        job_id = client.submit(lag_request())
        status = client.result(job_id, timeout=60)
        assert status["state"] == "done"
        summary = status["result"]
        assert summary["type"] == "single_run"
        assert summary["t_final"] == pytest.approx(0.4)
        probe = summary["probes"]["y"]
        assert probe["rows"] > 0
        assert len(probe["times_crc32"]) == 8

    def test_stream_events_ndjson(self, cluster):
        __, client = cluster
        job_id = client.submit(lag_request())
        events = list(client.stream(job_id))
        kinds = [event["kind"] for event in events]
        assert kinds[-1] == "end"
        assert "progress" in kinds
        assert events[-1]["state"] == "done"

    def test_status_snapshot(self, cluster):
        __, client = cluster
        snapshot = client.status()
        assert len(snapshot["workers"]) == 2
        assert "steals" in snapshot and "migrations" in snapshot

    def test_cancel_over_http(self, cluster):
        __, client = cluster
        job_id = client.submit(ClusterJobRequest(
            kind="single_run", model="cruise",
            params={"t_end": 60.0, "sync_interval": 0.01},
            checkpoint=False,
        ))
        assert client.cancel(job_id)
        deadline_status = None
        for __ in range(600):
            deadline_status = client.job(job_id)
            if deadline_status["state"] in ("cancelled", "done"):
                break
            import time
            time.sleep(0.05)
        assert deadline_status["state"] == "cancelled"

    def test_unknown_job_404(self, cluster):
        __, client = cluster
        with pytest.raises(ClusterClientError) as excinfo:
            client.job("cj-999999")
        assert excinfo.value.status == 404

    def test_bad_request_400(self, cluster):
        __, client = cluster
        with pytest.raises(Exception) as excinfo:
            client.submit(ClusterJobRequest(
                kind="single_run", model="lag",
                params={"bogus_param": 1},
            ))
        assert "unknown single_run params" in str(excinfo.value)

    def test_rejection_maps_to_429(self, tmp_path):
        with WorkerPool(
            tmp_path, ClusterConfig(workers=1, queue_limit=1),
        ) as pool:
            with ClusterHTTPServer(pool) as server:
                client = ClusterClient(server.url)
                client.wait_ready()
                with pytest.raises(ClusterRejected) as excinfo:
                    for __ in range(20):
                        client.submit(ClusterJobRequest(
                            kind="single_run", model="cruise",
                            params={"t_end": 30.0}, checkpoint=False,
                        ))
                assert excinfo.value.reason == "queue_full"


class TestSummaries:
    def test_json_safe_arrays(self):
        small = np.arange(3, dtype=float)
        big = np.arange(1000, dtype=float)
        assert json_safe(small) == [0.0, 1.0, 2.0]
        summary = json_safe(big)
        assert summary["__array__"] and summary["shape"] == [1000]
        assert json_safe(np.float64(2.5)) == 2.5
        assert json_safe(float("nan")) is None
        assert json_safe({"k": (1, 2)}) == {"k": [1, 2]}

    def test_digest_is_bitwise(self):
        from repro.cluster.http import _digest

        a = np.linspace(0.0, 1.0, 257)
        b = a.copy()
        assert _digest(a) == _digest(b)
        b[200] = np.nextafter(b[200], 2.0)  # one ulp
        assert _digest(a) != _digest(b)

    def test_summarise_unknown_type(self):
        summary = summarise_result(object())
        assert summary["type"] == "object"
