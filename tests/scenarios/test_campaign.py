"""The campaign driver: oracles, steering, self-test, reports."""

import numpy as np
import pytest

from repro.scenarios.campaign import (
    CampaignConfig,
    CampaignReport,
    CampaignRunner,
    execute_scenario,
    replay,
)
from repro.scenarios.spec import ScenarioSpec

# interpreter + compiled-python only: deterministic in CI regardless of
# whether a C toolchain is present
BACKENDS = ["compiled-python"]


def small_config(**overrides):
    base = dict(
        count=8, seed=0, workers=2, round_size=4, t_end=0.1,
        backends=BACKENDS,
    )
    base.update(overrides)
    return CampaignConfig(**base)


class TestSeedStream:
    def test_stable_arithmetic(self):
        runner = CampaignRunner(small_config())
        assert runner.seed_for(0) == 12345
        assert [runner.seed_for(i) for i in range(4)] == [
            CampaignRunner(small_config()).seed_for(i) for i in range(4)
        ]

    def test_master_seed_shifts_stream(self):
        a = CampaignRunner(small_config(seed=1))
        b = CampaignRunner(small_config(seed=2))
        assert a.seed_for(0) != b.seed_for(0)


class TestExecuteScenario:
    def test_dag_scenario_passes(self):
        spec = ScenarioSpec.from_seed(1013916571)
        assert spec.family == "dag"
        outcome = execute_scenario(spec, small_config())
        assert outcome.ok, outcome.detail
        assert "interpreter" in outcome.coverage["backends"]
        assert outcome.coverage["opcodes"]

    def test_unknown_family_is_a_divergence(self):
        outcome = execute_scenario(
            ScenarioSpec(seed=1, family="bogus"), small_config(),
        )
        assert not outcome.ok
        assert "bogus" in outcome.detail

    def test_executor_crash_is_a_divergence_not_an_exception(self):
        # family dispatch catches oracle crashes and reports them
        spec = ScenarioSpec(seed=1, family="dag", params={})  # no blocks
        outcome = execute_scenario(spec, small_config())
        assert not outcome.ok
        assert "raised" in outcome.detail

    def test_mutated_scenario_is_caught(self):
        spec = ScenarioSpec.from_seed(1013916571)
        config = small_config(mutate_seeds=frozenset([spec.seed]))
        outcome = execute_scenario(spec, config)
        assert not outcome.ok
        assert "diverges" in outcome.detail

    def test_replay_matches_campaign_execution(self):
        seed = 1013916571
        direct = execute_scenario(
            ScenarioSpec.from_seed(seed), small_config(),
        )
        again = replay(seed, small_config())
        assert direct.to_dict() == again.to_dict()


class TestRunner:
    def test_small_campaign_is_clean_and_deterministic(self):
        first = CampaignRunner(small_config()).run()
        second = CampaignRunner(small_config()).run()
        assert first.ok, first.divergences
        assert first.count == 8
        assert first.to_dict() == second.to_dict()

    def test_steering_changes_selection_but_not_meaning(self):
        steered = CampaignRunner(small_config(count=6)).run()
        unsteered = CampaignRunner(
            small_config(count=6, steer=False)
        ).run()
        assert steered.ok and unsteered.ok
        # whatever was selected, each seed means the same workload
        assert steered.steered and not unsteered.steered

    def test_mutation_self_test_is_selected_and_caught(self):
        runner = CampaignRunner(small_config())
        victim = runner.seed_for(2)  # a dag seed inside the pool
        report = CampaignRunner(
            small_config(mutate_seeds=frozenset([victim]))
        ).run()
        assert not report.ok
        assert victim in report.failing_seeds()

    def test_report_round_trip(self, tmp_path):
        report = CampaignRunner(small_config(count=4)).run()
        path = tmp_path / "report.json"
        report.save(str(path))
        loaded = CampaignReport.load(str(path))
        assert loaded.to_dict() == report.to_dict()
        assert "coverage" in report.to_json()

    def test_render_mentions_outcome(self):
        report = CampaignRunner(small_config(count=4)).run()
        text = report.render()
        assert "no divergences" in text
        assert "master seed 0" in text


class TestOracleSharpness:
    def test_batch_family_is_bitwise(self):
        for seed in range(200):
            spec = ScenarioSpec.from_seed(seed)
            if spec.family == "batch":
                outcome = execute_scenario(spec, small_config())
                assert outcome.ok, outcome.detail
                break
        else:
            pytest.skip("no batch seed in the first 200")

    def test_solver_family_records_demoting_solver(self):
        for seed in range(200):
            spec = ScenarioSpec.from_seed(seed)
            if spec.family == "solver":
                outcome = execute_scenario(spec, small_config())
                assert outcome.ok, outcome.detail
                assert spec.params["solver"] in (
                    outcome.coverage["solvers"]
                )
                break
        else:
            pytest.skip("no solver seed in the first 200")
